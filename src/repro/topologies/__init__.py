"""Topology substrates: network model, deterministic and random families."""

from .base import DirectNetwork, FoldedClos, Link, NetworkError
from .fattree import (
    commodity_fat_tree,
    k_ary_l_tree,
    partially_populated_cft,
    xgft,
)
from .galois import GaloisField, field, is_prime_power, nearest_prime_power
from .io import from_json, load, save, to_dot, to_edge_list, to_json
from .oft import orthogonal_fat_tree
from .packed import (
    PackedFoldedClos,
    packed_radix_regular_rfc,
    packed_random_folded_clos,
    stage_arrays_of,
)
from .projective import ProjectivePlane, projective_plane
from .random_graphs import (
    GenerationError,
    random_bipartite_graph,
    random_regular_graph,
)
from .rrn import random_regular_network

__all__ = [
    "DirectNetwork",
    "FoldedClos",
    "Link",
    "NetworkError",
    "GenerationError",
    "PackedFoldedClos",
    "packed_random_folded_clos",
    "packed_radix_regular_rfc",
    "stage_arrays_of",
    "commodity_fat_tree",
    "partially_populated_cft",
    "k_ary_l_tree",
    "xgft",
    "to_json",
    "from_json",
    "save",
    "load",
    "to_edge_list",
    "to_dot",
    "orthogonal_fat_tree",
    "random_regular_network",
    "random_regular_graph",
    "random_bipartite_graph",
    "GaloisField",
    "field",
    "is_prime_power",
    "nearest_prime_power",
    "ProjectivePlane",
    "projective_plane",
]
