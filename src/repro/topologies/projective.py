"""Projective planes PG(2, q) and their incidence graphs.

The orthogonal fat-tree (OFT) wires consecutive switch levels with the
point-line incidence relation of the projective plane of order ``q``:
``q^2 + q + 1`` points, equally many lines, every line holding ``q + 1``
points and every point lying on ``q + 1`` lines, any two distinct
points sharing exactly one line.  That combinatorial rigidity is what
gives the 2-level OFT its unique minimal routes (paper Section 3).

Points and lines are homogeneous coordinate triples over GF(q),
normalized so the first nonzero coordinate is 1; a point ``P`` is on a
line ``L`` iff ``P . L == 0`` in GF(q).
"""

from __future__ import annotations

from functools import lru_cache

from .galois import GaloisField, field, is_prime_power

__all__ = ["ProjectivePlane", "projective_plane"]


class ProjectivePlane:
    """The Desarguesian projective plane PG(2, q).

    Attributes
    ----------
    q:
        Plane order (a prime power).
    size:
        Number of points (= number of lines) ``q^2 + q + 1``.
    """

    def __init__(self, q: int) -> None:
        if not is_prime_power(q):
            raise ValueError(f"projective plane order {q} is not a prime power")
        self.q = q
        self.size = q * q + q + 1
        self._field: GaloisField = field(q)
        self._points = self._normalized_triples()
        # By duality lines use the same canonical triples.
        self._lines = list(self._points)
        self._points_on_line: list[tuple[int, ...]] = []
        self._lines_through_point: list[list[int]] = [
            [] for _ in range(self.size)
        ]
        gf = self._field
        for line_id, line in enumerate(self._lines):
            members = []
            for point_id, point in enumerate(self._points):
                acc = 0
                for a, b in zip(point, line):
                    acc = gf.add(acc, gf.mul(a, b))
                if acc == 0:
                    members.append(point_id)
                    self._lines_through_point[point_id].append(line_id)
            self._points_on_line.append(tuple(members))
        self._lines_through_point = [
            tuple(row) for row in self._lines_through_point  # type: ignore[misc]
        ]

    def _normalized_triples(self) -> list[tuple[int, int, int]]:
        q = self.q
        triples: list[tuple[int, int, int]] = [(1, y, z) for y in range(q) for z in range(q)]
        triples.extend((0, 1, z) for z in range(q))
        triples.append((0, 0, 1))
        assert len(triples) == self.size
        return triples

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return self.size

    @property
    def num_lines(self) -> int:
        return self.size

    def point(self, point_id: int) -> tuple[int, int, int]:
        return self._points[point_id]

    def line(self, line_id: int) -> tuple[int, int, int]:
        return self._lines[line_id]

    def points_on_line(self, line_id: int) -> tuple[int, ...]:
        """Ids of the ``q + 1`` points incident to a line."""
        return self._points_on_line[line_id]

    def lines_through_point(self, point_id: int) -> tuple[int, ...]:
        """Ids of the ``q + 1`` lines incident to a point."""
        return self._lines_through_point[point_id]

    def is_incident(self, point_id: int, line_id: int) -> bool:
        return line_id in self._lines_through_point[point_id]

    def line_through(self, point_a: int, point_b: int) -> int:
        """The unique line through two distinct points."""
        if point_a == point_b:
            raise ValueError("two distinct points are required")
        common = set(self._lines_through_point[point_a]).intersection(
            self._lines_through_point[point_b]
        )
        if len(common) != 1:
            raise AssertionError(
                f"plane axiom violated: points {point_a}, {point_b} share "
                f"{len(common)} lines"
            )
        return next(iter(common))

    def incidence_adjacency(self) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
        """The (q+1)-biregular point-line incidence bipartite graph.

        Returns ``(lines_per_point, points_per_line)`` adjacency rows,
        directly usable as an inter-level wiring stage.
        """
        return (
            list(self._lines_through_point),
            list(self._points_on_line),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PG(2, {self.q})"


@lru_cache(maxsize=None)
def projective_plane(q: int) -> ProjectivePlane:
    """Memoized plane constructor (incidence building is O(size^2))."""
    return ProjectivePlane(q)
