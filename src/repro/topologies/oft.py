"""Orthogonal fat-trees (OFT) of Valerio, Moser and Melliar-Smith.

The ``l``-level OFT of prime-power order ``q`` (paper Section 3) is the
radix-regular fat-tree with radix ``R = 2(q + 1)``, arities
``k_1 = ... = k_{l-1} = q^2 + q + 1`` and ``k_l = 2(q^2 + q + 1)``.
Writing ``m = q^2 + q + 1`` it has

* ``N_i = 2 m^(l-1)`` switches at every level ``i < l``,
* ``N_l = m^(l-1)`` root switches,
* ``q + 1`` compute nodes per leaf, hence ``T = 2 (q+1) m^(l-1)``.

Construction (recursive, following the fat-tree recursion of
Definition 3.2):

* A *sub-tree* ``S_j`` has ``m`` copies of ``S_{j-1}`` below a new top
  level of ``m^(j-1)`` switches.  Copy ``c``'s top switch ``s`` wires up
  to new-top switch ``(line, s)`` for every projective line through
  point ``c`` -- the point-line incidence of PG(2, q).
* The full OFT is ``k_l = 2m`` disjoint copies of ``S_{l-1}`` (two
  *half-planes* of ``m`` copies each) joined by ``m^(l-1)`` roots; root
  ``(line, s)`` wires down to top switch ``s`` of copy ``c`` in *both*
  halves, for every point ``c`` on ``line``.

For ``l = 2`` this is exactly the classic construction of Figure 2: two
copies of the point set as leaves, the line set as roots, and minimal
routes between distinct leaves are unique (tested property).
"""

from __future__ import annotations

from .base import FoldedClos, NetworkError
from .galois import is_prime_power, nearest_prime_power
from .projective import projective_plane

__all__ = [
    "orthogonal_fat_tree",
    "oft_terminals",
    "oft_level_sizes",
    "oft_switches",
    "oft_wires",
    "oft_radix",
    "oft_order_for_radix",
]


def orthogonal_fat_tree(q: int, levels: int) -> FoldedClos:
    """Build the ``levels``-level OFT of order ``q``.

    ``q`` must be a prime power; ``levels >= 2``.  The result is a
    radix-regular :class:`FoldedClos` of radix ``2 (q + 1)``.
    """
    if levels < 2:
        raise NetworkError(f"an OFT needs at least 2 levels, got {levels}")
    if not is_prime_power(q):
        raise NetworkError(f"OFT order {q} is not a prime power")
    plane = projective_plane(q)
    m = plane.size
    radix = 2 * (q + 1)

    level_sizes = [2 * m ** (levels - 1)] * (levels - 1) + [m ** (levels - 1)]
    up_adjacency: list[list[list[int]]] = []

    # Stages below the roots: level i (0-based, i < levels - 2).
    # A switch at 0-based level i is indexed prefix * m^i + s where the
    # prefix encodes (c_l, c_{l-1}, ..., c_{i+2}) in base m (c_l in
    # [0, 2m) most significant) and s in [0, m^i) is its position within
    # its sub-tree's top level.
    for i in range(levels - 2):
        span = m**i  # number of top positions per sub-tree at this level
        n_here = level_sizes[i]
        stage: list[list[int]] = []
        for index in range(n_here):
            prefix, s = divmod(index, span)
            parent_prefix, copy = divmod(prefix, m)
            base = parent_prefix * (span * m)
            stage.append(
                [
                    base + line * span + s
                    for line in plane.lines_through_point(copy)
                ]
            )
        up_adjacency.append(stage)

    # Top stage: level levels-2 (0-based) to roots.  Here the remaining
    # prefix is c_l in [0, 2m): half h = c_l // m, point p = c_l % m.
    span = m ** (levels - 2)
    stage = []
    for index in range(level_sizes[levels - 2]):
        c_top, s = divmod(index, span)
        point = c_top % m
        stage.append(
            [line * span + s for line in plane.lines_through_point(point)]
        )
    up_adjacency.append(stage)

    topo = FoldedClos(
        level_sizes,
        up_adjacency,
        hosts_per_leaf=q + 1,
        radix=radix,
        name=f"OFT(q={q}, l={levels})",
    )
    return topo


# ----------------------------------------------------------------------
# Closed-form accounting (Section 4.3 of the paper).
# ----------------------------------------------------------------------

def oft_terminals(q: int, levels: int) -> int:
    """Compute nodes: ``2 (q+1) (q^2+q+1)^(l-1)``."""
    m = q * q + q + 1
    return 2 * (q + 1) * m ** (levels - 1)


def oft_level_sizes(q: int, levels: int) -> list[int]:
    m = q * q + q + 1
    return [2 * m ** (levels - 1)] * (levels - 1) + [m ** (levels - 1)]


def oft_switches(q: int, levels: int) -> int:
    return sum(oft_level_sizes(q, levels))


def oft_wires(q: int, levels: int) -> int:
    """Switch-to-switch cables: every non-root has ``q + 1`` up-links."""
    sizes = oft_level_sizes(q, levels)
    return sum(n * (q + 1) for n in sizes[:-1])


def oft_radix(q: int) -> int:
    return 2 * (q + 1)


def oft_order_for_radix(radix: int) -> int:
    """Largest prime-power order usable with switches of ``radix`` ports.

    The OFT of order ``q`` needs radix ``2 (q + 1)``, so the ideal order
    is ``radix / 2 - 1``; this returns the nearest prime power not
    exceeding it.
    """
    ideal = radix // 2 - 1
    if ideal < 2:
        raise NetworkError(f"radix {radix} too small for any OFT")
    q = ideal
    while q >= 2 and not is_prime_power(q):
        q -= 1
    if q < 2:
        q = nearest_prime_power(ideal)
    return q
