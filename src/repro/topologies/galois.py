"""Finite (Galois) field arithmetic GF(p^n).

Orthogonal fat-trees are built from projective planes PG(2, q), which
exist for every prime power ``q``.  This module provides the field
substrate: :class:`GaloisField` implements GF(q) for ``q = p^n`` with

* prime fields computed directly modulo ``p``;
* extension fields represented as polynomials over GF(p) modulo a monic
  irreducible polynomial found by exhaustive search (fine for the small
  ``q`` used in network construction -- the search is O(p^n * n^2) per
  candidate and runs once).

Elements are plain integers ``0 .. q-1``; an extension-field element
``e`` encodes the polynomial with coefficient ``(e // p^i) % p`` on
``x^i``.  Addition/multiplication tables are precomputed for ``q`` up
to :data:`TABLE_LIMIT` so the hot projective-plane loops are table
lookups.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "GaloisField",
    "field",
    "is_prime",
    "is_prime_power",
    "prime_power_decomposition",
    "nearest_prime_power",
]

TABLE_LIMIT = 64


def is_prime(n: int) -> bool:
    """Deterministic primality check, adequate for field orders."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def prime_power_decomposition(q: int) -> tuple[int, int] | None:
    """Return ``(p, n)`` with ``q == p**n`` and ``p`` prime, else None."""
    if q < 2:
        return None
    for p in range(2, q + 1):
        if p * p > q:
            break
        if q % p:
            continue
        n = 0
        m = q
        while m % p == 0:
            m //= p
            n += 1
        return (p, n) if m == 1 else None
    return (q, 1) if is_prime(q) else None


def is_prime_power(q: int) -> bool:
    return prime_power_decomposition(q) is not None


def nearest_prime_power(q: int) -> int:
    """The prime power closest to ``q`` (ties resolved downward)."""
    if q < 2:
        return 2
    for delta in range(q):
        if is_prime_power(q - delta):
            return q - delta
        if is_prime_power(q + delta):
            return q + delta
    return 2


class GaloisField:
    """The finite field GF(q) for a prime power ``q``.

    Elements are the integers ``0 .. q-1``.  The additive and
    multiplicative structure is exposed through :meth:`add`,
    :meth:`mul`, :meth:`neg`, :meth:`inv` and :meth:`sub`.
    """

    def __init__(self, q: int) -> None:
        decomposition = prime_power_decomposition(q)
        if decomposition is None:
            raise ValueError(f"{q} is not a prime power")
        self.order = q
        self.characteristic, self.degree = decomposition
        if self.degree == 1:
            self._modulus_coeffs: tuple[int, ...] | None = None
        else:
            self._modulus_coeffs = self._find_irreducible()
        if q <= TABLE_LIMIT:
            self._add_table = [
                [self._add_slow(a, b) for b in range(q)] for a in range(q)
            ]
            self._mul_table = [
                [self._mul_slow(a, b) for b in range(q)] for a in range(q)
            ]
        else:
            self._add_table = None
            self._mul_table = None

    # ------------------------------------------------------------------
    # Polynomial plumbing (extension fields)
    # ------------------------------------------------------------------
    def _int_to_poly(self, e: int) -> list[int]:
        p = self.characteristic
        coeffs = []
        for _ in range(self.degree):
            coeffs.append(e % p)
            e //= p
        return coeffs

    def _poly_to_int(self, coeffs: list[int]) -> int:
        p = self.characteristic
        value = 0
        for c in reversed(coeffs):
            value = value * p + c
        return value

    def _find_irreducible(self) -> tuple[int, ...]:
        """Monic irreducible polynomial of degree ``n`` over GF(p).

        Candidates are tested by checking that they have no root in
        GF(p) for degrees 2-3 and, in general, by trial division with
        all monic polynomials of degree <= n // 2 (fine for the tiny
        degrees used here).
        """
        p, n = self.characteristic, self.degree
        for tail in range(p**n):
            coeffs = []
            e = tail
            for _ in range(n):
                coeffs.append(e % p)
                e //= p
            candidate = coeffs + [1]  # monic degree-n polynomial
            if self._is_irreducible(candidate, p):
                return tuple(candidate)
        raise AssertionError(f"no irreducible polynomial for GF({p}^{n})")

    @staticmethod
    def _poly_mod(num: list[int], den: list[int], p: int) -> list[int]:
        num = list(num)
        dn = len(den) - 1
        while len(num) - 1 >= dn and any(num):
            while num and num[-1] == 0:
                num.pop()
            if len(num) - 1 < dn:
                break
            shift = len(num) - 1 - dn
            lead = num[-1] * pow(den[-1], p - 2, p) % p
            for i, d in enumerate(den):
                num[shift + i] = (num[shift + i] - lead * d) % p
        while num and num[-1] == 0:
            num.pop()
        return num

    @classmethod
    def _is_irreducible(cls, poly: list[int], p: int) -> bool:
        n = len(poly) - 1
        if n < 1 or poly[-1] == 0:
            return False
        # Trial division by every monic polynomial of degree 1..n//2.
        for deg in range(1, n // 2 + 1):
            for tail in range(p**deg):
                div = []
                e = tail
                for _ in range(deg):
                    div.append(e % p)
                    e //= p
                div.append(1)
                if not cls._poly_mod(poly, div, p):
                    return False
        return True

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _check(self, *elements: int) -> None:
        for e in elements:
            if not 0 <= e < self.order:
                raise ValueError(f"{e} is not an element of GF({self.order})")

    def _add_slow(self, a: int, b: int) -> int:
        if self.degree == 1:
            return (a + b) % self.characteristic
        p = self.characteristic
        pa, pb = self._int_to_poly(a), self._int_to_poly(b)
        return self._poly_to_int([(x + y) % p for x, y in zip(pa, pb)])

    def _mul_slow(self, a: int, b: int) -> int:
        if self.degree == 1:
            return (a * b) % self.characteristic
        p = self.characteristic
        pa, pb = self._int_to_poly(a), self._int_to_poly(b)
        prod = [0] * (2 * self.degree - 1)
        for i, x in enumerate(pa):
            if x == 0:
                continue
            for j, y in enumerate(pb):
                prod[i + j] = (prod[i + j] + x * y) % p
        rem = self._poly_mod(prod, list(self._modulus_coeffs), p)
        rem += [0] * (self.degree - len(rem))
        return self._poly_to_int(rem)

    def add(self, a: int, b: int) -> int:
        self._check(a, b)
        if self._add_table is not None:
            return self._add_table[a][b]
        return self._add_slow(a, b)

    def mul(self, a: int, b: int) -> int:
        self._check(a, b)
        if self._mul_table is not None:
            return self._mul_table[a][b]
        return self._mul_slow(a, b)

    def neg(self, a: int) -> int:
        self._check(a)
        for b in range(self.order):
            if self.add(a, b) == 0:
                return b
        raise AssertionError("no additive inverse; field is broken")

    def sub(self, a: int, b: int) -> int:
        return self.add(a, self.neg(b))

    def inv(self, a: int) -> int:
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        for b in range(1, self.order):
            if self.mul(a, b) == 1:
                return b
        raise AssertionError("no multiplicative inverse; field is broken")

    def pow(self, a: int, k: int) -> int:
        self._check(a)
        if k < 0:
            return self.pow(self.inv(a), -k)
        result = 1
        base = a
        while k:
            if k & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            k >>= 1
        return result

    def elements(self) -> range:
        return range(self.order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GF({self.order})"


@lru_cache(maxsize=None)
def field(q: int) -> GaloisField:
    """Memoized field constructor (table building is not free)."""
    return GaloisField(q)
