"""Deterministic fat-tree constructions (paper Definition 3.2).

The paper's deterministic baselines are all *extended generalized fat
trees* (XGFTs, Ohring et al. 1995): an ``l``-level XGFT is described by
per-level child counts ``m_1..m_l`` and parent counts ``w_1..w_l``,
where a level-``i`` node has ``m_i`` children and each level-``(i-1)``
node has ``w_i`` parents.  This module builds them as
:class:`~repro.topologies.base.FoldedClos` instances and provides the
two named specializations used throughout the paper:

* :func:`k_ary_l_tree` -- the Petrini--Vanneschi ``k``-ary ``l``-tree:
  arities all ``k``, radix ``2k``, ``k^l`` compute nodes.
* :func:`commodity_fat_tree` -- the ``R``-commodity fat-tree (CFT) of
  Al-Fares et al.: radix-regular, arities ``R/2`` except the top arity
  ``R``, connecting ``2 * (R/2)^l`` compute nodes.

Wiring rule: a level-``i`` switch is labelled by a pair of mixed-radix
words ``(t, c)`` -- ``t`` locates the sub-tree branch above it (radices
``m_{i+1}..m_l``), ``c`` locates it among its sub-tree's same-level
switches (radices ``w_1..w_i``).  Switch ``(t, c)`` at level ``i``
connects up to ``(t // m_{i+1}, c + d * W_i)`` for every
``d in [0, w_{i+1})``, which yields exactly the recursive structure of
Definition 3.2.
"""

from __future__ import annotations

import math
from typing import Sequence

from .base import FoldedClos, NetworkError

__all__ = [
    "xgft",
    "k_ary_l_tree",
    "commodity_fat_tree",
    "partially_populated_cft",
    "cft_terminals",
    "cft_level_sizes",
    "cft_switches",
    "cft_wires",
    "cft_levels_for_terminals",
    "cft_radix_for",
]


def xgft(
    child_counts: Sequence[int],
    parent_counts: Sequence[int],
    name: str | None = None,
    radix: int | None = None,
) -> FoldedClos:
    """Build the extended generalized fat tree XGFT(l; m; w).

    Parameters
    ----------
    child_counts:
        ``[m_1, ..., m_l]``; ``m_1`` is the number of compute nodes per
        leaf switch and ``m_i`` the down-degree of level-``i`` switches.
    parent_counts:
        ``[w_1, ..., w_l]``; ``w_1`` is ignored by convention (compute
        nodes have one parent) and ``w_{i+1}`` is the up-degree of
        level-``i`` switches.
    radix:
        Nominal switch radix recorded on the result; defaults to the
        maximum port count actually used by any switch.
    """
    if len(child_counts) != len(parent_counts):
        raise NetworkError("child_counts and parent_counts must align")
    levels = len(child_counts)
    if levels < 1:
        raise NetworkError("an XGFT needs at least one level")
    if any(m < 1 for m in child_counts) or any(w < 1 for w in parent_counts):
        raise NetworkError("all m_i and w_i must be positive")

    m = list(child_counts)
    w = list(parent_counts)

    # W_i = prod(w_1..w_i), M_i = prod(m_{i+1}..m_l); level i has M_i * W_i
    # switches (1-based levels in the math, 0-based lists in the code).
    w_prod = [1] * (levels + 1)
    for i in range(1, levels + 1):
        w_prod[i] = w_prod[i - 1] * w[i - 1]
    m_suffix = [1] * (levels + 1)
    for i in range(levels - 1, -1, -1):
        m_suffix[i] = m_suffix[i + 1] * m[i]

    level_sizes = [m_suffix[i + 1] * w_prod[i + 1] for i in range(levels)]

    up_adjacency: list[list[list[int]]] = []
    for i in range(levels - 1):
        # Level index i is 0-based: paper level i+1.
        n_here = level_sizes[i]
        w_here = w_prod[i + 1]  # size of the c-word at this level
        m_next = m[i + 1]  # branch radix consumed when going up
        fan_up = w[i + 1]  # up-degree
        stage: list[list[int]] = []
        for s in range(n_here):
            t_lin, c_lin = divmod(s, w_here)
            t_up = t_lin // m_next
            base = t_up * (w_here * fan_up)
            stage.append([base + d * w_here + c_lin for d in range(fan_up)])
        up_adjacency.append(stage)

    hosts = m[0]
    if radix is None:
        used = [hosts + (w[1] if levels > 1 else 0)]
        for i in range(1, levels):
            up = w[i + 1] if i < levels - 1 else 0
            used.append(m[i] + up)
        radix = max(used)
    topo = FoldedClos(
        level_sizes,
        up_adjacency,
        hosts_per_leaf=hosts,
        radix=radix,
        name=name or f"xgft(l={levels})",
    )
    return topo


def k_ary_l_tree(k: int, levels: int) -> FoldedClos:
    """The ``k``-ary ``l``-tree of Petrini and Vanneschi.

    Radix ``2k`` switches, ``k^l`` compute nodes, ``l * k^(l-1)``
    switches in total.
    """
    if k < 2:
        raise NetworkError(f"k-ary tree needs k >= 2, got {k}")
    if levels < 1:
        raise NetworkError(f"need at least one level, got {levels}")
    child = [k] * levels
    parent = [1] + [k] * (levels - 1)
    return xgft(child, parent, name=f"{k}-ary {levels}-tree", radix=2 * k)


def partially_populated_cft(radix: int, levels: int, hosts: int) -> FoldedClos:
    """A CFT with only ``hosts`` compute nodes per leaf (< R/2).

    Models the paper's intermediate-expansion scenario: a fully
    equipped switch fabric whose leaf ports are partially populated,
    "leaving free ports for future expansion".  The switch fabric is
    identical to :func:`commodity_fat_tree`; only the terminal count
    differs, so the network is no longer radix-regular.
    """
    if not 1 <= hosts <= radix // 2:
        raise NetworkError(
            f"hosts per leaf must be in 1..{radix // 2}, got {hosts}"
        )
    half = radix // 2
    if levels < 2:
        raise NetworkError("partial population needs at least 2 levels")
    child = [hosts] + [half] * (levels - 2) + [radix]
    parent = [1] + [half] * (levels - 1)
    return xgft(
        child,
        parent,
        name=f"{radix}-CFT(l={levels}, hosts={hosts})",
        radix=radix,
    )


def commodity_fat_tree(radix: int, levels: int) -> FoldedClos:
    """The ``R``-commodity fat-tree (CFT) with ``levels`` levels.

    Radix-regular: arities ``R/2`` at every level except ``k_l = R``.
    Connects ``2 * (R/2)^levels`` compute nodes with ``R/2`` per leaf.
    For ``levels == 1`` this degenerates to a single radix-``R`` switch
    with ``R`` terminals.
    """
    if radix < 2 or radix % 2 != 0:
        raise NetworkError(f"CFT needs an even radix >= 2, got {radix}")
    if levels < 1:
        raise NetworkError(f"need at least one level, got {levels}")
    half = radix // 2
    if levels == 1:
        return xgft([radix], [1], name=f"{radix}-CFT(l=1)", radix=radix)
    if half < 2:
        raise NetworkError(f"radix {radix} too small for {levels} levels")
    child = [half] * (levels - 1) + [radix]
    parent = [1] + [half] * (levels - 1)
    topo = xgft(child, parent, name=f"{radix}-CFT(l={levels})", radix=radix)
    return topo


# ----------------------------------------------------------------------
# Closed-form CFT accounting (used by the cost/scalability experiments,
# cheap enough to call at paper scale without building the topology).
# ----------------------------------------------------------------------

def cft_terminals(radix: int, levels: int) -> int:
    """Compute nodes of the ``radix``-CFT: ``2 * (R/2)^l``."""
    if levels == 1:
        return radix
    return 2 * (radix // 2) ** levels


def cft_level_sizes(radix: int, levels: int) -> list[int]:
    """Switch counts per level of the ``radix``-CFT."""
    if levels == 1:
        return [1]
    half = radix // 2
    n1 = 2 * half ** (levels - 1)
    return [n1] * (levels - 1) + [n1 // 2]


def cft_switches(radix: int, levels: int) -> int:
    """Total switches of the ``radix``-CFT."""
    return sum(cft_level_sizes(radix, levels))


def cft_wires(radix: int, levels: int) -> int:
    """Switch-to-switch cables of the ``radix``-CFT."""
    sizes = cft_level_sizes(radix, levels)
    half = radix // 2
    return sum(sizes[i] * half for i in range(len(sizes) - 1))


def cft_levels_for_terminals(radix: int, terminals: int) -> int:
    """Smallest level count whose CFT reaches ``terminals`` nodes."""
    levels = 1
    while cft_terminals(radix, levels) < terminals:
        levels += 1
        if levels > 64:
            raise NetworkError(
                f"radix {radix} cannot reach {terminals} terminals"
            )
    return levels


def cft_radix_for(terminals: int, levels: int) -> int:
    """Smallest even radix whose ``levels``-level CFT reaches ``terminals``."""
    half = max(2, math.ceil((terminals / 2) ** (1.0 / levels)))
    while 2 * half**levels < terminals:
        half += 1
    return 2 * half
