"""Random graph generators (paper Appendix, Listings 1 and 2).

These are the Steger--Wormald pairing-model generators the paper uses:

* :func:`random_regular_graph` follows Listing 1 -- generate a random
  Delta-regular simple graph on ``n`` vertices by repeatedly pairing
  random unmatched *points* (each vertex owns ``Delta`` points),
  rejecting pairs that would create self-loops or parallel edges, and
  restarting the whole construction when it wedges.

* :func:`random_bipartite_graph` follows Listing 2 -- the semiregular
  bipartite analogue used to wire consecutive levels of a random folded
  Clos network: ``n1`` left vertices of degree ``d1`` and ``n2`` right
  vertices of degree ``d2`` (``n1 * d1`` must equal ``n2 * d2``).

Per Theorem 9.1 of the paper each restart iteration runs in expected
time ``O(N * Delta * ln(Delta))``; with these rejection rules the output
distribution is asymptotically uniform over simple (bi)regular graphs
(Steger & Wormald 1999).

Both functions accept a :class:`random.Random` instance so experiments
are reproducible, and a ``max_restarts`` guard so pathological parameter
choices fail loudly instead of spinning forever.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = [
    "GenerationError",
    "random_regular_graph",
    "random_bipartite_graph",
    "random_biregular_degrees",
]


class GenerationError(RuntimeError):
    """Raised when a generator exhausts its restart budget."""


def _as_rng(rng: random.Random | int | None) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def random_regular_graph(
    n: int,
    degree: int,
    rng: random.Random | int | None = None,
    max_restarts: int = 1000,
) -> list[set[int]]:
    """Generate a random ``degree``-regular simple graph on ``n`` vertices.

    Returns adjacency as a list of sets, exactly like the paper's
    Listing 1.  Raises :class:`GenerationError` if the parameters are
    infeasible (``n * degree`` odd, ``degree >= n``) or the restart
    budget is exhausted.
    """
    if n <= 0:
        raise GenerationError(f"need at least one vertex, got n={n}")
    if degree < 0:
        raise GenerationError(f"negative degree {degree}")
    if degree == 0:
        return [set() for _ in range(n)]
    if degree >= n:
        raise GenerationError(
            f"degree {degree} impossible on {n} vertices (needs degree < n)"
        )
    if (n * degree) % 2 != 0:
        raise GenerationError(
            f"n * degree = {n * degree} is odd; no regular graph exists"
        )
    rand = _as_rng(rng)

    for _ in range(max_restarts):
        adj = _try_regular(n, degree, rand)
        if adj is not None:
            return adj
    raise GenerationError(
        f"no {degree}-regular graph on {n} vertices after "
        f"{max_restarts} restarts"
    )


def _try_regular(
    n: int, degree: int, rand: random.Random
) -> list[set[int]] | None:
    """One restart iteration of Listing 1.  ``None`` means 'wedged'."""
    points = list(range(n * degree))
    adj: list[set[int]] = [set() for _ in range(n)]
    # Vertices that still have unmatched points.
    available: set[int] = set(range(n))

    while points:
        if len(available) <= degree:
            # Few vertices left: check a suitable pair still exists.
            if not _has_suitable_pair(available, adj):
                return None
        # Rejection-sample a suitable random pair of points.
        for _ in range(50 * degree + 50):
            i = rand.randrange(len(points))
            points[i], points[-1] = points[-1], points[i]
            j = rand.randrange(len(points) - 1)
            points[j], points[-2] = points[-2], points[j]
            u = points[-1] // degree
            v = points[-2] // degree
            if u != v and v not in adj[u]:
                break
        else:
            # Statistically wedged; fall back to the exhaustive check.
            if not _has_suitable_pair(available, adj):
                return None
            continue
        del points[-1]
        del points[-1]
        adj[u].add(v)
        adj[v].add(u)
        for w in (u, v):
            if len(adj[w]) == degree:
                available.remove(w)
    return adj


def _has_suitable_pair(available: set[int], adj: Sequence[set[int]]) -> bool:
    avail = list(available)
    for ai, a in enumerate(avail):
        for b in avail[ai + 1 :]:
            if b not in adj[a]:
                return True
    return False


def random_bipartite_graph(
    n1: int,
    d1: int,
    n2: int,
    d2: int,
    rng: random.Random | int | None = None,
    max_restarts: int = 1000,
) -> tuple[list[set[int]], list[set[int]]]:
    """Generate a random simple bipartite graph (paper Listing 2).

    ``n1`` left vertices of degree ``d1``; ``n2`` right vertices of
    degree ``d2``.  Returns ``(adj_left, adj_right)`` where
    ``adj_left[u]`` holds right-side indices and vice versa.
    """
    if n1 <= 0 or n2 <= 0:
        raise GenerationError(f"need vertices on both sides, got {n1}, {n2}")
    if d1 < 0 or d2 < 0:
        raise GenerationError(f"negative degree ({d1}, {d2})")
    if n1 * d1 != n2 * d2:
        raise GenerationError(
            f"degree sums differ: {n1}*{d1} != {n2}*{d2}; "
            "no biregular bipartite graph exists"
        )
    if d1 > n2 or d2 > n1:
        raise GenerationError(
            f"degrees ({d1}, {d2}) exceed opposite side sizes ({n2}, {n1})"
        )
    if d1 == 0:
        return [set() for _ in range(n1)], [set() for _ in range(n2)]
    rand = _as_rng(rng)

    for _ in range(max_restarts):
        result = _try_bipartite(n1, d1, n2, d2, rand)
        if result is not None:
            return result
    raise GenerationError(
        f"no ({d1},{d2})-biregular bipartite graph on ({n1},{n2}) vertices "
        f"after {max_restarts} restarts"
    )


def _try_bipartite(
    n1: int, d1: int, n2: int, d2: int, rand: random.Random
) -> tuple[list[set[int]], list[set[int]]] | None:
    """One restart iteration of Listing 2.  ``None`` means 'wedged'."""
    pts1 = list(range(n1 * d1))
    pts2 = list(range(n2 * d2))
    adj1: list[set[int]] = [set() for _ in range(n1)]
    adj2: list[set[int]] = [set() for _ in range(n2)]
    avail1: set[int] = set(range(n1))
    avail2: set[int] = set(range(n2))

    while pts1:
        if len(avail1) <= d2 and len(avail2) <= d1:
            if not _has_suitable_bipartite_pair(avail1, avail2, adj1):
                return None
        for _ in range(50 * max(d1, d2) + 50):
            i = rand.randrange(len(pts1))
            pts1[i], pts1[-1] = pts1[-1], pts1[i]
            j = rand.randrange(len(pts2))
            pts2[j], pts2[-1] = pts2[-1], pts2[j]
            u = pts1[-1] // d1
            v = pts2[-1] // d2
            if v not in adj1[u]:
                break
        else:
            if not _has_suitable_bipartite_pair(avail1, avail2, adj1):
                return None
            continue
        del pts1[-1]
        del pts2[-1]
        adj1[u].add(v)
        adj2[v].add(u)
        if len(adj1[u]) == d1:
            avail1.remove(u)
        if len(adj2[v]) == d2:
            avail2.remove(v)
    return adj1, adj2


def _has_suitable_bipartite_pair(
    avail1: set[int], avail2: set[int], adj1: Sequence[set[int]]
) -> bool:
    for a in avail1:
        row = adj1[a]
        for b in avail2:
            if b not in row:
                return True
    return False


def random_biregular_degrees(n1: int, n2: int, total_links: int) -> tuple[int, int]:
    """Pick per-side degrees realizing ``total_links`` links if possible.

    Utility for expansion experiments: returns ``(d1, d2)`` with
    ``n1 * d1 == n2 * d2 == total_links``.  Raises
    :class:`GenerationError` when no integral solution exists.
    """
    if total_links % n1 != 0 or total_links % n2 != 0:
        raise GenerationError(
            f"{total_links} links cannot be split evenly over "
            f"({n1}, {n2}) vertices"
        )
    return total_links // n1, total_links // n2
