"""Random regular networks (RRN) -- the Jellyfish baseline.

A RRN puts a random ``delta``-regular graph on the switch layer and
hangs ``hosts`` compute nodes off every switch, so the switch radix is
``delta + hosts``.  The paper dimensions RRNs by (Section 4.3):

* ``delta^D ~ 2 N ln N`` relates degree, diameter ``D`` and switch
  count ``N`` (achievable diameter of a random regular graph);
* a balanced design puts ``delta / D`` compute nodes per switch, since
  the average distance sits just below the diameter.

:func:`random_regular_network` builds an instance; the ``rrn_*``
helpers answer the closed-form sizing questions used by the
scalability, expandability and resiliency experiments.
"""

from __future__ import annotations

import math
import random

from .base import DirectNetwork
from .random_graphs import random_regular_graph

__all__ = [
    "random_regular_network",
    "rrn_switches_for_diameter",
    "rrn_terminals",
    "rrn_balanced_hosts",
    "rrn_degree_for",
]


def random_regular_network(
    num_switches: int,
    degree: int,
    hosts_per_switch: int,
    rng: random.Random | int | None = None,
) -> DirectNetwork:
    """Build a RRN: random ``degree``-regular switch graph + terminals."""
    adjacency = random_regular_graph(num_switches, degree, rng=rng)
    return DirectNetwork(
        adjacency,
        hosts_per_switch=hosts_per_switch,
        name=f"RRN(N={num_switches}, delta={degree}, hosts={hosts_per_switch})",
    )


def rrn_switches_for_diameter(degree: int, diameter: int) -> int:
    """Largest N with ``degree^diameter >= 2 N ln N`` (paper's rule).

    This is the number of switches up to which a random
    ``degree``-regular graph still achieves ``diameter`` with high
    probability.  Solved by bisection on the monotone ``2 N ln N``.
    """
    if degree < 3:
        return degree + 1
    target = float(degree) ** diameter
    lo, hi = 2, 2
    while 2 * hi * math.log(hi) < target:
        hi *= 2
        if hi > 10**15:
            break
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if 2 * mid * math.log(mid) <= target:
            lo = mid
        else:
            hi = mid - 1
    return lo


def rrn_balanced_hosts(degree: int, diameter: int) -> int:
    """Balanced compute nodes per switch: ``delta / D`` (at least 1)."""
    return max(1, round(degree / diameter))


def rrn_terminals(degree: int, diameter: int) -> int:
    """Compute nodes of the balanced maximal RRN for (degree, diameter)."""
    n = rrn_switches_for_diameter(degree, diameter)
    return n * rrn_balanced_hosts(degree, diameter)


def rrn_degree_for(radix: int, diameter: int) -> tuple[int, int]:
    """Split ``radix`` into (network degree, hosts) per Section 4.3.

    The paper uses ``R = delta * (1 + 1/D)``, i.e. ``delta / D`` ports
    go to compute nodes.  Returns ``(delta, hosts)`` with
    ``delta + hosts <= radix`` and ``hosts ~ delta / D``.
    """
    delta = int(radix / (1.0 + 1.0 / diameter))
    hosts = radix - delta
    # Keep hosts close to delta / D without exceeding the radix.
    while delta > 3 and hosts < max(1, round(delta / diameter)):
        delta -= 1
        hosts += 1
    return delta, hosts
