"""Network data model shared by every topology in this package.

Two families of topologies appear in the paper:

* **Indirect (multi-stage) networks** -- folded Clos networks, fat-trees,
  orthogonal fat-trees and random folded Clos networks.  These are
  represented by :class:`FoldedClos`: switches arranged in levels with
  links only between consecutive levels, and compute nodes (terminals)
  attached to the level-1 (leaf) switches.

* **Direct networks** -- random regular networks (the Jellyfish
  baseline).  These are represented by :class:`DirectNetwork`: a flat
  set of switches, each hosting a fixed number of terminals.

Both expose a common link/switch numbering so that the routing,
fault-injection and simulation layers can treat them uniformly:

* switches carry *flat ids* ``0 .. num_switches - 1``;
* links are undirected pairs of flat switch ids, enumerated in a stable
  order by :meth:`links`, so a *link index* identifies a physical cable;
* terminals carry ids ``0 .. num_terminals - 1`` and each is attached to
  exactly one switch (:meth:`terminal_switch`).

The model deliberately stores plain ``list``/``set`` adjacency instead
of a :mod:`networkx` graph: the generators and analyses in this package
are hot loops over hundreds of thousands of links, and attribute-laden
graph objects are an order of magnitude slower.  A :mod:`networkx` view
is available through :meth:`to_networkx` for interoperability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Link",
    "NetworkError",
    "FoldedClos",
    "DirectNetwork",
    "levels_are_consistent",
]


class NetworkError(ValueError):
    """Raised when a topology violates its structural invariants."""


@dataclass(frozen=True, order=True)
class Link:
    """An undirected link between two switches, by flat switch id.

    The pair is stored in normalized order (``lo <= hi``) so that a link
    compares and hashes identically regardless of construction order.
    """

    lo: int
    hi: int

    def __init__(self, a: int, b: int) -> None:
        if a == b:
            raise NetworkError(f"self-link on switch {a}")
        lo, hi = (a, b) if a < b else (b, a)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def other(self, switch: int) -> int:
        """Return the endpoint that is not ``switch``."""
        if switch == self.lo:
            return self.hi
        if switch == self.hi:
            return self.lo
        raise NetworkError(f"switch {switch} is not an endpoint of {self}")

    def __iter__(self) -> Iterator[int]:
        yield self.lo
        yield self.hi


def levels_are_consistent(level_sizes: Sequence[int]) -> bool:
    """Return whether a level-size vector describes a plausible folded Clos."""
    return len(level_sizes) >= 1 and all(n > 0 for n in level_sizes)


class FoldedClos:
    """An indirect multi-stage network per Definition 3.1 of the paper.

    Switches are divided into ``l`` levels.  Level-1 (leaf) switches
    connect down to compute nodes and up to level 2; intermediate levels
    connect down and up; level-``l`` (root) switches only connect down.

    Parameters
    ----------
    level_sizes:
        ``[N_1, ..., N_l]`` -- number of switches per level.
    up_adjacency:
        ``up_adjacency[i][s]`` is the list of level-``i+2`` switch
        *indices within their level* that level-``i+1`` switch ``s``
        connects to (0-based levels in code, 1-based in the paper).
        There are ``l - 1`` inter-level stages.  Parallel links between
        the same pair of switches are not allowed (the paper's
        generators reject them as unsuitable pairs).
    hosts_per_leaf:
        Number of compute nodes attached to every leaf switch.
    radix:
        The nominal switch radix ``R``.  For radix-regular networks this
        equals down-links + up-links of every switch; it is recorded for
        cost accounting even when the network is not radix-regular.
    name:
        Human-readable topology name used in reports.
    """

    def __init__(
        self,
        level_sizes: Sequence[int],
        up_adjacency: Sequence[Sequence[Iterable[int]]],
        hosts_per_leaf: int,
        radix: int,
        name: str = "folded-clos",
    ) -> None:
        if not levels_are_consistent(level_sizes):
            raise NetworkError(f"bad level sizes {level_sizes!r}")
        if len(up_adjacency) != len(level_sizes) - 1:
            raise NetworkError(
                f"{len(level_sizes)} levels need {len(level_sizes) - 1} "
                f"inter-level stages, got {len(up_adjacency)}"
            )
        if hosts_per_leaf < 0:
            raise NetworkError("hosts_per_leaf must be non-negative")

        self.level_sizes: list[int] = list(level_sizes)
        self.hosts_per_leaf = hosts_per_leaf
        self.radix = radix
        self.name = name

        # Normalized copy: tuple-of-tuples, validated against level sizes.
        self._up: list[list[tuple[int, ...]]] = []
        for stage, stage_adj in enumerate(up_adjacency):
            n_lo, n_hi = level_sizes[stage], level_sizes[stage + 1]
            if len(stage_adj) != n_lo:
                raise NetworkError(
                    f"stage {stage}: expected {n_lo} adjacency rows, "
                    f"got {len(stage_adj)}"
                )
            rows: list[tuple[int, ...]] = []
            for s, nbrs in enumerate(stage_adj):
                row = tuple(sorted(nbrs))
                if len(set(row)) != len(row):
                    raise NetworkError(
                        f"stage {stage} switch {s}: parallel links {row}"
                    )
                for t in row:
                    if not 0 <= t < n_hi:
                        raise NetworkError(
                            f"stage {stage} switch {s}: neighbor {t} out of "
                            f"range for level of size {n_hi}"
                        )
                rows.append(row)
            self._up.append(rows)

        # Down adjacency derived once; kept as sorted tuples as well.
        self._down: list[list[tuple[int, ...]]] = []
        for stage, rows in enumerate(self._up):
            n_hi = level_sizes[stage + 1]
            down: list[list[int]] = [[] for _ in range(n_hi)]
            for s, row in enumerate(rows):
                for t in row:
                    down[t].append(s)
            self._down.append([tuple(d) for d in down])

        # Flat-id offsets per level.
        self._offsets: list[int] = [0]
        for n in self.level_sizes:
            self._offsets.append(self._offsets[-1] + n)

        # links()/links_array() memos -- safe because instances are
        # construction-immutable (no mutating API exists).
        self._links_cache: tuple[Link, ...] | None = None
        self._links_array_cache = None

    # ------------------------------------------------------------------
    # Identity / sizes
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """Number of switch levels ``l``."""
        return len(self.level_sizes)

    @property
    def num_switches(self) -> int:
        """Total switches across all levels."""
        return self._offsets[-1]

    @property
    def num_leaves(self) -> int:
        """Level-1 (leaf) switch count ``N_1``."""
        return self.level_sizes[0]

    @property
    def num_terminals(self) -> int:
        """Compute nodes ``T = N_1 * hosts_per_leaf``."""
        return self.num_leaves * self.hosts_per_leaf

    @property
    def num_links(self) -> int:
        """Number of switch-to-switch cables (terminal links excluded)."""
        return sum(len(row) for rows in self._up for row in rows)

    @property
    def num_ports(self) -> int:
        """Total switch ports in use, counting terminal ports.

        This is the coarse-grain cost measure used by Figure 7 of the
        paper: each switch-to-switch wire uses two ports and each
        terminal uses one switch port.
        """
        return 2 * self.num_links + self.num_terminals

    # ------------------------------------------------------------------
    # Level-local adjacency
    # ------------------------------------------------------------------
    def up_neighbors(self, level: int, index: int) -> tuple[int, ...]:
        """Level-local indices of the up-neighbors of switch ``index``.

        ``level`` is 0-based (0 = leaves).  Root switches return ``()``.
        """
        if level == self.num_levels - 1:
            return ()
        return self._up[level][index]

    def down_neighbors(self, level: int, index: int) -> tuple[int, ...]:
        """Level-local indices of the down-neighbors of switch ``index``."""
        if level == 0:
            return ()
        return self._down[level - 1][index]

    def up_degree(self, level: int, index: int) -> int:
        """Up-link count of a switch (0 for roots)."""
        return len(self.up_neighbors(level, index))

    def down_degree(self, level: int, index: int) -> int:
        """Down-link count (terminals count as leaf down-links)."""
        if level == 0:
            return self.hosts_per_leaf
        return len(self.down_neighbors(level, index))

    # ------------------------------------------------------------------
    # Flat-id view
    # ------------------------------------------------------------------
    def switch_id(self, level: int, index: int) -> int:
        """Flat switch id of a (level, index) pair."""
        if not 0 <= level < self.num_levels:
            raise NetworkError(f"level {level} out of range")
        if not 0 <= index < self.level_sizes[level]:
            raise NetworkError(f"index {index} out of range at level {level}")
        return self._offsets[level] + index

    def switch_level(self, switch: int) -> tuple[int, int]:
        """Inverse of :meth:`switch_id`: ``(level, index)`` of a flat id."""
        if not 0 <= switch < self.num_switches:
            raise NetworkError(f"switch {switch} out of range")
        for level in range(self.num_levels):
            if switch < self._offsets[level + 1]:
                return level, switch - self._offsets[level]
        raise AssertionError("unreachable")

    def links(self) -> list[Link]:
        """All switch-to-switch links in a stable order.

        The order is: stage 0 (leaf to level 2) links sorted by (lower
        switch index, upper switch index), then stage 1, and so on.
        Fault injection identifies cables by position in this list.

        The enumeration is memoized (the topology is immutable after
        construction) but each call returns a **fresh list** -- callers
        such as :func:`repro.faults.removal.shuffled_links` shuffle the
        result in place.
        """
        if self._links_cache is None:
            out: list[Link] = []
            for stage, rows in enumerate(self._up):
                lo_off = self._offsets[stage]
                hi_off = self._offsets[stage + 1]
                for s, row in enumerate(rows):
                    for t in row:
                        out.append(Link(lo_off + s, hi_off + t))
            self._links_cache = tuple(out)
        return list(self._links_cache)

    def links_array(self):
        """Links as an int32 ``(L, 2)`` array of flat switch-id pairs.

        Rows follow the exact :meth:`links` order with ``lo`` in column
        0 -- ``links_array()[i]`` names the same cable as
        ``links()[i]``.  Built without materializing :class:`Link`
        objects; the array is memoized and returned as a read-only
        view.
        """
        if self._links_array_cache is None:
            import numpy as np

            parts = []
            for stage, rows in enumerate(self._up):
                lo_off = self._offsets[stage]
                hi_off = self._offsets[stage + 1]
                counts = np.fromiter(
                    (len(row) for row in rows),
                    dtype=np.int64,
                    count=len(rows),
                )
                stage_links = np.empty((int(counts.sum()), 2), dtype=np.int32)
                stage_links[:, 0] = np.repeat(
                    np.arange(lo_off, lo_off + len(rows), dtype=np.int32),
                    counts,
                )
                stage_links[:, 1] = np.fromiter(
                    (t for row in rows for t in row),
                    dtype=np.int32,
                    count=stage_links.shape[0],
                )
                stage_links[:, 1] += np.int32(hi_off)
                parts.append(stage_links)
            joined = (
                np.concatenate(parts)
                if parts
                else np.empty((0, 2), dtype=np.int32)
            )
            joined.setflags(write=False)
            self._links_array_cache = joined
        return self._links_array_cache

    def adjacency(self) -> list[list[int]]:
        """Flat-id adjacency lists over switches (terminals excluded)."""
        adj: list[list[int]] = [[] for _ in range(self.num_switches)]
        for stage, rows in enumerate(self._up):
            lo_off = self._offsets[stage]
            hi_off = self._offsets[stage + 1]
            for s, row in enumerate(rows):
                for t in row:
                    adj[lo_off + s].append(hi_off + t)
                    adj[hi_off + t].append(lo_off + s)
        return adj

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def terminal_switch(self, terminal: int) -> int:
        """Flat id of the leaf switch hosting ``terminal``."""
        if not 0 <= terminal < self.num_terminals:
            raise NetworkError(f"terminal {terminal} out of range")
        return terminal // self.hosts_per_leaf

    def leaf_terminals(self, leaf_index: int) -> range:
        """Terminal ids attached to leaf ``leaf_index`` (level-local)."""
        if not 0 <= leaf_index < self.num_leaves:
            raise NetworkError(f"leaf {leaf_index} out of range")
        h = self.hosts_per_leaf
        return range(leaf_index * h, (leaf_index + 1) * h)

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------
    def is_radix_regular(self) -> bool:
        """Whether every switch honours the radix-regular port budget.

        Per the paper: every non-root switch has ``R/2`` up-links and
        ``R/2`` down-links (terminals count as down-links of leaves) and
        every root has ``R`` down-links.
        """
        half = self.radix // 2
        if self.radix % 2 != 0:
            return False
        if self.hosts_per_leaf != half:
            return False
        last = self.num_levels - 1
        for level in range(self.num_levels):
            for index in range(self.level_sizes[level]):
                up = self.up_degree(level, index)
                down = (
                    self.hosts_per_leaf
                    if level == 0
                    else len(self.down_neighbors(level, index))
                )
                if level == last:
                    if down != self.radix:
                        return False
                elif up != half or down != half:
                    return False
        return True

    def validate(self) -> None:
        """Raise :class:`NetworkError` on any port-budget violation.

        Unlike :meth:`is_radix_regular` this tolerates non-regular
        networks; it only checks that no switch exceeds the radix.
        """
        last = self.num_levels - 1
        for level in range(self.num_levels):
            for index in range(self.level_sizes[level]):
                ports = self.up_degree(level, index)
                ports += (
                    self.hosts_per_leaf
                    if level == 0
                    else len(self.down_neighbors(level, index))
                )
                if ports > self.radix:
                    raise NetworkError(
                        f"switch (level={level}, index={index}) uses {ports} "
                        f"ports, exceeding radix {self.radix}"
                    )
                if level != last and self.up_degree(level, index) == 0:
                    raise NetworkError(
                        f"switch (level={level}, index={index}) has no "
                        "up-links; network is not a folded Clos"
                    )

    # ------------------------------------------------------------------
    # Interoperability
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Return the switch graph as a :class:`networkx.Graph`.

        Nodes carry ``level`` attributes; terminals are not included.
        """
        import networkx as nx

        graph = nx.Graph(name=self.name)
        for level in range(self.num_levels):
            for index in range(self.level_sizes[level]):
                graph.add_node(self.switch_id(level, index), level=level)
        graph.add_edges_from((link.lo, link.hi) for link in self.links())
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} R={self.radix} "
            f"levels={self.level_sizes} T={self.num_terminals}>"
        )


class DirectNetwork:
    """A direct network: switches host terminals and link to each other.

    This models the paper's random regular networks (RRN, the Jellyfish
    baseline): ``N`` switches of network degree ``delta`` with ``hosts``
    terminals per switch, so the radix is ``delta + hosts``.
    """

    def __init__(
        self,
        adjacency: Sequence[Iterable[int]],
        hosts_per_switch: int,
        name: str = "direct",
    ) -> None:
        if hosts_per_switch < 0:
            raise NetworkError("hosts_per_switch must be non-negative")
        self.hosts_per_switch = hosts_per_switch
        self.name = name
        self._adj: list[tuple[int, ...]] = []
        n = len(adjacency)
        for s, nbrs in enumerate(adjacency):
            row = tuple(sorted(nbrs))
            if len(set(row)) != len(row):
                raise NetworkError(f"switch {s}: parallel links {row}")
            if s in row:
                raise NetworkError(f"switch {s}: self-link")
            for t in row:
                if not 0 <= t < n:
                    raise NetworkError(f"switch {s}: neighbor {t} out of range")
            self._adj.append(row)
        # Symmetry check.
        for s, row in enumerate(self._adj):
            for t in row:
                if s not in self._adj[t]:
                    raise NetworkError(f"asymmetric link {s} -> {t}")
        # links()/links_array() memos (construction-immutable).
        self._links_cache: tuple[Link, ...] | None = None
        self._links_array_cache = None

    @property
    def num_switches(self) -> int:
        """Switch count ``N``."""
        return len(self._adj)

    @property
    def num_terminals(self) -> int:
        """Compute nodes ``T = N * hosts_per_switch``."""
        return self.num_switches * self.hosts_per_switch

    @property
    def num_links(self) -> int:
        """Undirected switch-to-switch cables."""
        return sum(len(row) for row in self._adj) // 2

    @property
    def num_ports(self) -> int:
        """Total ports in use (two per cable, one per terminal)."""
        return 2 * self.num_links + self.num_terminals

    @property
    def radix(self) -> int:
        """Worst-case port count over all switches (degree + hosts)."""
        if not self._adj:
            return self.hosts_per_switch
        return max(len(row) for row in self._adj) + self.hosts_per_switch

    def degree(self, switch: int) -> int:
        return len(self._adj[switch])

    def neighbors(self, switch: int) -> tuple[int, ...]:
        return self._adj[switch]

    def adjacency(self) -> list[list[int]]:
        return [list(row) for row in self._adj]

    def links(self) -> list[Link]:
        """Cables ``(s, t)`` with ``s < t``; memoized, fresh list per call."""
        if self._links_cache is None:
            out: list[Link] = []
            for s, row in enumerate(self._adj):
                for t in row:
                    if s < t:
                        out.append(Link(s, t))
            self._links_cache = tuple(out)
        return list(self._links_cache)

    def links_array(self):
        """Links as an int32 ``(L, 2)`` array in :meth:`links` order."""
        if self._links_array_cache is None:
            import numpy as np

            pairs = [
                (s, t) for s, row in enumerate(self._adj) for t in row if s < t
            ]
            joined = (
                np.array(pairs, dtype=np.int32)
                if pairs
                else np.empty((0, 2), dtype=np.int32)
            )
            joined.setflags(write=False)
            self._links_array_cache = joined
        return self._links_array_cache

    def terminal_switch(self, terminal: int) -> int:
        if not 0 <= terminal < self.num_terminals:
            raise NetworkError(f"terminal {terminal} out of range")
        return terminal // self.hosts_per_switch

    def is_regular(self) -> bool:
        """Whether every switch has the same network degree."""
        degrees = {len(row) for row in self._adj}
        return len(degrees) <= 1

    def to_networkx(self):
        import networkx as nx

        graph = nx.Graph(name=self.name)
        graph.add_nodes_from(range(self.num_switches))
        graph.add_edges_from((link.lo, link.hi) for link in self.links())
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DirectNetwork {self.name!r} N={self.num_switches} "
            f"T={self.num_terminals}>"
        )
