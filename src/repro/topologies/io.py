"""Topology serialization: JSON round-trip, edge lists, Graphviz DOT.

Operators deploying an RFC need the concrete random wiring -- unlike a
CFT it cannot be regenerated from parameters alone (a new sample is a
different network).  This module persists instances:

* :func:`to_json` / :func:`from_json` -- lossless round-trip for both
  :class:`FoldedClos` and :class:`DirectNetwork` (format version
  checked);
* :func:`to_edge_list` -- flat ``a b`` switch-id pairs for external
  tools;
* :func:`to_dot` -- Graphviz with levels as ranks, for small diagrams.
"""

from __future__ import annotations

import json
from pathlib import Path

from .base import DirectNetwork, FoldedClos, NetworkError

__all__ = [
    "to_json",
    "from_json",
    "save",
    "load",
    "to_edge_list",
    "to_dot",
]

FORMAT_VERSION = 1


def to_json(network: FoldedClos | DirectNetwork) -> str:
    """Serialize a topology to a JSON string (format version 1)."""
    if isinstance(network, FoldedClos):
        payload = {
            "format": FORMAT_VERSION,
            "kind": "folded-clos",
            "name": network.name,
            "radix": network.radix,
            "hosts_per_leaf": network.hosts_per_leaf,
            "level_sizes": network.level_sizes,
            "up_adjacency": [
                [
                    list(network.up_neighbors(level, s))
                    for s in range(network.level_sizes[level])
                ]
                for level in range(network.num_levels - 1)
            ],
        }
    elif isinstance(network, DirectNetwork):
        payload = {
            "format": FORMAT_VERSION,
            "kind": "direct",
            "name": network.name,
            "hosts_per_switch": network.hosts_per_switch,
            "adjacency": [list(row) for row in network.adjacency()],
        }
    else:
        raise NetworkError(f"cannot serialize {type(network).__name__}")
    return json.dumps(payload, separators=(",", ":"))


def from_json(text: str) -> FoldedClos | DirectNetwork:
    """Rebuild a topology from :func:`to_json` output."""
    payload = json.loads(text)
    version = payload.get("format")
    if version != FORMAT_VERSION:
        raise NetworkError(
            f"unsupported topology format {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    kind = payload.get("kind")
    if kind == "folded-clos":
        return FoldedClos(
            payload["level_sizes"],
            payload["up_adjacency"],
            hosts_per_leaf=payload["hosts_per_leaf"],
            radix=payload["radix"],
            name=payload.get("name", "folded-clos"),
        )
    if kind == "direct":
        return DirectNetwork(
            payload["adjacency"],
            hosts_per_switch=payload["hosts_per_switch"],
            name=payload.get("name", "direct"),
        )
    raise NetworkError(f"unknown topology kind {kind!r}")


def save(network: FoldedClos | DirectNetwork, path: str | Path) -> None:
    """Write :func:`to_json` output to a file."""
    Path(path).write_text(to_json(network))


def load(path: str | Path) -> FoldedClos | DirectNetwork:
    """Read a topology previously written by :func:`save`."""
    return from_json(Path(path).read_text())


def to_edge_list(network: FoldedClos | DirectNetwork) -> str:
    """Flat switch-to-switch edge list, one ``lo hi`` pair per line."""
    return "\n".join(f"{link.lo} {link.hi}" for link in network.links())


def to_dot(network: FoldedClos | DirectNetwork) -> str:
    """Graphviz DOT; folded Clos levels become ``rank=same`` groups."""
    lines = [f'graph "{network.name}" {{']
    if isinstance(network, FoldedClos):
        for level in range(network.num_levels):
            ids = " ".join(
                str(network.switch_id(level, s))
                for s in range(network.level_sizes[level])
            )
            lines.append(f"  {{ rank=same; {ids} }}")
    for link in network.links():
        lines.append(f"  {link.lo} -- {link.hi};")
    lines.append("}")
    return "\n".join(lines)
