"""Array-native folded Clos representation for extreme-scale RFCs.

:class:`repro.topologies.base.FoldedClos` normalizes every stage into
Python lists of sorted tuples -- perfect for the paper-faithful
reference analyses, but at 10^5--10^6 terminals the per-edge Python
objects dominate both memory and construction time, and every
accelerated consumer immediately re-flattens the lists into arrays.
:class:`PackedFoldedClos` stores each inter-level stage **directly** as
a sorted-row CSR pair -- ``int64`` offsets (row starts overflow int32
near a million terminals; see lint RPR102) and ``int32`` column
indices -- plus derived down-CSR and terminal-attachment arrays, so:

* the vectorized Steger--Wormald generator
  (:mod:`repro.accel.generate`) builds stages without ever
  materializing ``list[set]`` rows;
* :class:`repro.accel.StageSweeper` (ancestor sweeps, up/down reach
  tables, fault keep-masks) indexes the stage arrays via
  :meth:`StageSweeper.from_arrays` with zero Python row iteration;
* the flat edge order equals the reference row-major sorted order, so
  links, keep masks and signatures are interchangeable between the
  packed and list representations.

The class duck-types the full read API of ``FoldedClos`` (levels, flat
switch ids, neighbors, links, terminals, validation), so routing,
faults, IO and both simulators accept it unchanged; conversions in
both directions (:meth:`from_folded` / :meth:`to_folded`) are exact
and round-trip tested in ``tests/test_packed_topology.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from .base import FoldedClos, Link, NetworkError, levels_are_consistent

__all__ = [
    "PackedFoldedClos",
    "packed_random_folded_clos",
    "packed_radix_regular_rfc",
    "stage_arrays_of",
]

StageArrays = tuple[NDArray[np.int64], NDArray[np.int32]]


def stage_arrays_of(topo) -> list[StageArrays]:
    """Per-stage sorted-row up-CSR ``(offsets, indices)`` of any topology.

    Packed topologies hand out their internal arrays directly; list
    based :class:`FoldedClos` instances are flattened once (row-major,
    rows already sorted).
    """
    if isinstance(topo, PackedFoldedClos):
        return topo.up_stage_arrays()
    arrays: list[StageArrays] = []
    for level in range(topo.num_levels - 1):
        n_lo = topo.level_sizes[level]
        rows = [topo.up_neighbors(level, s) for s in range(n_lo)]
        counts = np.fromiter(
            (len(row) for row in rows), dtype=np.int64, count=n_lo
        )
        offsets = np.zeros(n_lo + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        indices = np.fromiter(
            (t for row in rows for t in row),
            dtype=np.int32,
            count=int(offsets[-1]),
        )
        arrays.append((offsets, indices))
    return arrays


class PackedFoldedClos:
    """A folded Clos held as per-stage CSR arrays (see module docs).

    Parameters mirror :class:`~repro.topologies.base.FoldedClos` with
    the stage adjacency replaced by ``stage_arrays``: one
    ``(offsets, indices)`` pair per inter-level stage, ``offsets``
    int64 of length ``N_level + 1`` and ``indices`` int32 with every
    row strictly increasing (sorted, parallel-free).  Arrays are
    validated vectorized, stored read-only, and never copied back into
    Python rows.
    """

    def __init__(
        self,
        level_sizes: Sequence[int],
        stage_arrays: Sequence[StageArrays],
        hosts_per_leaf: int,
        radix: int,
        name: str = "packed-folded-clos",
    ) -> None:
        if not levels_are_consistent(level_sizes):
            raise NetworkError(f"bad level sizes {list(level_sizes)!r}")
        if len(stage_arrays) != len(level_sizes) - 1:
            raise NetworkError(
                f"{len(level_sizes)} levels need {len(level_sizes) - 1} "
                f"inter-level stages, got {len(stage_arrays)}"
            )
        if hosts_per_leaf < 0:
            raise NetworkError("hosts_per_leaf must be non-negative")
        self.level_sizes: list[int] = [int(n) for n in level_sizes]
        self.hosts_per_leaf = int(hosts_per_leaf)
        self.radix = int(radix)
        self.name = name

        up_offsets: list[NDArray[np.int64]] = []
        up_indices: list[NDArray[np.int32]] = []
        for stage, (offsets, indices) in enumerate(stage_arrays):
            n_lo = self.level_sizes[stage]
            n_hi = self.level_sizes[stage + 1]
            off = np.ascontiguousarray(offsets, dtype=np.int64)
            idx = np.ascontiguousarray(indices, dtype=np.int32)
            if off.shape != (n_lo + 1,) or off[0] != 0:
                raise NetworkError(
                    f"stage {stage}: offsets must be ({n_lo + 1},) "
                    "starting at 0"
                )
            if np.any(np.diff(off) < 0) or idx.shape != (int(off[-1]),):
                raise NetworkError(
                    f"stage {stage}: offsets/indices shape mismatch"
                )
            if idx.size and (idx.min() < 0 or idx.max() >= n_hi):
                raise NetworkError(
                    f"stage {stage}: neighbor index out of range "
                    f"for level of size {n_hi}"
                )
            if not _rows_strictly_sorted(off, idx):
                raise NetworkError(
                    f"stage {stage}: rows must be strictly increasing "
                    "(sorted, no parallel links)"
                )
            off.setflags(write=False)
            idx.setflags(write=False)
            up_offsets.append(off)
            up_indices.append(idx)
        self._up_offsets = tuple(up_offsets)
        self._up_indices = tuple(up_indices)

        # Down CSR derived vectorized: group stage edges by upper
        # endpoint; the stable argsort keeps sources ascending within
        # each row, matching FoldedClos's derived down tuples exactly.
        down_offsets: list[NDArray[np.int64]] = []
        down_indices: list[NDArray[np.int32]] = []
        for stage in range(len(self._up_offsets)):
            n_lo = self.level_sizes[stage]
            n_hi = self.level_sizes[stage + 1]
            idx = self._up_indices[stage]
            src = np.repeat(
                np.arange(n_lo, dtype=np.int32),
                np.diff(self._up_offsets[stage]),
            )
            counts = np.bincount(idx, minlength=n_hi)
            d_off = np.zeros(n_hi + 1, dtype=np.int64)
            np.cumsum(counts, out=d_off[1:])
            d_idx = src[np.argsort(idx, kind="stable")]
            d_off.setflags(write=False)
            d_idx.setflags(write=False)
            down_offsets.append(d_off)
            down_indices.append(d_idx)
        self._down_offsets = tuple(down_offsets)
        self._down_indices = tuple(down_indices)

        self._flat_offsets: list[int] = [0]
        for n in self.level_sizes:
            self._flat_offsets.append(self._flat_offsets[-1] + n)
        self._links_cache: tuple[Link, ...] | None = None
        self._links_array_cache: NDArray[np.int32] | None = None
        self._terminal_cache: NDArray[np.int32] | None = None

    # ------------------------------------------------------------------
    # Array accessors (the packed fast path)
    # ------------------------------------------------------------------
    def up_stage_arrays(self) -> list[StageArrays]:
        """Per-stage up-CSR ``(offsets, indices)``, read-only views."""
        return [
            (self._up_offsets[i], self._up_indices[i])
            for i in range(len(self._up_offsets))
        ]

    def down_stage_arrays(self) -> list[StageArrays]:
        """Per-stage down-CSR (upper switch -> lower sources)."""
        return [
            (self._down_offsets[i], self._down_indices[i])
            for i in range(len(self._down_offsets))
        ]

    def terminal_switches(self) -> NDArray[np.int32]:
        """int32 ``(T,)`` flat leaf-switch id of every terminal."""
        if self._terminal_cache is None:
            if self.hosts_per_leaf:
                attach = (
                    np.arange(self.num_terminals, dtype=np.int64)
                    // self.hosts_per_leaf
                ).astype(np.int32)
            else:
                attach = np.empty(0, dtype=np.int32)
            attach.setflags(write=False)
            self._terminal_cache = attach
        return self._terminal_cache

    # ------------------------------------------------------------------
    # Identity / sizes (FoldedClos duck API)
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self.level_sizes)

    @property
    def num_switches(self) -> int:
        return self._flat_offsets[-1]

    @property
    def num_leaves(self) -> int:
        return self.level_sizes[0]

    @property
    def num_terminals(self) -> int:
        return self.num_leaves * self.hosts_per_leaf

    @property
    def num_links(self) -> int:
        return sum(idx.size for idx in self._up_indices)

    @property
    def num_ports(self) -> int:
        return 2 * self.num_links + self.num_terminals

    # ------------------------------------------------------------------
    # Level-local adjacency
    # ------------------------------------------------------------------
    def up_neighbors(self, level: int, index: int) -> tuple[int, ...]:
        if level == self.num_levels - 1:
            return ()
        off = self._up_offsets[level]
        return tuple(
            self._up_indices[level][off[index] : off[index + 1]].tolist()
        )

    def down_neighbors(self, level: int, index: int) -> tuple[int, ...]:
        if level == 0:
            return ()
        off = self._down_offsets[level - 1]
        return tuple(
            self._down_indices[level - 1][off[index] : off[index + 1]].tolist()
        )

    def up_degree(self, level: int, index: int) -> int:
        if level == self.num_levels - 1:
            return 0
        off = self._up_offsets[level]
        return int(off[index + 1] - off[index])

    def down_degree(self, level: int, index: int) -> int:
        if level == 0:
            return self.hosts_per_leaf
        off = self._down_offsets[level - 1]
        return int(off[index + 1] - off[index])

    # ------------------------------------------------------------------
    # Flat-id view
    # ------------------------------------------------------------------
    def switch_id(self, level: int, index: int) -> int:
        if not 0 <= level < self.num_levels:
            raise NetworkError(f"level {level} out of range")
        if not 0 <= index < self.level_sizes[level]:
            raise NetworkError(f"index {index} out of range at level {level}")
        return self._flat_offsets[level] + index

    def switch_level(self, switch: int) -> tuple[int, int]:
        if not 0 <= switch < self.num_switches:
            raise NetworkError(f"switch {switch} out of range")
        for level in range(self.num_levels):
            if switch < self._flat_offsets[level + 1]:
                return level, switch - self._flat_offsets[level]
        raise AssertionError("unreachable")

    def links_array(self) -> NDArray[np.int32]:
        """Links as int32 ``(L, 2)`` flat-id pairs, reference order.

        Row ``i`` names the same cable as ``FoldedClos.links()[i]`` of
        the equivalent list topology: stage-major, then row-major with
        sorted upper endpoints.  Memoized, read-only.
        """
        if self._links_array_cache is None:
            parts = []
            for stage in range(len(self._up_offsets)):
                lo_off = self._flat_offsets[stage]
                hi_off = self._flat_offsets[stage + 1]
                idx = self._up_indices[stage]
                stage_links = np.empty((idx.size, 2), dtype=np.int32)
                stage_links[:, 0] = np.repeat(
                    np.arange(lo_off, lo_off + self.level_sizes[stage],
                              dtype=np.int32),
                    np.diff(self._up_offsets[stage]),
                )
                stage_links[:, 1] = idx
                stage_links[:, 1] += np.int32(hi_off)
                parts.append(stage_links)
            joined = (
                np.concatenate(parts)
                if parts
                else np.empty((0, 2), dtype=np.int32)
            )
            joined.setflags(write=False)
            self._links_array_cache = joined
        return self._links_array_cache

    def links(self) -> list[Link]:
        """Stable-order :class:`Link` list (fresh list per call)."""
        if self._links_cache is None:
            arr = self.links_array()
            self._links_cache = tuple(
                Link(int(a), int(b)) for a, b in arr.tolist()
            )
        return list(self._links_cache)

    def adjacency(self) -> list[list[int]]:
        """Flat-id adjacency lists over switches (terminals excluded)."""
        adj: list[list[int]] = [[] for _ in range(self.num_switches)]
        for a, b in self.links_array().tolist():
            adj[a].append(b)
            adj[b].append(a)
        return adj

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def terminal_switch(self, terminal: int) -> int:
        if not 0 <= terminal < self.num_terminals:
            raise NetworkError(f"terminal {terminal} out of range")
        return terminal // self.hosts_per_leaf

    def leaf_terminals(self, leaf_index: int) -> range:
        if not 0 <= leaf_index < self.num_leaves:
            raise NetworkError(f"leaf {leaf_index} out of range")
        h = self.hosts_per_leaf
        return range(leaf_index * h, (leaf_index + 1) * h)

    # ------------------------------------------------------------------
    # Structural checks (vectorized)
    # ------------------------------------------------------------------
    def _degree_arrays(self, level: int) -> tuple[NDArray, NDArray]:
        """``(up_degrees, down_degrees)`` of every switch at a level."""
        n = self.level_sizes[level]
        up = (
            np.diff(self._up_offsets[level])
            if level < self.num_levels - 1
            else np.zeros(n, dtype=np.int64)
        )
        down = (
            np.diff(self._down_offsets[level - 1])
            if level > 0
            else np.full(n, self.hosts_per_leaf, dtype=np.int64)
        )
        return up, down

    def is_radix_regular(self) -> bool:
        half = self.radix // 2
        if self.radix % 2 != 0 or self.hosts_per_leaf != half:
            return False
        last = self.num_levels - 1
        for level in range(self.num_levels):
            up, down = self._degree_arrays(level)
            if level == last:
                if np.any(down != self.radix):
                    return False
            elif np.any(up != half) or np.any(down != half):
                return False
        return True

    def validate(self) -> None:
        """Vectorized twin of :meth:`FoldedClos.validate`."""
        last = self.num_levels - 1
        for level in range(self.num_levels):
            up, down = self._degree_arrays(level)
            over = np.nonzero(up + down > self.radix)[0]
            if over.size:
                index = int(over[0])
                raise NetworkError(
                    f"switch (level={level}, index={index}) uses "
                    f"{int(up[index] + down[index])} ports, exceeding "
                    f"radix {self.radix}"
                )
            if level != last:
                dead = np.nonzero(up == 0)[0]
                if dead.size:
                    raise NetworkError(
                        f"switch (level={level}, index={int(dead[0])}) has "
                        "no up-links; network is not a folded Clos"
                    )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_folded(cls, topo: FoldedClos) -> "PackedFoldedClos":
        """Exact packed copy of a list-based topology."""
        return cls(
            topo.level_sizes,
            stage_arrays_of(topo),
            hosts_per_leaf=topo.hosts_per_leaf,
            radix=topo.radix,
            name=topo.name,
        )

    def to_folded(self) -> FoldedClos:
        """Exact list-based copy (row tuples already sorted)."""
        stages = []
        for level in range(self.num_levels - 1):
            off = self._up_offsets[level]
            idx = self._up_indices[level]
            stages.append(
                [
                    idx[off[s] : off[s + 1]].tolist()
                    for s in range(self.level_sizes[level])
                ]
            )
        return FoldedClos(
            self.level_sizes,
            stages,
            hosts_per_leaf=self.hosts_per_leaf,
            radix=self.radix,
            name=self.name,
        )

    def to_networkx(self):
        import networkx as nx

        graph = nx.Graph(name=self.name)
        for level in range(self.num_levels):
            for index in range(self.level_sizes[level]):
                graph.add_node(self.switch_id(level, index), level=level)
        graph.add_edges_from(
            (int(a), int(b)) for a, b in self.links_array().tolist()
        )
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PackedFoldedClos {self.name!r} R={self.radix} "
            f"levels={self.level_sizes} T={self.num_terminals}>"
        )


def _rows_strictly_sorted(
    offsets: NDArray[np.int64], indices: NDArray[np.int32]
) -> bool:
    if indices.size == 0:
        return True
    ascending = np.ones(indices.size, dtype=bool)
    ascending[1:] = indices[1:] > indices[:-1]
    ascending[offsets[1:-1]] = True
    return bool(np.all(ascending))


# ----------------------------------------------------------------------
# Array-native RFC generation
# ----------------------------------------------------------------------

def packed_random_folded_clos(
    level_sizes: Sequence[int],
    up_degrees: Sequence[int],
    hosts_per_leaf: int,
    rng: "np.random.Generator | int",
    radix: int | None = None,
    name: str | None = None,
) -> PackedFoldedClos:
    """Array-native twin of :func:`repro.core.rfc.random_folded_clos`.

    Each stage is drawn by the batched pairing-model generator
    (:func:`repro.accel.generate.random_bipartite_csr`) straight into
    CSR arrays -- no ``list[set]`` rows exist at any point.  The RNG is
    a :class:`numpy.random.Generator` (or an explicit seed for one);
    samples are distribution-equivalent, not stream-compatible, with
    the ``random.Random``-driven reference (see
    :mod:`repro.accel.generate`).
    """
    from ..accel.generate import random_bipartite_csr

    if len(up_degrees) != len(level_sizes) - 1:
        raise NetworkError("need one up-degree per stage")
    gen = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    stages: list[StageArrays] = []
    max_ports = [0] * len(level_sizes)
    for i, d1 in enumerate(up_degrees):
        n1, n2 = int(level_sizes[i]), int(level_sizes[i + 1])
        total = n1 * d1
        if total % n2 != 0:
            raise NetworkError(
                f"stage {i}: {n1} x {d1} up-links do not divide evenly "
                f"over {n2} upper switches"
            )
        d2 = total // n2
        stages.append(random_bipartite_csr(n1, d1, n2, d2, rng=gen))
        max_ports[i] += d1
        max_ports[i + 1] += d2
    max_ports[0] += hosts_per_leaf
    return PackedFoldedClos(
        level_sizes,
        stages,
        hosts_per_leaf=hosts_per_leaf,
        radix=radix if radix is not None else max(max_ports),
        name=name or f"packed-RFC(levels={[int(n) for n in level_sizes]})",
    )


def packed_radix_regular_rfc(
    radix: int,
    n1: int,
    levels: int,
    rng: "np.random.Generator | int",
) -> PackedFoldedClos:
    """Array-native twin of :func:`repro.core.rfc.radix_regular_rfc`."""
    from ..core.rfc import rfc_level_sizes

    if radix < 4 or radix % 2 != 0:
        raise NetworkError(f"radix must be even and >= 4, got {radix}")
    half = radix // 2
    sizes = rfc_level_sizes(n1, levels)
    if half > sizes[-1]:
        raise NetworkError(
            f"radix {radix} too large: top stage needs R/2 <= N_l = {sizes[-1]}"
        )
    return packed_random_folded_clos(
        sizes,
        up_degrees=[half] * (levels - 1),
        hosts_per_leaf=half,
        rng=rng,
        radix=radix,
        name=f"packed-RFC(R={radix}, N1={n1}, l={levels})",
    )
