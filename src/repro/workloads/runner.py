"""One-call workload runs: simulator + tracker + FCT surface.

:func:`run_workload` wires a :class:`~repro.workloads.flows.FlowTraffic`
into any of the four engines, attaches a
:class:`~repro.workloads.tracker.FlowTracker`, and returns the usual
:class:`~repro.simulation.stats.SimResult` with ``flow_stats``
populated -- the same side-channel pattern ``metrics`` uses (excluded
from equality, stripped before caching).
"""

from __future__ import annotations

import dataclasses

from ..obs.hooks import MultiObserver, SimObserver
from ..obs.trace import TraceWriter
from ..simulation.config import SimulationParams
from ..simulation.engine import Simulator
from ..simulation.stats import SimResult
from .flows import FlowTraffic
from .tracker import FlowTracker

__all__ = ["nominal_load", "run_workload"]


def nominal_load(workload: FlowTraffic, params: SimulationParams) -> float:
    """Offered load to report for a scheduled workload.

    The schedule's calibrated target when the generator recorded one,
    otherwise the load its packet volume implies over the horizon --
    clamped into the simulator's ``(0, 1]`` validation range (an
    overdriven incast can imply > 1.0 offered; accepted load is
    measured, not assumed).
    """
    schedule = workload.flow_schedule
    load = schedule.offered_load
    if load is None:
        load = schedule.estimated_load(
            params.packet_phits, params.horizon
        )
    return min(1.0, max(1e-9, load))


def run_workload(
    topo,
    workload: FlowTraffic,
    params: SimulationParams | None = None,
    *,
    observer: SimObserver | None = None,
    trace_path=None,
    trace_writer: TraceWriter | None = None,
) -> SimResult:
    """Run one workload; returns a result with ``flow_stats`` set.

    ``trace_path`` (or an explicit ``trace_writer``, e.g. in-memory
    ``TraceWriter(None)``) streams ``flow_complete`` records through
    the :mod:`repro.obs` trace pipeline; ``observer`` composes any
    additional observer alongside the tracker.
    """
    params = params or SimulationParams()
    owns_writer = False
    writer = trace_writer
    if writer is None and trace_path is not None:
        writer = TraceWriter(trace_path)
        owns_writer = True
    tracker = FlowTracker(workload.flow_schedule, writer=writer)
    composed: SimObserver = tracker
    if observer is not None:
        composed = MultiObserver([observer, tracker])
    sim = Simulator(
        topo,
        workload,
        nominal_load(workload, params),
        params,
        observer=composed,
    )
    result = sim.run()
    if owns_writer:
        writer.close()
    return dataclasses.replace(
        result, flow_stats=tracker.summary(params.packet_phits)
    )
