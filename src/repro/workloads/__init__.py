"""Open-loop flow/RPC workloads with FCT reporting.

The packet simulator evaluates topologies under Bernoulli per-packet
patterns; this package layers datacenter-style **flow** workloads on
top of the same engines:

* :mod:`repro.workloads.flows` -- generators (Poisson arrivals with
  elephant/mice, fixed-RPC or shuffle sizes; leaf incast fan-in), the
  pre-serialized :class:`FlowSchedule`, and the :class:`FlowTraffic`
  adapter the engines duck-type on;
* :mod:`repro.workloads.tracker` -- the :class:`FlowTracker` observer
  emitting ``flow_complete`` records through :mod:`repro.obs`;
* :mod:`repro.workloads.fct` -- FCT/slowdown statistics;
* :mod:`repro.workloads.runner` -- :func:`run_workload`, returning a
  :class:`~repro.simulation.stats.SimResult` with ``flow_stats``.

Flow mode consumes no engine RNG for arrivals or destinations, so the
three exact engines remain bit-for-bit identical (including the
``flow_complete`` stream); the relaxed engine stays statistically
equivalent.  See ``docs/WORKLOADS.md``.
"""

from .fct import fct_percentile, fct_summary, ideal_fct
from .flows import (
    FixedRpcSizes,
    Flow,
    FlowSchedule,
    FlowTraffic,
    LognormalMixSizes,
    ShuffleSizes,
    WORKLOAD_NAMES,
    incast_flows,
    make_workload,
    poisson_flows,
    shuffle_flows,
    workload_from_spec,
    workload_spec,
)
from .runner import nominal_load, run_workload
from .tracker import FlowTracker

__all__ = [
    "Flow",
    "FlowSchedule",
    "FlowTraffic",
    "FlowTracker",
    "FixedRpcSizes",
    "LognormalMixSizes",
    "ShuffleSizes",
    "WORKLOAD_NAMES",
    "fct_percentile",
    "fct_summary",
    "ideal_fct",
    "incast_flows",
    "make_workload",
    "nominal_load",
    "poisson_flows",
    "run_workload",
    "shuffle_flows",
    "workload_from_spec",
    "workload_spec",
]
