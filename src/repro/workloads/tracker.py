"""Flow tracker: maps delivered packets back to flows.

A :class:`FlowTracker` is a :class:`~repro.obs.hooks.SimObserver` --
it rides the engine's existing hook points, writes only its own state
(the RPR104 observer discipline: no engine mutation, no RNG), and so
cannot perturb the run.  Enabled-vs-disabled runs stay bit-for-bit
identical on the exact engines, which
``tests/test_workload_differential.py`` pins against a golden trace.

``flow_complete`` records flow through the :mod:`repro.obs` trace
pipeline: pass a :class:`~repro.obs.trace.TraceWriter` (file-backed or
in-memory) and each completion emits one sorted-key JSONL record::

    {"dst": 3, "end": 78, "ev": "flow_complete", "fct": 78,
     "flow": 2, "size": 4, "src": 1, "start": 0}

The completion order is the engines' ejection order, so the record
stream itself is part of the exact engines' bit-for-bit contract.
"""

from __future__ import annotations

from array import array

from ..obs.hooks import SimObserver
from ..obs.trace import TraceWriter
from .fct import fct_summary
from .flows import FlowSchedule

__all__ = ["FlowTracker"]


class FlowTracker(SimObserver):
    """Per-flow start/completion bookkeeping over ``on_eject``."""

    def __init__(
        self, schedule: FlowSchedule, writer: TraceWriter | None = None
    ) -> None:
        self.schedule = schedule
        self.writer = writer
        self._remaining = array("q", (f.size for f in schedule.flows))
        self._last_delivery = array("q", bytes(8 * len(schedule.flows)))
        self._dropped: set[int] = set()
        #: ``(flow_index, completion_cycle)`` in completion order.
        self.completions: list[tuple[int, int]] = []

    def on_run_start(self, sim) -> None:
        self._remaining = array(
            "q", (f.size for f in self.schedule.flows)
        )
        self._last_delivery = array(
            "q", bytes(8 * len(self.schedule.flows))
        )
        self._dropped = set()
        self.completions = []

    def on_drop(self, time: int, terminal: int, packet) -> None:
        serial = packet.serial
        if 0 <= serial < len(self.schedule.flow_of_serial):
            self._dropped.add(self.schedule.flow_of_serial[serial])

    def on_eject(self, time: int, packet, latency: int, phits: int) -> None:
        serial = packet.serial
        if not 0 <= serial < len(self.schedule.flow_of_serial):
            return
        index = self.schedule.flow_of_serial[serial]
        delivered = packet.created + latency
        if delivered > self._last_delivery[index]:
            self._last_delivery[index] = delivered
        remaining = self._remaining[index] - 1
        self._remaining[index] = remaining
        if remaining == 0 and index not in self._dropped:
            end = self._last_delivery[index]
            self.completions.append((index, end))
            if self.writer is not None:
                flow = self.schedule.flows[index]
                self.writer.emit(
                    {
                        "ev": "flow_complete",
                        "flow": flow.flow_id,
                        "src": flow.src,
                        "dst": flow.dst,
                        "size": flow.size,
                        "start": flow.start,
                        "end": end,
                        "fct": end - flow.start,
                    }
                )

    # ------------------------------------------------------------------
    # Post-run reporting
    # ------------------------------------------------------------------
    def fct_records(self) -> list[tuple[int, int]]:
        """``(fct, size)`` per completed flow, in completion order."""
        flows = self.schedule.flows
        return [
            (end - flows[index].start, flows[index].size)
            for index, end in self.completions
        ]

    def summary(self, packet_phits: int) -> dict:
        """The ``SimResult.flow_stats`` payload for this run."""
        return fct_summary(
            self.fct_records(),
            packet_phits,
            flows_total=len(self.schedule.flows),
            flows_dropped=len(self._dropped),
        )
