"""Open-loop flow/RPC workload generation.

The paper evaluates topologies under per-packet synthetic patterns
(:mod:`repro.simulation.traffic`); datacenter services are judged on
**flow completion time** under realistic arrival processes -- the
methodology Jellyfish used to make random topologies credible and the
one incast/elephant-mice studies stress for flat fabrics.  This module
provides that layer:

* a :class:`Flow` is ``size`` packets from one source terminal to one
  destination, all released into the source's (unbounded) injection
  queue at the flow's ``start`` cycle -- the classic open-loop model
  where the NIC serializes at ``packet_phits`` cycles per packet;
* a :class:`FlowSchedule` pins the complete workload before the run:
  packet serials are pre-assigned in a canonical engine-independent
  order, so every engine releases the *same* packets and a serial
  identifies its flow without any engine cooperation;
* generators (:func:`poisson_flows`, :func:`incast_flows`,
  :func:`shuffle_flows`) build schedules from a single integer seed
  via a private ``random.Random`` -- workload randomness never touches
  the engine RNG stream;
* :class:`FlowTraffic` adapts a schedule to the simulator's traffic
  interface.  Engines detect the ``flow_schedule`` attribute and
  switch from Bernoulli generation to scheduled release; in the exact
  engines flow mode consumes **no** RNG for arrivals or destinations,
  so reference/fast/vectorized stay bit-for-bit identical
  (``tests/test_workload_differential.py``).

Size distributions are small objects with ``sample(rng)`` and an
(approximate) ``mean`` used only to calibrate arrival rates to a
target offered load.
"""

from __future__ import annotations

import math
import random
from array import array
from dataclasses import dataclass

from ..simulation.traffic import TrafficPattern

__all__ = [
    "Flow",
    "FlowSchedule",
    "FlowTraffic",
    "FixedRpcSizes",
    "LognormalMixSizes",
    "ShuffleSizes",
    "WORKLOAD_NAMES",
    "incast_flows",
    "make_workload",
    "poisson_flows",
    "shuffle_flows",
    "workload_from_spec",
    "workload_spec",
]

WORKLOAD_NAMES = ("poisson-mix", "rpc", "shuffle", "incast")


@dataclass(frozen=True)
class Flow:
    """One open-loop flow: ``size`` packets ``src -> dst`` at ``start``."""

    flow_id: int
    src: int
    dst: int
    size: int
    start: int


class FlowSchedule:
    """A fixed, fully materialized workload for one simulation run.

    Serial assignment is the schedule's one engine-facing contract:
    flows are ordered by ``(start, flow_id)`` and each flow's packets
    get consecutive serials in that order.  Every engine creates
    packets with these pre-assigned serials, so
    :attr:`flow_of_serial` maps a delivered packet back to its flow
    regardless of which engine ran (and of arbitration order).
    """

    def __init__(
        self,
        flows,
        num_terminals: int,
        offered_load: float | None = None,
    ) -> None:
        ordered = sorted(flows, key=lambda f: (f.start, f.flow_id))
        seen: set[int] = set()
        for flow in ordered:
            if not 0 <= flow.src < num_terminals:
                raise ValueError(f"flow {flow.flow_id}: bad src {flow.src}")
            if not 0 <= flow.dst < num_terminals:
                raise ValueError(f"flow {flow.flow_id}: bad dst {flow.dst}")
            if flow.src == flow.dst:
                raise ValueError(
                    f"flow {flow.flow_id}: src == dst == {flow.src}"
                )
            if flow.size < 1:
                raise ValueError(f"flow {flow.flow_id}: empty flow")
            if flow.start < 0:
                raise ValueError(f"flow {flow.flow_id}: negative start")
            if flow.flow_id in seen:
                raise ValueError(f"duplicate flow id {flow.flow_id}")
            seen.add(flow.flow_id)
        self.flows: tuple[Flow, ...] = tuple(ordered)
        self.num_terminals = num_terminals
        self.offered_load = offered_load
        self.total_packets = sum(f.size for f in ordered)
        #: serial -> index into :attr:`flows`.
        flow_of_serial = array("q", bytes(8 * self.total_packets))
        #: Per-terminal release entries ``(start, dst, serial)``, sorted
        #: by (start, serial) -- the exact engines walk these.
        self.releases: list[list[tuple[int, int, int]]] = [
            [] for _ in range(num_terminals)
        ]
        serial = 0
        for index, flow in enumerate(ordered):
            row = self.releases[flow.src]
            for _ in range(flow.size):
                flow_of_serial[serial] = index
                row.append((flow.start, flow.dst, serial))
                serial += 1
        self.flow_of_serial = flow_of_serial

    def __len__(self) -> int:
        return len(self.flows)

    def flow_of(self, serial: int) -> Flow:
        """The flow a packet serial belongs to."""
        return self.flows[self.flow_of_serial[serial]]

    def arrival_lists(
        self, horizon: int
    ) -> tuple[list[int], list[int], list[int], list[int]]:
        """Flat per-packet arrival arrays for the relaxed engine.

        Returns ``(times, terminals, dsts, serials)`` sorted by
        ``(time, terminal, serial)`` -- the relaxed engine's arrival
        ordering (time-major, then terminal, mirroring its Bernoulli
        ``lexsort``), truncated at ``horizon``.
        """
        entries: list[tuple[int, int, int, int]] = []
        for terminal, row in enumerate(self.releases):
            for start, dst, serial in row:
                if start <= horizon:
                    entries.append((start, terminal, serial, dst))
        entries.sort()
        return (
            [e[0] for e in entries],
            [e[1] for e in entries],
            [e[3] for e in entries],
            [e[2] for e in entries],
        )

    def estimated_load(self, packet_phits: int, horizon: int) -> float:
        """Offered phits per terminal per cycle implied by the schedule."""
        if horizon <= 0 or self.num_terminals <= 0:
            return 0.0
        return (
            self.total_packets
            * packet_phits
            / (self.num_terminals * horizon)
        )


class FlowTraffic(TrafficPattern):
    """Adapter presenting a :class:`FlowSchedule` as a traffic pattern.

    Engines duck-type on the :attr:`flow_schedule` attribute and
    bypass :meth:`destination` entirely; calling it is a contract
    violation surfaced as ``LookupError`` (the "terminal stops
    generating" signal), so a schedule accidentally driven through the
    Bernoulli path generates nothing instead of garbage.
    """

    name = "flows"

    def __init__(self, schedule: FlowSchedule, name: str = "flows") -> None:
        super().__init__(schedule.num_terminals)
        self.flow_schedule = schedule
        self.name = name

    def destination(self, source: int, rng: random.Random) -> int:
        raise LookupError(
            "flow workloads release scheduled packets; destination() "
            "is never drawn"
        )


# ---------------------------------------------------------------------------
# Size distributions
# ---------------------------------------------------------------------------
class FixedRpcSizes:
    """Constant-size request/response RPCs."""

    def __init__(self, size: int = 4) -> None:
        if size < 1:
            raise ValueError("RPC size must be at least one packet")
        self.size = size
        self.mean = float(size)
        self.name = f"rpc{size}"

    def sample(self, rng: random.Random) -> int:
        return self.size


class LognormalMixSizes:
    """Elephant/mice mix: two lognormal modes, heavy tail capped.

    ``elephant_fraction`` of flows draw from the elephant mode.  The
    ``mean`` attribute is the analytic lognormal mixture mean (before
    the clamp) -- accurate enough for load calibration, which is its
    only consumer.
    """

    def __init__(
        self,
        mice_mu: float = 1.0,
        elephant_mu: float = 4.0,
        sigma: float = 0.6,
        elephant_fraction: float = 0.1,
        max_size: int = 512,
    ) -> None:
        if not 0.0 <= elephant_fraction <= 1.0:
            raise ValueError("elephant_fraction must be in [0, 1]")
        self.mice_mu = mice_mu
        self.elephant_mu = elephant_mu
        self.sigma = sigma
        self.elephant_fraction = elephant_fraction
        self.max_size = max_size
        moment = math.exp(sigma * sigma / 2.0)
        self.mean = (
            elephant_fraction * math.exp(elephant_mu) * moment
            + (1.0 - elephant_fraction) * math.exp(mice_mu) * moment
        )
        self.name = "lognormal-mix"

    def sample(self, rng: random.Random) -> int:
        mu = (
            self.elephant_mu
            if rng.random() < self.elephant_fraction
            else self.mice_mu
        )
        size = int(round(rng.lognormvariate(mu, self.sigma)))
        return max(1, min(self.max_size, size))


class ShuffleSizes:
    """Storage/shuffle transfers: uniformly sized bulk flows."""

    def __init__(self, min_size: int = 32, max_size: int = 96) -> None:
        if not 1 <= min_size <= max_size:
            raise ValueError("need 1 <= min_size <= max_size")
        self.min_size = min_size
        self.max_size = max_size
        self.mean = (min_size + max_size) / 2.0
        self.name = f"shuffle{min_size}-{max_size}"

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.min_size, self.max_size)


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------
def _uniform_other(rng: random.Random, num_terminals: int, src: int) -> int:
    dst = rng.randrange(num_terminals - 1)
    return dst if dst < src else dst + 1


def poisson_flows(
    num_terminals: int,
    *,
    sizes,
    duration: int,
    load: float,
    packet_phits: int = 16,
    seed: int = 0,
) -> FlowSchedule:
    """Poisson flow arrivals per terminal, uniform random destinations.

    The per-terminal flow arrival rate is calibrated so the *offered*
    packet rate matches ``load`` phits/terminal/cycle:
    ``rate = load / packet_phits / sizes.mean`` flows per cycle.  All
    randomness comes from one ``random.Random(seed)``; schedules are
    bit-for-bit reproducible and engine-independent.
    """
    if duration < 1:
        raise ValueError("duration must be positive")
    if not 0.0 < load <= 1.0:
        raise ValueError(f"load must be in (0, 1], got {load}")
    rng = random.Random(seed)
    rate = load / packet_phits / sizes.mean
    flows: list[Flow] = []
    flow_id = 0
    for src in range(num_terminals):
        t = 0.0
        while True:
            t += rng.expovariate(rate)
            start = int(t)
            if start > duration:
                break
            dst = _uniform_other(rng, num_terminals, src)
            flows.append(Flow(flow_id, src, dst, sizes.sample(rng), start))
            flow_id += 1
    return FlowSchedule(flows, num_terminals, offered_load=load)


def incast_flows(
    num_terminals: int,
    *,
    fanin: int,
    size: int = 1,
    events: int = 1,
    interval: int | None = None,
    aggregator: int | None = None,
    workers=None,
    seed: int = 0,
) -> FlowSchedule:
    """Request fan-in: ``fanin`` workers answer one aggregator at once.

    Each event releases ``fanin`` synchronized ``size``-packet flows
    into the aggregator's leaf -- the discriminating workload for flat
    datacenter fabrics (all responses collide on one ejection port).
    ``workers``/``aggregator`` pin the cast explicitly (closed-form
    tests do); by default each event draws a fresh aggregator and
    worker set.  Events are spaced ``interval`` cycles apart (default:
    enough for the previous cast to drain).
    """
    if not 1 <= fanin < num_terminals:
        raise ValueError("need 1 <= fanin < num_terminals")
    if events < 1:
        raise ValueError("need at least one incast event")
    if interval is None:
        interval = 4 * fanin * size * 16
    rng = random.Random(seed)
    flows: list[Flow] = []
    flow_id = 0
    for event in range(events):
        start = event * interval
        agg = (
            aggregator
            if aggregator is not None
            else rng.randrange(num_terminals)
        )
        if workers is not None:
            cast = list(workers)
        else:
            cast = rng.sample(
                [t for t in range(num_terminals) if t != agg], fanin
            )
        for worker in cast:
            flows.append(Flow(flow_id, worker, agg, size, start))
            flow_id += 1
    return FlowSchedule(flows, num_terminals)


def shuffle_flows(
    num_terminals: int,
    *,
    partners: int = 2,
    sizes=None,
    duration: int = 1_000,
    seed: int = 0,
) -> FlowSchedule:
    """Storage-shuffle: every terminal bulk-transfers to ``partners``
    random distinct peers, with starts staggered uniformly over
    ``duration`` (the all-to-all tail of a map/reduce stage)."""
    if not 1 <= partners < num_terminals:
        raise ValueError("need 1 <= partners < num_terminals")
    if sizes is None:
        sizes = ShuffleSizes()
    rng = random.Random(seed)
    flows: list[Flow] = []
    flow_id = 0
    for src in range(num_terminals):
        peers = rng.sample(
            [t for t in range(num_terminals) if t != src], partners
        )
        for dst in peers:
            start = rng.randrange(duration)
            flows.append(Flow(flow_id, src, dst, sizes.sample(rng), start))
            flow_id += 1
    return FlowSchedule(flows, num_terminals)


# ---------------------------------------------------------------------------
# Named catalog
# ---------------------------------------------------------------------------
def make_workload(
    name: str,
    num_terminals: int,
    *,
    seed: int = 0,
    load: float = 0.5,
    duration: int = 2_000,
    packet_phits: int = 16,
    fanin: int = 8,
    rpc_size: int = 4,
    partners: int = 2,
    events: int = 4,
) -> FlowTraffic:
    """Build a named workload (see :data:`WORKLOAD_NAMES`).

    The returned :class:`FlowTraffic` carries its schedule; pass it to
    :class:`~repro.simulation.engine.Simulator` like any traffic
    pattern.  Unused knobs for a given workload are ignored so one
    uniform signature serves the CLI, the executor and the sweeps.
    """
    if name == "poisson-mix":
        schedule = poisson_flows(
            num_terminals,
            sizes=LognormalMixSizes(),
            duration=duration,
            load=load,
            packet_phits=packet_phits,
            seed=seed,
        )
    elif name == "rpc":
        schedule = poisson_flows(
            num_terminals,
            sizes=FixedRpcSizes(rpc_size),
            duration=duration,
            load=load,
            packet_phits=packet_phits,
            seed=seed,
        )
    elif name == "shuffle":
        schedule = shuffle_flows(
            num_terminals,
            partners=partners,
            duration=duration,
            seed=seed,
        )
    elif name == "incast":
        schedule = incast_flows(
            num_terminals,
            fanin=min(fanin, num_terminals - 1),
            size=rpc_size,
            events=events,
            interval=max(1, duration // events),
            seed=seed,
        )
    else:
        raise ValueError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        )
    return FlowTraffic(schedule, name=f"flows:{name}")


def workload_spec(name: str, **options) -> tuple:
    """Canonical hashable workload description for task/cache keys.

    ``(name, ((key, value), ...))`` with options sorted by key -- the
    form :class:`repro.exec.executor.SimTask` carries and
    :func:`repro.exec.cache.cache_key` serializes.
    """
    if name not in WORKLOAD_NAMES:
        raise ValueError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        )
    return (name, tuple(sorted(options.items())))


def workload_from_spec(
    spec: tuple, num_terminals: int, seed: int = 0
) -> FlowTraffic:
    """Rebuild the workload a :func:`workload_spec` describes.

    ``seed`` comes from the task's ``traffic_seed`` so executor seed
    derivation (``repro.exec``) drives workload randomness the same
    way it drives traffic patterns.
    """
    name, options = spec
    return make_workload(name, num_terminals, seed=seed, **dict(options))
