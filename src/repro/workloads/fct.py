"""Flow-completion-time statistics.

FCT definitions used throughout (``docs/WORKLOADS.md``):

* a flow **starts** at its scheduled release cycle (all of its packets
  enter the source injection queue then);
* it **completes** when its last packet's tail is delivered (the
  engine's delivery timestamp, ``packet.created + latency`` as
  reported by ``on_eject``);
* ``FCT = completion - start`` in cycles;
* the **ideal** FCT of a ``size``-packet flow is its source
  serialization bound ``size * packet_phits`` (the NIC moves one phit
  per cycle), and **slowdown** is ``FCT / ideal`` -- the normalized
  FCT metric of the datacenter transport literature.

Percentiles use the same nearest-rank convention as
:meth:`repro.simulation.stats.SimStats.latency_percentile`
(``sorted[int(f * (n - 1))]``), so packet-latency and FCT tails are
directly comparable.
"""

from __future__ import annotations

__all__ = ["fct_percentile", "fct_summary", "ideal_fct"]


def fct_percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (NaN when empty)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return float(ordered[index])


def ideal_fct(size: int, packet_phits: int) -> int:
    """Source-serialization lower bound for a ``size``-packet flow."""
    return size * packet_phits


def fct_summary(completions, packet_phits: int, flows_total: int,
                flows_dropped: int = 0) -> dict:
    """Summarize completed flows into the ``SimResult.flow_stats`` dict.

    ``completions`` is an iterable of ``(fct, size)`` pairs for flows
    that finished inside the horizon.  The returned dict is plain
    (JSON-serializable, sorted rendering left to callers) and rides on
    :class:`~repro.simulation.stats.SimResult` as a side channel --
    excluded from equality and stripped from cache entries exactly
    like ``metrics``.
    """
    pairs = list(completions)
    fcts = [fct for fct, _ in pairs]
    slowdowns = [
        fct / ideal_fct(size, packet_phits) for fct, size in pairs
    ]
    completed = len(pairs)
    summary = {
        "flows_total": flows_total,
        "flows_completed": completed,
        "flows_dropped": flows_dropped,
        "packets": sum(size for _, size in pairs),
        "fct_mean": (sum(fcts) / completed) if completed else float("nan"),
        "fct_p50": fct_percentile(fcts, 0.50),
        "fct_p99": fct_percentile(fcts, 0.99),
        "fct_p999": fct_percentile(fcts, 0.999),
        "fct_max": float(max(fcts)) if fcts else float("nan"),
        "slowdown_mean": (
            sum(slowdowns) / completed if completed else float("nan")
        ),
        "slowdown_p50": fct_percentile(slowdowns, 0.50),
        "slowdown_p99": fct_percentile(slowdowns, 0.99),
    }
    return summary
