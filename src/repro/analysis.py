"""One-stop structural report for a topology.

Aggregates everything this library can say about a network -- sizes,
cost, distances, bisection, spectra, routing diversity, threshold
position and an empirical fault budget -- into a single
:class:`NetworkReport`.  This is what ``repro-rfc report`` prints and
what a downstream user would reach for first when handed a wiring
file.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .core.ancestors import has_updown_routing_of
from .core.theory import updown_probability, x_for_radix
from .faults.updown_survival import updown_fault_tolerance
from .graphs.bisection import estimate_bisection_width
from .graphs.metrics import average_distance, leaf_diameter
from .graphs.spectral import adjacency_spectrum_gap
from .routing.diversity import path_diversity_census
from .topologies.base import DirectNetwork, FoldedClos

__all__ = ["NetworkReport", "analyze_network"]

_FAULT_TRIAL_LINK_BUDGET = 5_000  # skip the slow sweep on big graphs


@dataclass(frozen=True)
class NetworkReport:
    """Everything worth knowing about one topology instance."""

    name: str
    kind: str
    terminals: int
    switches: int
    links: int
    ports: int
    radix: int
    levels: int | None
    leaf_diameter: int | None
    avg_distance: float
    bisection_estimate: int
    spectral_gap: float
    updown_routable: bool | None
    threshold_x: float | None
    routable_probability: float | None
    mean_ecmp_width: float | None
    unique_route_fraction: float | None
    fault_tolerance_percent: float | None

    def render(self) -> str:
        lines = [f"{self.name} ({self.kind})", "-" * 40]
        lines.append(
            f"size      : {self.terminals:,} terminals, "
            f"{self.switches:,} switches, {self.links:,} links, "
            f"{self.ports:,} ports (radix {self.radix})"
        )
        if self.levels is not None:
            lines.append(f"levels    : {self.levels}")
        if self.leaf_diameter is not None:
            lines.append(
                f"distances : leaf diameter {self.leaf_diameter}, "
                f"mean {self.avg_distance:.2f}"
            )
        else:
            lines.append(f"distances : mean {self.avg_distance:.2f}")
        lines.append(
            f"capacity  : bisection >= ~{self.bisection_estimate} links "
            f"(estimate), spectral gap {self.spectral_gap:.3f}"
        )
        if self.updown_routable is not None:
            lines.append(
                f"routing   : up/down routable = {self.updown_routable}; "
                f"threshold offset x = {self.threshold_x:+.2f} "
                f"(P ~ {self.routable_probability:.3f})"
            )
        if self.mean_ecmp_width is not None:
            lines.append(
                f"diversity : mean ECMP width {self.mean_ecmp_width:.1f}, "
                f"{self.unique_route_fraction:.0%} single-route pairs"
            )
        if self.fault_tolerance_percent is not None:
            lines.append(
                f"faults    : up/down survives ~"
                f"{self.fault_tolerance_percent:.1f}% random link failures"
            )
        return "\n".join(lines)


def analyze_network(
    network: FoldedClos | DirectNetwork,
    rng: random.Random | int | None = None,
    fault_trials: int = 5,
) -> NetworkReport:
    """Run the full structural analysis battery on one instance.

    ``fault_trials=0`` skips the (slowest) fault sweep; it is also
    skipped automatically on networks beyond a few thousand links.
    """
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    adjacency = network.adjacency()
    is_clos = isinstance(network, FoldedClos)

    try:
        mean_distance = average_distance(
            adjacency, sample=min(64, len(adjacency))
        )
    except ValueError:  # disconnected graph
        mean_distance = float("inf")

    if is_clos:
        leaves = [network.switch_id(0, i) for i in range(network.num_leaves)]
        try:
            diameter_: int | None = leaf_diameter(adjacency, leaves)
        except ValueError:  # disconnected leaf pairs
            diameter_ = None
        routable = has_updown_routing_of(network)
        x = x_for_radix(network.radix, network.num_leaves, network.num_levels)
        census = (
            path_diversity_census(network, sample_pairs=150, rng=rand)
            if routable
            else None
        )
        tolerance = None
        if (
            routable
            and fault_trials > 0
            and network.num_links <= _FAULT_TRIAL_LINK_BUDGET
        ):
            tolerance = updown_fault_tolerance(
                network, trials=fault_trials, rng=rand
            ).mean_percent
        return NetworkReport(
            name=network.name,
            kind="folded-clos",
            terminals=network.num_terminals,
            switches=network.num_switches,
            links=network.num_links,
            ports=network.num_ports,
            radix=network.radix,
            levels=network.num_levels,
            leaf_diameter=diameter_,
            avg_distance=mean_distance,
            bisection_estimate=estimate_bisection_width(
                adjacency, restarts=4, rng=rand
            ),
            spectral_gap=adjacency_spectrum_gap(adjacency),
            updown_routable=routable,
            threshold_x=x,
            routable_probability=updown_probability(x),
            mean_ecmp_width=census.mean_width if census else None,
            unique_route_fraction=(
                census.unique_route_fraction if census else None
            ),
            fault_tolerance_percent=tolerance,
        )

    return NetworkReport(
        name=network.name,
        kind="direct",
        terminals=network.num_terminals,
        switches=network.num_switches,
        links=network.num_links,
        ports=network.num_ports,
        radix=network.radix,
        levels=None,
        leaf_diameter=None,
        avg_distance=mean_distance,
        bisection_estimate=estimate_bisection_width(
            adjacency, restarts=4, rng=rand
        ),
        spectral_gap=adjacency_spectrum_gap(adjacency),
        updown_routable=None,
        threshold_x=None,
        routable_probability=None,
        mean_ecmp_width=None,
        unique_route_fraction=None,
        fault_tolerance_percent=None,
    )
