"""Table 3: fraction of link failures needed to disconnect.

Diameter-4 (3-level indirect / diameter-4 direct) instances of CFT,
RRN, RFC and OFT are built at matched terminal counts and subjected to
random link-failure sequences until the switch graph disconnects; the
table reports the mean failure fraction (paper: average of 100 random
orders).

Matching the paper's sizing: each family uses the smallest radix that
reaches the target terminal count at diameter 4 -- e.g. at T ~ 2048
the CFT needs R = 20 while RFC manages with R = 14 (the paper's own
example), which is why the CFT tolerates a larger *fraction* while
using far more ports.  OFT orders are the nearest prime powers.
"""

from __future__ import annotations

import math
import random

from ..core.rfc import radix_regular_rfc
from ..core.theory import rfc_max_leaves
from ..faults.disconnection import disconnection_fraction
from ..topologies.fattree import commodity_fat_tree
from ..topologies.galois import is_prime_power
from ..topologies.oft import oft_terminals, orthogonal_fat_tree
from ..topologies.rrn import random_regular_network
from .common import Table

__all__ = [
    "run",
    "cft_for_terminals",
    "rfc_for_terminals",
    "rrn_for_terminals",
    "oft_for_terminals",
]


def cft_for_terminals(target: int):
    """3-level CFT whose capacity is closest to ``target``."""
    best = None
    for half in range(2, 64):
        terminals = 2 * half**3
        gap = abs(terminals - target)
        if best is None or gap < best[0]:
            best = (gap, 2 * half)
    assert best is not None
    return commodity_fat_tree(best[1], 3)


def rfc_for_terminals(target: int, rng=None):
    """Smallest-radix 3-level RFC reaching ``target`` terminals."""
    for radix in range(6, 130, 2):
        half = radix // 2
        n1 = 2 * max(1, round(target / (2 * half)))
        if n1 < 2 * half:  # top stage needs R/2 <= N1/2
            continue
        if rfc_max_leaves(radix, 3) < n1:
            continue
        return radix_regular_rfc(radix, n1, 3, rng=rng)
    raise ValueError(f"no feasible RFC for {target} terminals")


def rrn_for_terminals(target: int, diameter: int = 4, rng=None):
    """Smallest-radix balanced RRN reaching ``target`` at ``diameter``."""
    for degree in range(3, 130):
        hosts = max(1, round(degree / diameter))
        n = max(degree + 1, math.ceil(target / hosts))
        if (n * degree) % 2:
            n += 1
        if 2 * n * math.log(n) <= float(degree) ** diameter:
            return random_regular_network(n, degree, hosts, rng=rng)
    raise ValueError(f"no feasible RRN for {target} terminals")


def oft_for_terminals(target: int, levels: int = 3):
    """OFT of the prime-power order whose capacity is closest."""
    best = None
    for q in range(2, 32):
        if not is_prime_power(q):
            continue
        gap = abs(oft_terminals(q, levels) - target)
        if best is None or gap < best[0]:
            best = (gap, q)
    assert best is not None
    return orthogonal_fat_tree(best[1], levels)


def run(quick: bool = True, seed: int = 0) -> Table:
    rng = random.Random(seed)
    if quick:
        targets = [512, 1024]
        trials = 10
        oft_targets = {1024}
    else:
        targets = [512, 1024, 2048, 4096, 8192]
        trials = 100
        oft_targets = {1024, 8192}

    table = Table(
        title="Table 3: % of link failures to disconnect (diameter 4)",
        headers=["~T", "CFT %", "RRN %", "RFC %", "OFT %"],
    )
    for target in targets:
        cft = cft_for_terminals(target)
        rrn = rrn_for_terminals(target, rng=rng)
        rfc = rfc_for_terminals(target, rng=rng)
        row: list = [target]
        for network in (cft, rrn, rfc):
            row.append(
                disconnection_fraction(network, trials=trials, rng=rng).mean_percent
            )
        if target in oft_targets:
            oft = oft_for_terminals(target)
            row.append(
                disconnection_fraction(oft, trials=trials, rng=rng).mean_percent
            )
        else:
            row.append(None)
        table.add(*row)
    table.note(
        "Paper reference (T~1024): CFT 51.3, RRN 49.0, RFC 38.2, OFT 21.6. "
        "Expected ordering: OFT weakest, RFC below CFT/RRN (smaller radix), "
        "CFT ~ RRN."
    )
    return table
