"""Figure 5: diameter versus compute nodes for radix-36 switches.

Analytic curves: smallest achievable diameter for each topology family
at a given terminal count (RFC diameters are even; RRN admits odd
ones).  The expected ordering -- OFT best, then RFC close to RRN, CFT
worst -- is asserted by the tests.

The empirical half of the experiment cross-validates the analytic RFC
curve at small scale: it generates RFC instances at (and just past) the
Theorem 4.2 size limit and measures the actual leaf-to-leaf diameter.
"""

from __future__ import annotations

import random

from ..core.rfc import rfc_with_updown
from ..core.theory import (
    cft_diameter,
    oft_diameter,
    rfc_diameter,
    rfc_max_terminals,
    rrn_diameter,
)
from ..graphs.metrics import leaf_diameter
from .common import Table

__all__ = ["run", "empirical_check"]

DEFAULT_RADIX = 36


def run(quick: bool = True, seed: int = 0, accel: bool = True) -> Table:
    radix = DEFAULT_RADIX
    terminal_counts = [
        100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
        1_000_000, 3_000_000, 10_000_000,
    ]
    table = Table(
        title=f"Figure 5: diameter vs compute nodes (radix {radix})",
        headers=["terminals", "D(RRN)", "D(RFC)", "D(CFT)", "D(OFT)"],
    )
    for terminals in terminal_counts:
        table.add(
            terminals,
            rrn_diameter(radix, terminals),
            rfc_diameter(radix, terminals),
            cft_diameter(radix, terminals),
            oft_diameter(radix, terminals),
        )
    table.note(
        "Diameter-4 capacity at radix 36: RFC "
        f"{rfc_max_terminals(radix, 3):,} terminals (paper: ~202,554)."
    )
    if quick:
        check = empirical_check(radix=10, levels=2, seed=seed, accel=accel)
        table.note(check)
    return table


def empirical_check(
    radix: int, levels: int, seed: int = 0, accel: bool = True
) -> str:
    """Generate an RFC at the size limit; verify diameter = 2(l-1).

    ``accel`` selects the BFS engine for the diameter measurement (the
    batched :mod:`repro.accel` kernels by default; the pure-Python
    reference with ``accel=False``) -- both produce the same number.
    """
    from ..core.theory import rfc_max_leaves

    n1 = rfc_max_leaves(radix, levels)
    topo, attempts = rfc_with_updown(
        radix, n1, levels, rng=random.Random(seed), max_attempts=128
    )
    measured = leaf_diameter(
        topo.adjacency(),
        [topo.switch_id(0, i) for i in range(n1)],
        accel=accel,
    )
    return (
        f"empirical: RFC(R={radix}, N1={n1}, l={levels}) generated in "
        f"{attempts} attempts has leaf diameter {measured} "
        f"(theory: {2 * (levels - 1)})"
    )
