"""Figure 10: scenario 3 -- maximum expansion.

The largest 3-level RFC (at its Theorem 4.2 limit) against the fully
equipped 4-level CFT.  Expected shape: uniform parity with an RFC
latency advantage; the widest random-pairing gap of the three
scenarios (paper: ~22% below the small-scenario RFC); fixed-random
parity.
"""

from __future__ import annotations

from .common import Table
from .scenario_sim import run_scenario

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, executor=None) -> Table:
    table = run_scenario(
        "maximum-200k", quick=quick, seed=seed, executor=executor
    )
    table.title = "Figure 10: " + table.title
    return table
