"""Figure 6: scalability -- compute nodes versus switch radix.

One curve per (topology, level count) pair for levels 2, 3 and 4,
reproducing Section 4.3's closed forms.  Expected shape (asserted in
tests): OFT scales best (an l-level OFT at least matches the
(l+1)-level CFT), RFC sits close to the RRN of equal diameter and far
above the CFT.
"""

from __future__ import annotations

from ..core.theory import scalability_point
from .common import Table

__all__ = ["run"]

TOPOLOGIES = ("cft", "rfc", "rrn", "oft")


def run(quick: bool = True, seed: int = 0) -> Table:
    radii = (8, 12, 16, 24, 36, 48, 64) if quick else tuple(range(8, 68, 4))
    table = Table(
        title="Figure 6: compute nodes vs radix (levels 2/3/4)",
        headers=["radix"]
        + [f"{t.upper()} l={l}" for l in (2, 3, 4) for t in TOPOLOGIES],
    )
    for radix in radii:
        row: list = [radix]
        for levels in (2, 3, 4):
            for topology in TOPOLOGIES:
                try:
                    row.append(scalability_point(topology, radix, levels))
                except ValueError:
                    row.append(None)
        table.add(*row)
    table.note(
        "T(CFT)=2(R/2)^l; T(RFC)=N1*R/2 at the Theorem 4.2 limit; "
        "T(OFT)=2(q+1)(q^2+q+1)^(l-1); T(RRN) from delta^D=2NlnN with "
        "the Section 4.3 port split."
    )
    return table
