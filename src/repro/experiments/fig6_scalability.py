"""Figure 6: scalability -- compute nodes versus switch radix.

One curve per (topology, level count) pair for levels 2, 3 and 4,
reproducing Section 4.3's closed forms.  Expected shape (asserted in
tests): OFT scales best (an l-level OFT at least matches the
(l+1)-level CFT), RFC sits close to the RRN of equal diameter and far
above the CFT.

The empirical check cross-validates one RFC point: an instance built
at the Theorem 4.2 size limit must realize the closed-form terminal
count *and* be up/down routable, verified with the packed-bitset
ancestor sweeps from :mod:`repro.accel` (``accel=False`` reruns the
big-int reference).
"""

from __future__ import annotations

import random

from ..core.theory import scalability_point
from .common import Table

__all__ = ["run", "empirical_check"]

TOPOLOGIES = ("cft", "rfc", "rrn", "oft")


def empirical_check(
    radix: int, levels: int, seed: int = 0, accel: bool = True
) -> str:
    """Generate an RFC at the scalability point; verify it delivers."""
    from ..core.ancestors import has_updown_routing_of
    from ..core.rfc import rfc_with_updown
    from ..core.theory import rfc_max_leaves

    n1 = rfc_max_leaves(radix, levels)
    topo, _ = rfc_with_updown(
        radix, n1, levels, rng=random.Random(seed), max_attempts=128
    )
    expected = scalability_point("rfc", radix, levels)
    routable = has_updown_routing_of(topo, accel=accel)
    return (
        f"empirical: RFC(R={radix}, l={levels}) at the size limit has "
        f"{topo.num_terminals} terminals (closed form: {expected}), "
        f"up/down routable: {routable}"
    )


def run(quick: bool = True, seed: int = 0, accel: bool = True) -> Table:
    radii = (8, 12, 16, 24, 36, 48, 64) if quick else tuple(range(8, 68, 4))
    table = Table(
        title="Figure 6: compute nodes vs radix (levels 2/3/4)",
        headers=["radix"]
        + [f"{t.upper()} l={l}" for l in (2, 3, 4) for t in TOPOLOGIES],
    )
    for radix in radii:
        row: list = [radix]
        for levels in (2, 3, 4):
            for topology in TOPOLOGIES:
                try:
                    row.append(scalability_point(topology, radix, levels))
                except ValueError:
                    row.append(None)
        table.add(*row)
    table.note(
        "T(CFT)=2(R/2)^l; T(RFC)=N1*R/2 at the Theorem 4.2 limit; "
        "T(OFT)=2(q+1)(q^2+q+1)^(l-1); T(RRN) from delta^D=2NlnN with "
        "the Section 4.3 port split."
    )
    if quick:
        table.note(empirical_check(radix=10, levels=2, seed=seed, accel=accel))
    return table
