"""Figure 11: link failures tolerated while keeping up/down routing.

For radix-12 switches, RFCs of 2/3/4 levels are generated across a
range of sizes and subjected to random failure orders; each point
reports the mean fraction of links that can fail before some leaf pair
loses its last common ancestor.  CFT and OFT instances of the same
radix appear as isolated points.

Expected shape (asserted in tests): tolerance shrinks as the RFC
approaches its Theorem 4.2 size limit (radix slack is what buys fault
tolerance); CFT points sit below the equally-sized RFC curve; 2-level
OFT tolerance is exactly zero (any single failure kills a unique
path).
"""

from __future__ import annotations

import random

from ..core.rfc import rfc_with_updown
from ..core.theory import rfc_max_leaves
from ..faults.updown_survival import updown_fault_tolerance
from ..topologies.fattree import commodity_fat_tree
from ..topologies.oft import orthogonal_fat_tree
from .common import Table, timed_note

__all__ = ["run"]

DEFAULT_RADIX = 12


def run(
    quick: bool = True, seed: int = 0, executor=None, accel: bool = True
) -> Table:
    """Fault-tolerance sweep; ``executor`` fans the per-topology trial
    batches (random failure orders are still drawn serially from one
    stream, so results match the historical serial run exactly).

    ``accel`` selects the sweep engine for the threshold binary
    searches: the incremental masked packed-bitset sweeps of
    :mod:`repro.accel` by default, the pure-Python pruned-stage-list
    reference with ``accel=False``.  Thresholds are identical either
    way."""
    radix = DEFAULT_RADIX
    rng = random.Random(seed)
    if quick:
        level_fractions = {2: (1.0,), 3: (0.2, 0.5, 0.8)}
        trials = 6
        cft_levels = (2, 3)
        oft_specs = ((5, 2),)
    else:
        level_fractions = {
            2: (1.0,),
            3: (0.2, 0.4, 0.6, 0.8, 0.95),
            4: (0.05, 0.1),
        }
        trials = 15
        cft_levels = (2, 3, 4)
        oft_specs = ((5, 2), (5, 3))

    table = Table(
        title=f"Figure 11: up/down-preserving fault tolerance (radix {radix})",
        headers=["topology", "levels", "terminals", "links", "tolerated %"],
    )
    with timed_note(table, "fault-trial sweep"):
        for levels, fractions in level_fractions.items():
            cap = rfc_max_leaves(radix, levels)
            for fraction in fractions:
                n1 = max(radix, int(cap * fraction)) & ~1
                if n1 < radix:
                    continue
                topo, _ = rfc_with_updown(radix, n1, levels, rng=rng)
                survival = updown_fault_tolerance(
                    topo, trials=trials, rng=rng, executor=executor,
                    accel=accel,
                )
                table.add(
                    "RFC", levels, topo.num_terminals, topo.num_links,
                    survival.mean_percent,
                )
        for levels in cft_levels:
            cft = commodity_fat_tree(radix, levels)
            survival = updown_fault_tolerance(
                cft, trials=trials, rng=rng, executor=executor, accel=accel
            )
            table.add(
                "CFT", levels, cft.num_terminals, cft.num_links,
                survival.mean_percent,
            )
        for q, levels in oft_specs:
            oft = orthogonal_fat_tree(q, levels)
            survival = updown_fault_tolerance(
                oft, trials=max(2, trials // 3), rng=rng,
                executor=executor, accel=accel,
            )
            table.add(
                "OFT", levels, oft.num_terminals, oft.num_links,
                survival.mean_percent,
            )

    table.note(
        "RFC tolerance falls toward 0 as size approaches the Theorem 4.2 "
        "cap; CFTs sit below equally-sized RFCs; the 2-level OFT "
        "tolerates no failure at all."
    )
    return table
