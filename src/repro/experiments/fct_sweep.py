"""FCT load sweep: RFC vs CFT under open-loop flow workloads.

The paper's simulated figures compare accepted load and packet latency;
datacenter evaluations (Jellyfish and the incast literature) compare
**flow completion time**.  This sweep runs the :mod:`repro.workloads`
layer over the equal-resources scenario networks: Poisson RPC arrivals
swept across offered loads, plus one fixed incast point (the workload
that stresses a single ejection port), reporting FCT percentiles and
slowdown for both networks side by side.

Every point is an independent executor task carrying its canonical
workload spec, so sweeps parallelize and cache-key like any other
(workload tasks skip the cache *read* -- their FCT summary is a side
channel the cache strips -- but still warm it).
"""

from __future__ import annotations

from ..simulation.config import SimulationParams
from .common import Table, timed_note
from .scenario_sim import build_networks

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, executor=None) -> Table:
    from ..exec import get_executor
    from ..exec.executor import SimTask
    from ..workloads import workload_spec

    networks = build_networks("equal-resources-11k", quick=quick, seed=seed)
    loads = [0.2, 0.5] if quick else [0.2, 0.4, 0.6, 0.8]
    duration = 600 if quick else 2_000
    params = SimulationParams(
        measure_cycles=(1_800 if quick else 6_000),
        warmup_cycles=0,
        seed=seed,
    )
    labels = [label for label, _ in networks.all()]
    table = Table(
        title="FCT sweep: RFC vs CFT, open-loop flow workloads",
        headers=["workload", "load"]
        + [
            f"{label} {metric}"
            for label in labels
            for metric in ("p50 FCT", "p99 FCT", "p99 slowdown")
        ],
    )
    table.note(
        "networks -- "
        + ", ".join(
            f"{label}: T={net.num_terminals} ({net.name})"
            for label, net in networks.all()
        )
    )
    table.note(
        f"rpc: Poisson arrivals over {duration} cycles, 4-packet flows; "
        "incast: 8-way fan-in events, FCT in cycles"
    )

    specs: list[tuple[str, float, tuple]] = [
        (
            "rpc",
            load,
            workload_spec("rpc", load=load, duration=duration, rpc_size=4),
        )
        for load in loads
    ]
    specs.append(
        (
            "incast",
            0.0,
            workload_spec(
                "incast", fanin=8, rpc_size=4, duration=duration, events=4
            ),
        )
    )

    runner = executor if executor is not None else get_executor()
    tasks = [
        SimTask(
            topo=net,
            traffic_name=f"flows:{name}",
            load=load if load > 0.0 else 1e-9,
            params=params,
            traffic_seed=seed + 101,
            workload=spec,
        )
        for name, load, spec in specs
        for _, net in networks.all()
    ]
    with timed_note(table, "fct sweep"):
        results, report = runner.run_sim_tasks(tasks)
    table.note(report.note())

    point = iter(results)
    for name, load, _ in specs:
        row: list = [name, load]
        for _ in labels:
            fs = next(point).flow_stats
            row.extend(
                [fs["fct_p50"], fs["fct_p99"], fs["slowdown_p99"]]
            )
        table.add(*row)
    return table
