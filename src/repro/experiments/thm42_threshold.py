"""Empirical validation of Theorem 4.2 (the up/down threshold).

For a grid of even radices spanning the routability transition of a
2-level RFC with ``N_1`` leaves, this experiment samples many RFCs and
compares the observed routable fraction against two predictions:

* the **finite-size** probability: at 2 levels a leaf's root-ancestor
  set has exactly ``Delta = R/2`` members, so a pair is ancestor-
  disjoint with the hypergeometric probability
  ``C(N_l - Delta, Delta) / C(N_l, Delta)`` and, with
  ``lambda = C(N_1, 2) * p``, the network is routable with probability
  ``~ exp(-lambda)`` (the Poisson step inside the theorem's proof);
* the **asymptotic** limit ``exp(-exp(-x))`` from the theorem's
  threshold offset ``x`` -- accurate only as ``N_1`` grows, so at
  laptop sizes it locates the transition too high; the finite-size
  column is the testable prediction and the asymptotic one shows the
  direction of convergence.

The paper's headline consequence -- about ``e`` generation attempts
per routable RFC at the threshold -- corresponds to the row where the
finite-size prediction crosses ``1/e``.
"""

from __future__ import annotations

import math
import random

from ..core.ancestors import has_updown_routing_of
from ..core.rfc import radix_regular_rfc
from ..core.theory import binom2, updown_probability, x_for_radix
from .common import Table

__all__ = ["run", "finite_size_probability", "observed_probability"]


def finite_size_probability(radix: int, n1: int) -> float:
    """Exact-ancestor-count routability estimate for a 2-level RFC.

    ``exp(-lambda)`` with ``lambda`` the expected number of
    ancestor-disjoint leaf pairs under the hypergeometric model.
    """
    half = radix // 2
    n_top = n1 // 2
    if 2 * half > n_top:
        return 1.0  # two ancestor sets cannot be disjoint
    p_disjoint = math.comb(n_top - half, half) / math.comb(n_top, half)
    lam = binom2(n1) * p_disjoint
    return math.exp(-lam)


def observed_probability(
    radix: int,
    n1: int,
    levels: int,
    samples: int,
    rng: random.Random,
    accel: bool = True,
) -> float:
    """Fraction of sampled RFCs that are up/down routable.

    The routability check runs on the packed-bitset sweep engine
    (:mod:`repro.accel`) by default; ``accel=False`` reruns the
    big-int reference.  The observed fraction is identical either way
    (the engines are bit-for-bit equal), only the wall time differs.
    """
    hits = 0
    for _ in range(samples):
        topo = radix_regular_rfc(radix, n1, levels, rng=rng)
        if has_updown_routing_of(topo, accel=accel):
            hits += 1
    return hits / samples


def run(quick: bool = True, seed: int = 0, accel: bool = True) -> Table:
    rng = random.Random(seed)
    if quick:
        n1, samples = 64, 50
    else:
        n1, samples = 256, 200
    levels = 2

    table = Table(
        title=(
            f"Theorem 4.2 threshold validation "
            f"(N1={n1}, levels={levels}, {samples} samples per radix)"
        ),
        headers=[
            "radix", "x offset", "finite-size P", "asymptotic P",
            "observed P",
        ],
    )
    # Center the sweep where the finite-size prediction transitions.
    center = 4
    for radix in range(4, n1, 2):
        if finite_size_probability(radix, n1) >= 1 / math.e:
            center = radix
            break
    radii = sorted(
        {max(4, center + delta) for delta in (-6, -4, -2, 0, 2, 4, 8)}
    )
    for radix in radii:
        if radix > n1:
            continue
        x = x_for_radix(radix, n1, levels)
        table.add(
            radix,
            x,
            finite_size_probability(radix, n1),
            updown_probability(x),
            observed_probability(radix, n1, levels, samples, rng, accel=accel),
        )
    table.note(
        "Observed fractions should track the finite-size column; the "
        "asymptotic exp(-exp(-x)) column converges to it as N1 grows "
        "(the theorem is a limit statement)."
    )
    return table
