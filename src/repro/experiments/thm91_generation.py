"""Theorem 9.1: generator running time scales as O(N * Delta * ln Delta).

Times the Listing 1/2 generators across a size grid and reports the
time normalized by ``N * Delta * ln(Delta)``; an approximately constant
column is the theorem's claim.  (pytest-benchmark gives the precise
timing harness in ``benchmarks/bench_generation.py``; this experiment
is the human-readable trend table.)

Each grid point also times a connectivity verification of the
generated regular graph through the batched-BFS kernels of
:mod:`repro.accel` (``check s`` column) -- evidence that analyzing an
instance now costs a small fraction of generating it, which is what
keeps generate-and-test loops generation-bound.
"""

from __future__ import annotations

import math
import random
import time

from ..graphs.connectivity import is_connected
from ..topologies.random_graphs import (
    random_bipartite_graph,
    random_regular_graph,
)
from .common import Table

__all__ = ["run"]


def _time_call(fn, repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(quick: bool = True, seed: int = 0, accel: bool = True) -> Table:
    rng = random.Random(seed)
    if quick:
        grid = [(200, 6), (400, 6), (400, 12), (800, 12)]
    else:
        grid = [
            (500, 8), (1_000, 8), (2_000, 8),
            (1_000, 16), (2_000, 16), (4_000, 16), (4_000, 32),
        ]
    table = Table(
        title="Theorem 9.1: generation time vs N * Delta * ln Delta",
        headers=[
            "N", "Delta",
            "regular s", "regular s/(N D lnD) 1e-9",
            "bipartite s", "bipartite s/(N D lnD) 1e-9",
            "check s",
        ],
    )
    for n, degree in grid:
        scale = n * degree * math.log(degree)
        t_reg = _time_call(lambda: random_regular_graph(n, degree, rng=rng))
        t_bip = _time_call(
            lambda: random_bipartite_graph(n, degree, n, degree, rng=rng)
        )
        sample = random_regular_graph(n, degree, rng=rng)
        adjacency = [sorted(nbrs) for nbrs in sample]
        t_check = _time_call(lambda: is_connected(adjacency, accel=accel))
        table.add(
            n, degree,
            t_reg, 1e9 * t_reg / scale,
            t_bip, 1e9 * t_bip / scale,
            t_check,
        )
    table.note(
        "The normalized columns should stay roughly flat across the grid "
        "(constant factor of the O(N Delta ln Delta) bound)."
    )
    return table
