"""Figure 8: scenario 1 -- equal resources.

3-level CFT and RFC with identical resources (plus, at full scale, the
smaller-radix RFC variant that matches the node count, the paper's
radix-20-vs-36 point).  Expected shape: near-identical uniform
behaviour, CFT ahead under random-pairing (it is rearrangeably
non-blocking; paper: 0.86 vs 0.76 accepted), parity under
fixed-random.
"""

from __future__ import annotations

from .common import Table
from .scenario_sim import run_scenario

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, executor=None) -> Table:
    table = run_scenario(
        "equal-resources-11k", quick=quick, seed=seed, executor=executor
    )
    table.title = "Figure 8: " + table.title
    return table
