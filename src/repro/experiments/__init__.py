"""Experiment registry: one module per paper table/figure.

``EXPERIMENTS`` maps experiment ids (as used by the CLI and the
benchmark suite) to ``run(quick, seed) -> Table`` callables.
"""

from __future__ import annotations

from typing import Callable

from .common import Table
from . import (
    fct_sweep,
    fig5_diameter,
    fig6_scalability,
    fig7_expandability,
    fig8_scenario1,
    fig9_scenario2,
    fig10_scenario3,
    fig11_updown_faults,
    fig12_faulty_throughput,
    sec42_bisection,
    sec5_scenarios,
    table3_disconnect,
    thm42_threshold,
    thm91_generation,
)

__all__ = ["EXPERIMENTS", "run_experiment", "Table"]

EXPERIMENTS: dict[str, Callable[..., Table]] = {
    "fct": fct_sweep.run,
    "thm42": thm42_threshold.run,
    "fig5": fig5_diameter.run,
    "fig6": fig6_scalability.run,
    "fig7": fig7_expandability.run,
    "tab3": table3_disconnect.run,
    "fig8": fig8_scenario1.run,
    "fig9": fig9_scenario2.run,
    "fig10": fig10_scenario3.run,
    "fig11": fig11_updown_faults.run,
    "fig12": fig12_faulty_throughput.run,
    "sec42": sec42_bisection.run,
    "sec5": sec5_scenarios.run,
    "thm91": thm91_generation.run,
}


def run_experiment(name: str, quick: bool = True, seed: int = 0) -> Table:
    """Run one experiment by id (see ``EXPERIMENTS`` for the list)."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(quick=quick, seed=seed)
