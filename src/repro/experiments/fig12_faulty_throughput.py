"""Figure 12: saturation throughput as links fail (scenario 1).

The scenario-1 CFT and RFC (equal resources) lose randomly chosen
links in increasing batches; for each fault count the simulator
measures accepted load at offered load 1.0 under the three traffics.
Packets whose leaf pair has lost every up/down route are dropped and
reported -- under uniform traffic a single such pair marks the network
blocked (the paper's observation for why uniform tolerates fewer
faults than pairing/fixed-random).

Expected shape: both degrade smoothly; the initial CFT edge vanishes
and reverses at roughly 10-15% faults.
"""

from __future__ import annotations

from ..exec import get_executor
from ..exec.executor import SimTask
from ..faults.removal import shuffled_links
from ..simulation.config import SimulationParams
from ..simulation.traffic import TRAFFIC_NAMES
from .common import Table
from .scenario_sim import build_networks

__all__ = ["run", "faulty_saturation", "saturation_tasks"]


def saturation_tasks(
    net,
    traffic_name: str,
    fault_counts: list[int],
    params: SimulationParams,
    seed: int = 0,
) -> list[SimTask]:
    """One offered-load-1.0 task per fault count along one failure
    order (drawn from ``seed + 13``, as the serial loop always did)."""
    order = shuffled_links(net, rng=seed + 13)
    return [
        SimTask(
            topo=net,
            traffic_name=traffic_name,
            load=1.0,
            params=params,
            traffic_seed=seed + 101,
            removed_links=tuple(order[:count]),
        )
        for count in fault_counts
    ]


def faulty_saturation(
    net,
    traffic_name: str,
    fault_counts: list[int],
    params: SimulationParams,
    seed: int = 0,
    executor=None,
) -> list[tuple[int, float, float]]:
    """(faults, accepted, unroutable fraction) along one failure order."""
    runner = executor if executor is not None else get_executor()
    tasks = saturation_tasks(net, traffic_name, fault_counts, params, seed)
    results, _ = runner.run_sim_tasks(tasks)
    return [
        (
            count,
            result.accepted_load,
            result.unroutable_packets / max(1, result.generated_packets),
        )
        for count, result in zip(fault_counts, results)
    ]


def run(quick: bool = True, seed: int = 0, executor=None) -> Table:
    networks = build_networks("equal-resources-11k", quick=quick, seed=seed)
    params = SimulationParams(
        measure_cycles=800 if quick else 2_000,
        warmup_cycles=300 if quick else 600,
        seed=seed,
    )
    table = Table(
        title="Figure 12: saturation throughput under link faults "
        "(scenario 1)",
        headers=[
            "traffic", "faults", "fault %",
            "CFT accepted", "CFT unroutable",
            "RFC accepted", "RFC unroutable",
        ],
    )
    total = {label: net.num_links for label, net in networks.all()}
    fractions = (
        (0.0, 0.05, 0.125, 0.25)
        if quick
        else (0.0, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.25)
    )
    fault_counts = [round(f * min(total.values())) for f in fractions]
    traffics = TRAFFIC_NAMES if not quick else ("uniform", "random-pairing")
    # Submit every (network, traffic, fault count) point as one batch:
    # with --workers N the whole figure fans out at once, and a warm
    # cache replays it without touching the simulator.
    runner = executor if executor is not None else get_executor()
    groups = [
        (label, name, saturation_tasks(net, name, fault_counts, params, seed))
        for label, net in networks.all()
        if label != "RFC-alt"
        for name in traffics
    ]
    results, report = runner.run_sim_tasks(
        [task for _, _, tasks in groups for task in tasks]
    )
    point = iter(results)
    per_net: dict[str, dict[str, list]] = {}
    for label, name, tasks in groups:
        per_net.setdefault(label, {})[name] = [
            (
                count,
                result.accepted_load,
                result.unroutable_packets / max(1, result.generated_packets),
            )
            for count, result in zip(fault_counts, (next(point) for _ in tasks))
        ]
    for name in traffics:
        for i, count in enumerate(fault_counts):
            cft_row = per_net["CFT"][name][i]
            rfc_row = per_net["RFC"][name][i]
            table.add(
                name, count, 100.0 * count / min(total.values()),
                cft_row[1], cft_row[2], rfc_row[1], rfc_row[2],
            )
    table.note(
        f"total links -- "
        + ", ".join(f"{k}: {v}" for k, v in total.items())
    )
    table.note(report.note())
    return table
