"""Figure 12: saturation throughput as links fail (scenario 1).

The scenario-1 CFT and RFC (equal resources) lose randomly chosen
links in increasing batches; for each fault count the simulator
measures accepted load at offered load 1.0 under the three traffics.
Packets whose leaf pair has lost every up/down route are dropped and
reported -- under uniform traffic a single such pair marks the network
blocked (the paper's observation for why uniform tolerates fewer
faults than pairing/fixed-random).

Expected shape: both degrade smoothly; the initial CFT edge vanishes
and reverses at roughly 10-15% faults.
"""

from __future__ import annotations

import random

from ..faults.removal import shuffled_links
from ..simulation.config import SimulationParams
from ..simulation.engine import Simulator
from ..simulation.traffic import TRAFFIC_NAMES, make_traffic
from .common import Table
from .scenario_sim import build_networks

__all__ = ["run", "faulty_saturation"]


def faulty_saturation(
    net,
    traffic_name: str,
    fault_counts: list[int],
    params: SimulationParams,
    seed: int = 0,
) -> list[tuple[int, float, float]]:
    """(faults, accepted, unroutable fraction) along one failure order."""
    order = shuffled_links(net, rng=seed + 13)
    rows = []
    for count in fault_counts:
        traffic = make_traffic(traffic_name, net.num_terminals, rng=seed + 101)
        sim = Simulator(
            net, traffic, 1.0, params, removed_links=order[:count]
        )
        result = sim.run()
        lost = sim.unroutable_packets / max(1, result.generated_packets)
        rows.append((count, result.accepted_load, lost))
    return rows


def run(quick: bool = True, seed: int = 0) -> Table:
    networks = build_networks("equal-resources-11k", quick=quick, seed=seed)
    params = SimulationParams(
        measure_cycles=800 if quick else 2_000,
        warmup_cycles=300 if quick else 600,
        seed=seed,
    )
    table = Table(
        title="Figure 12: saturation throughput under link faults "
        "(scenario 1)",
        headers=[
            "traffic", "faults", "fault %",
            "CFT accepted", "CFT unroutable",
            "RFC accepted", "RFC unroutable",
        ],
    )
    total = {label: net.num_links for label, net in networks.all()}
    fractions = (
        (0.0, 0.05, 0.125, 0.25)
        if quick
        else (0.0, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.25)
    )
    fault_counts = [round(f * min(total.values())) for f in fractions]
    traffics = TRAFFIC_NAMES if not quick else ("uniform", "random-pairing")
    per_net: dict[str, dict[str, list]] = {}
    for label, net in networks.all():
        if label == "RFC-alt":
            continue
        per_net[label] = {
            name: faulty_saturation(net, name, fault_counts, params, seed)
            for name in traffics
        }
    for name in traffics:
        for i, count in enumerate(fault_counts):
            cft_row = per_net["CFT"][name][i]
            rfc_row = per_net["RFC"][name][i]
            table.add(
                name, count, 100.0 * count / min(total.values()),
                cft_row[1], cft_row[2], rfc_row[1], rfc_row[2],
            )
    table.note(
        f"total links -- "
        + ", ".join(f"{k}: {v}" for k, v in total.items())
    )
    return table
