"""ASCII plotting for experiment tables (offline-friendly figures).

The experiment harness returns :class:`Table` data; this module turns
selected columns into terminal plots so the paper's figures can be
eyeballed without matplotlib:

* :func:`ascii_plot` -- multi-series scatter/line over a numeric x
  column (log-x option for the scalability/expandability figures);
* :func:`ascii_bars` -- labelled horizontal bars (Table 3 style).
"""

from __future__ import annotations

import math
from typing import Sequence

from .common import Table

__all__ = ["ascii_plot", "ascii_bars"]

_MARKS = "ox+*#@%&"


def _scale(
    value: float, lo: float, hi: float, cells: int, log: bool
) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi <= lo:
        return 0
    return min(cells - 1, max(0, round((value - lo) / (hi - lo) * (cells - 1))))


def ascii_plot(
    table: Table,
    x: str,
    ys: Sequence[str],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render y-columns against an x-column as an ASCII scatter plot.

    Rows with missing (``None``/NaN) values in a series are skipped for
    that series only.
    """
    xs_all = [v for v in table.column(x) if v is not None]
    if not xs_all:
        raise ValueError("no x data to plot")
    points: list[tuple[float, float, int]] = []
    y_values: list[float] = []
    for series_index, name in enumerate(ys):
        for xv, yv in zip(table.column(x), table.column(name)):
            if xv is None or yv is None:
                continue
            if isinstance(yv, float) and yv != yv:
                continue
            if (log_x and xv <= 0) or (log_y and yv <= 0):
                continue
            points.append((float(xv), float(yv), series_index))
            y_values.append(float(yv))
    if not points:
        raise ValueError("no data points to plot")
    x_lo, x_hi = min(p[0] for p in points), max(p[0] for p in points)
    y_lo, y_hi = min(y_values), max(y_values)

    grid = [[" "] * width for _ in range(height)]
    for xv, yv, series_index in points:
        col = _scale(xv, x_lo, x_hi, width, log_x)
        row = height - 1 - _scale(yv, y_lo, y_hi, height, log_y)
        grid[row][col] = _MARKS[series_index % len(_MARKS)]

    lines = [f"{table.title}"]
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row_cells in enumerate(grid):
        label = top_label if i == 0 else bottom_label if i == height - 1 else ""
        lines.append(f"{label:>{pad}} |{''.join(row_cells)}")
    lines.append(f"{'':>{pad}} +{'-' * width}")
    lines.append(
        f"{'':>{pad}}  {x_lo:g}{'':^{max(1, width - 16)}}{x_hi:g}"
        f"  ({x}{', log-x' if log_x else ''})"
    )
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]} = {name}" for i, name in enumerate(ys)
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_bars(
    table: Table,
    label: str,
    value: str,
    width: int = 50,
) -> str:
    """Horizontal bars for one numeric column, labelled by another."""
    rows = [
        (str(lab), float(val))
        for lab, val in zip(table.column(label), table.column(value))
        if val is not None
    ]
    if not rows:
        raise ValueError("no data to plot")
    top = max(v for _, v in rows)
    label_width = max(len(lab) for lab, _ in rows)
    lines = [table.title]
    for lab, val in rows:
        bar = "#" * max(1, round(val / top * width)) if top > 0 else ""
        lines.append(f"{lab:>{label_width}} | {bar} {val:g}")
    return "\n".join(lines)
