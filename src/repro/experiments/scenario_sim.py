"""Shared harness for the Figure 8/9/10 simulation scenarios.

Each paper figure sweeps offered load for one CFT-vs-RFC scenario
(Section 6) under the three synthetic traffics.  The full-size
networks (11K-210K terminals) are beyond a pure-Python cycle-level
simulator, so the harness builds *structurally faithful* scale-downs
(see ``repro.cost.scenarios``): the same level-count relationships,
the same radix ratios, partial population where the paper uses it.

``quick=True`` shrinks further (radix 8, a few hundred terminals,
shorter runs) for the benchmark suite; ``quick=False`` uses the
radix-12 scaled configurations.  Each table also reports flow-level
max-min saturation for the same networks as a cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.rfc import rfc_with_updown
from ..cost.scenarios import scenario
from ..simulation.config import SimulationParams
from ..simulation.flowlevel import flow_level_throughput
from ..simulation.traffic import TRAFFIC_NAMES
from ..topologies.base import FoldedClos
from ..topologies.fattree import commodity_fat_tree, partially_populated_cft
from .common import Table

__all__ = ["ScenarioNetworks", "build_networks", "run_scenario"]

# Benchmark-sized structural analogues (radix 8).
_QUICK_CONFIG = {
    "equal-resources-11k": dict(
        radix=8, cft_levels=3, cft_hosts=4, rfc_n1=32, rfc_levels=3,
        alt=None,
    ),
    "intermediate-100k": dict(
        radix=8, cft_levels=4, cft_hosts=1, rfc_n1=32, rfc_levels=3,
        alt=None,
    ),
    "maximum-200k": dict(
        radix=8, cft_levels=4, cft_hosts=2, rfc_n1=50, rfc_levels=3,
        alt=None,
    ),
}


@dataclass
class ScenarioNetworks:
    """The networks one scenario simulates."""

    cft: FoldedClos
    rfc: FoldedClos
    rfc_alt: FoldedClos | None = None

    def all(self) -> list[tuple[str, FoldedClos]]:
        out = [("CFT", self.cft), ("RFC", self.rfc)]
        if self.rfc_alt is not None:
            out.append(("RFC-alt", self.rfc_alt))
        return out


def build_networks(
    scenario_name: str, quick: bool = True, seed: int = 0
) -> ScenarioNetworks:
    """Instantiate the (scaled) CFT and RFC of a named scenario."""
    if quick:
        cfg = _QUICK_CONFIG[scenario(scenario_name).name]
        radix = cfg["radix"]
        if cfg["cft_hosts"] == radix // 2:
            cft = commodity_fat_tree(radix, cfg["cft_levels"])
        else:
            cft = partially_populated_cft(
                radix, cfg["cft_levels"], cfg["cft_hosts"]
            )
        rfc, _ = rfc_with_updown(
            radix, cfg["rfc_n1"], cfg["rfc_levels"], rng=seed
        )
        return ScenarioNetworks(cft=cft, rfc=rfc)

    scaled = scenario(scenario_name).scaled
    if scaled.cft_hosts == scaled.radix // 2:
        cft = commodity_fat_tree(scaled.radix, scaled.cft_levels)
    else:
        cft = partially_populated_cft(
            scaled.radix, scaled.cft_levels, scaled.cft_hosts
        )
    rfc, _ = rfc_with_updown(
        scaled.radix, scaled.rfc_n1, scaled.rfc_levels, rng=seed
    )
    rfc_alt = None
    if scaled.rfc_alt_radix is not None and scaled.rfc_alt_n1 is not None:
        rfc_alt, _ = rfc_with_updown(
            scaled.rfc_alt_radix, scaled.rfc_alt_n1, scaled.rfc_levels,
            rng=seed + 1,
        )
    return ScenarioNetworks(cft=cft, rfc=rfc, rfc_alt=rfc_alt)


def run_scenario(
    scenario_name: str,
    quick: bool = True,
    seed: int = 0,
    loads: list[float] | None = None,
    traffics: tuple[str, ...] = TRAFFIC_NAMES,
    params: SimulationParams | None = None,
    flow_check: bool = True,
    executor=None,
) -> Table:
    """Load sweep for one scenario; returns the figure's data table.

    Every (traffic, load, network) point is an independent simulation,
    so the whole sweep is submitted as one batch to ``executor`` (the
    ambient :mod:`repro.exec` executor when None): ``--workers N``
    fans the points across processes and a configured cache makes warm
    re-runs free.  Each point rebuilds its traffic pattern from
    ``seed + 101`` exactly as the serial loop always has, so the table
    is bit-for-bit independent of worker count and scheduling.
    """
    from .. import obs
    from ..exec import get_executor, merged_metrics
    from ..exec.executor import SimTask

    collect = obs.metrics_enabled()
    networks = build_networks(scenario_name, quick=quick, seed=seed)
    if loads is None:
        loads = [0.3, 0.6, 0.9] if quick else [0.2, 0.5, 0.8, 1.0]
    if params is None:
        params = SimulationParams(
            measure_cycles=1_200 if quick else 3_000,
            warmup_cycles=400 if quick else 800,
            seed=seed,
        )

    sizes = ", ".join(
        f"{label}: T={net.num_terminals} ({net.name})"
        for label, net in networks.all()
    )
    table = Table(
        title=f"Scenario {scenario_name}: latency/throughput vs load",
        headers=["traffic", "load"]
        + [
            f"{label} {metric}"
            for label, _ in networks.all()
            for metric in ("accepted", "latency")
        ],
    )
    table.note(f"networks -- {sizes}")

    runner = executor if executor is not None else get_executor()
    tasks = [
        SimTask(
            topo=net,
            traffic_name=traffic_name,
            load=load,
            params=params,
            traffic_seed=seed + 101,
            collect_metrics=collect,
        )
        for traffic_name in traffics
        for load in loads
        for _, net in networks.all()
    ]
    results, report = runner.run_sim_tasks(tasks)
    if collect:
        obs.record(f"scenario:{scenario_name}", merged_metrics(results))

    point = iter(results)
    for traffic_name in traffics:
        for load in loads:
            row: list = [traffic_name, load]
            for _ in networks.all():
                result = next(point)
                row.extend([result.accepted_load, result.avg_latency])
            table.add(*row)
        # Flow-level saturation cross-check per traffic (optional: the
        # max-min solve grows quadratic-ish on multi-thousand-terminal
        # networks, so heavy sweeps can skip it).
        if flow_check:
            sat = ", ".join(
                f"{label} {flow_level_throughput(net, traffic_name, flows_per_terminal=4, rng=seed):.3f}"
                for label, net in networks.all()
            )
            table.note(
                f"flow-level max-min saturation ({traffic_name}): {sat}"
            )
    table.note(report.note())
    return table
