"""Section 5 cost comparison: the 11K / 100K / 200K scenarios.

Regenerates the paper's headline cost numbers -- switch and wire
counts for the three CFT-vs-RFC deployments, the radix-20 RFC variant,
and the resulting savings (the paper quotes 31% switches / 36% wires
at 200K and "up to 95%" port savings per additional connectable node
when the CFT is forced to add a level).
"""

from __future__ import annotations

from ..cost.scenarios import SCENARIOS
from .common import Table

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> Table:
    table = Table(
        title="Section 5 scenarios: cost of CFT vs RFC (radix 36)",
        headers=[
            "scenario", "topology", "radix", "levels",
            "terminals", "switches", "wires", "ports",
        ],
    )
    for scn in SCENARIOS.values():
        for label, point in (
            ("CFT", scn.cft),
            ("RFC", scn.rfc),
            ("RFC-alt", scn.rfc_alt),
        ):
            if point is None:
                continue
            table.add(
                scn.name, label, point.radix, point.levels,
                point.terminals, point.switches, point.wires, point.ports,
            )
        savings = scn.savings()
        table.note(
            f"{scn.name}: RFC saves {savings['switches']:.1%} switches, "
            f"{savings['wires']:.1%} wires vs CFT"
        )
    from ..cost.pricing import max_rfc_saving

    terminals, saving = max_rfc_saving(36)
    table.note(
        f"abstract's claim: maximum cost saving {saving:.1%} at "
        f"{terminals:,} terminals (paper: 'up to 95%', just past the "
        "3-level CFT capacity step)"
    )
    return table
