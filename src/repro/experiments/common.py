"""Shared plumbing for the per-figure/per-table experiment modules.

Every experiment module exposes ``run(quick=True, seed=0) -> Table``:
``quick`` selects a laptop-friendly parameter set (used by the
benchmark suite and CI), while ``quick=False`` runs the full-scale
version recorded in EXPERIMENTS.md.  A :class:`Table` is a plain
header+rows container that formats itself like the paper's artifact
so outputs are directly comparable.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Table", "format_cell", "timed_note"]


def format_cell(value) -> str:
    """Compact human formatting for heterogeneous table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    if value is None:
        return "-"
    return str(value)


@dataclass
class Table:
    """A titled table of experiment results."""

    title: str
    headers: Sequence[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} "
                "columns"
            )
        self.rows.append(list(row))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list:
        """All values of one column, by header name."""
        idx = list(self.headers).index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        cells = [[format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (headers + raw values).

        Notes are emitted as ``#``-prefixed trailer lines so the data
        block stays machine-readable.
        """
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(["" if cell is None else cell for cell in row])
        for note in self.notes:
            buffer.write(f"# {note}\n")
        return buffer.getvalue()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


@contextlib.contextmanager
def timed_note(table: Table, label: str):
    """Time a block and record it as a table note.

    Experiments that batch work through :mod:`repro.exec` get timing
    notes from the executor's report; this is the lightweight
    equivalent for hand-rolled loops (``with timed_note(table, "trials"):``
    appends ``"trials: 1.23s wall"`` on exit).
    """
    start = time.perf_counter()
    try:
        yield table
    finally:
        table.note(f"{label}: {time.perf_counter() - start:.2f}s wall")
