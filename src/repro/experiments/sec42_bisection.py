"""Section 4.2: bisection bandwidth and expander quality.

Two tables in one experiment:

1. the paper's **normalized bisection** figures for radix 36 -- CFT 1
   by construction, RRN ~0.88 via Bollobas, 2-level RFC ~0.80,
   3-level RFC ~0.86 -- straight from the analytic bounds;
2. an **empirical check at small scale**: local-search bisection
   estimates and spectral expander gaps for generated CFT / RFC / RRN
   instances of matched size, showing the random topologies are true
   expanders (clear spectral gap) while matching the Clos bisection.
"""

from __future__ import annotations

import random

from ..core.rfc import rfc_with_updown
from ..graphs.bisection import (
    estimate_bisection_width,
    rfc_normalized_bisection,
    rrn_normalized_bisection,
)
from ..graphs.spectral import adjacency_spectrum_gap, algebraic_connectivity
from ..topologies.fattree import commodity_fat_tree
from ..topologies.rrn import random_regular_network, rrn_degree_for
from .common import Table

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> Table:
    table = Table(
        title="Section 4.2: normalized bisection and expander quality",
        headers=[
            "network", "terminals", "normalized bisection (analytic)",
            "bisection estimate", "spectral gap", "fiedler",
        ],
    )
    # Analytic paper numbers (radix 36).
    degree, hosts = 26, 10  # the paper's RRN split for radix 36
    table.add("CFT R=36 (any l)", 11_664, 1.0, None, None, None)
    table.add(
        "RRN R=36", 227_730,
        rrn_normalized_bisection(degree, hosts), None, None, None,
    )
    from ..core.theory import rfc_max_terminals

    for levels in (2, 3):
        table.add(
            f"RFC R=36 l={levels}",
            rfc_max_terminals(36, levels),
            rfc_normalized_bisection(36, levels), None, None, None,
        )

    # Empirical small-scale instances.
    rng = random.Random(seed)
    radix = 8
    cft = commodity_fat_tree(radix, 3)
    rfc, _ = rfc_with_updown(radix, cft.num_leaves, 3, rng=rng)
    deg, hosts = rrn_degree_for(radix, 4)
    rrn = random_regular_network(
        cft.num_terminals // max(1, hosts), deg, hosts, rng=rng
    )
    for name, net in (("CFT(8,3)", cft), ("RFC(8,3)", rfc), ("RRN(8)", rrn)):
        adj = net.adjacency()
        table.add(
            name,
            net.num_terminals,
            None,
            estimate_bisection_width(adj, restarts=4, rng=rng),
            adjacency_spectrum_gap(adj),
            algebraic_connectivity(adj),
        )
    table.note(
        "Paper reference: CFT 1.0, RRN 0.88, RFC(l=2) 0.80, RFC(l=3) 0.86. "
        "A positive spectral gap certifies the random families are "
        "expanders (Section 2's Bassalygo-Pinsker lineage)."
    )
    return table
