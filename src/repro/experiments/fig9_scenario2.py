"""Figure 9: scenario 2 -- intermediate expansion.

3-level RFC against a 4-level partially populated CFT at matched
terminal counts.  Expected shape: equal uniform throughput with ~15-20%
lower RFC latency (one level fewer); a modest RFC deficit under
random-pairing; parity under fixed-random.
"""

from __future__ import annotations

from .common import Table
from .scenario_sim import run_scenario

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0, executor=None) -> Table:
    table = run_scenario(
        "intermediate-100k", quick=quick, seed=seed, executor=executor
    )
    table.title = "Figure 9: " + table.title
    return table
