"""Figure 7: expandability -- total ports versus compute nodes.

Deterministic topologies (CFT, OFT) appear as step functions: each
step is a weak expansion (a whole new level of switches must be
deployed before one more compute node fits).  The random topologies
(RFC, RRN) grow almost linearly -- strong expansion adds a handful of
switches at a time -- with the RFC stepping only at the Theorem 4.2
limit where a level becomes necessary.

The second half of the experiment reproduces the paper's rewiring
claim: expanding a radix-36, ~10,000-terminal RFC by 180 compute nodes
rewires about 1.8% of its links (we report the measured fraction on a
generated instance, scaled down in quick mode).
"""

from __future__ import annotations

import random

from ..core.expansion import expand_rfc
from ..core.rfc import rfc_with_updown
from ..cost.model import expandability_curve
from .common import Table

__all__ = ["run", "rewiring_check"]

DEFAULT_RADIX = 36


def run(quick: bool = True, seed: int = 0) -> Table:
    radix = DEFAULT_RADIX
    terminal_counts = [
        500, 1_000, 2_000, 5_000, 11_664, 20_000, 50_000,
        100_008, 150_000, 202_572, 250_000,
    ]
    curves = {
        kind: expandability_curve(kind, radix, terminal_counts)
        for kind in ("cft", "rfc", "rrn", "oft")
    }
    table = Table(
        title=f"Figure 7: total ports vs compute nodes (radix {radix})",
        headers=[
            "terminals",
            "ports CFT", "levels CFT",
            "ports RFC", "levels RFC",
            "ports RRN",
            "ports OFT", "levels OFT",
        ],
    )
    for i, terminals in enumerate(terminal_counts):
        table.add(
            terminals,
            curves["cft"][i].ports, curves["cft"][i].levels,
            curves["rfc"][i].ports, curves["rfc"][i].levels,
            curves["rrn"][i].ports,
            curves["oft"][i].ports, curves["oft"][i].levels,
        )
    if quick:
        table.note(rewiring_check(radix=12, n1=80, levels=3, steps=3, seed=seed))
    else:
        table.note(rewiring_check(radix=36, n1=556, levels=3, steps=5, seed=seed))
    return table


def rewiring_check(
    radix: int, n1: int, levels: int, steps: int, seed: int = 0
) -> str:
    """Measure the rewiring fraction of a strong expansion."""
    topo, _ = rfc_with_updown(radix, n1, levels, rng=random.Random(seed))
    total_before = topo.num_links
    expanded, report = expand_rfc(topo, steps=steps, rng=seed + 1)
    return (
        f"strong expansion of RFC(R={radix}, N1={n1}, l={levels}) by "
        f"{steps} steps (+{report.terminals_added} nodes) rewired "
        f"{report.links_removed} of {total_before} links "
        f"({report.rewired_fraction(total_before):.2%}); "
        f"expanded network has {expanded.num_terminals} terminals"
    )
