"""Random link-failure processes.

The paper's resiliency methodology (Section 7, after Slim Fly): links
fail one by one in uniformly random order; a property of interest
(connectivity, up/down routability, throughput) is tracked along the
failure sequence.  Because every property studied is *monotone* --
once lost it cannot come back as more links fail -- thresholds along a
fixed failure order can be located by binary search, which is what
makes 100-trial averages at paper scale affordable.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..topologies.base import DirectNetwork, FoldedClos, Link

__all__ = [
    "shuffled_links",
    "failure_threshold",
    "UnionFind",
]


def shuffled_links(
    network: FoldedClos | DirectNetwork,
    rng: random.Random | int | None = None,
) -> list[Link]:
    """The network's links in a uniformly random failure order."""
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    links = network.links()
    rand.shuffle(links)
    return links


def failure_threshold(
    num_links: int,
    still_ok: Callable[[int], bool],
) -> int:
    """Smallest failure count that breaks a monotone property.

    ``still_ok(k)`` must report whether the property holds after the
    first ``k`` links of the failure order are removed, and must be
    monotone (non-increasing in ``k``).  Returns the minimal breaking
    ``k`` in ``1..num_links``, or ``num_links + 1`` when the property
    survives every removal.
    """
    if not still_ok(0):
        return 0
    lo, hi = 0, num_links  # ok at lo; test if ever broken
    if still_ok(num_links):
        return num_links + 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if still_ok(mid):
            lo = mid
        else:
            hi = mid
    return hi


class UnionFind:
    """Classic disjoint-set forest with path halving + union by size."""

    __slots__ = ("parent", "size", "components")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n
        self.components = n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.components -= 1
        return True

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def all_connected(self, vertices: Sequence[int]) -> bool:
        if not vertices:
            return True
        root = self.find(vertices[0])
        return all(self.find(v) == root for v in vertices[1:])
