"""Up/down-routing survival under link failures (paper Figure 11).

A folded Clos keeps its deadlock-free up/down routing only while every
leaf pair retains a common ancestor.  This module measures, for random
failure orders, the largest fraction of links that can fail before
that property breaks.  Per the paper:

* RFCs trade radix slack for tolerance: at the Theorem 4.2 threshold
  tolerance is small, while radix above the threshold (positive ``x``)
  buys a sizeable failure budget;
* CFTs have a fixed (lower) tolerance and OFTs lose up/down routing at
  the very first failures (unique paths).

The property is monotone in the failure prefix, so thresholds are
located by binary search over each random order (see
:mod:`repro.faults.removal`).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from .. import accel as _accel
from ..core.ancestors import has_updown_routing, sweeper_of
from ..topologies.base import FoldedClos, Link
from .removal import failure_threshold, shuffled_links

__all__ = [
    "UpdownSurvival",
    "updown_fault_tolerance",
    "updown_trial",
    "order_threshold",
    "pruned_stages",
]


@dataclass(frozen=True)
class UpdownSurvival:
    """Tolerated-failure statistics over several random orders."""

    mean_fraction: float
    stdev_fraction: float
    trials: int
    total_links: int

    @property
    def mean_percent(self) -> float:
        return 100.0 * self.mean_fraction


def pruned_stages(
    topo: FoldedClos, removed: set[Link]
) -> list[list[list[int]]]:
    """Stage adjacency with ``removed`` links deleted."""
    stages: list[list[list[int]]] = []
    for level in range(topo.num_levels - 1):
        rows = []
        for s in range(topo.level_sizes[level]):
            lo = topo.switch_id(level, s)
            rows.append(
                [
                    t
                    for t in topo.up_neighbors(level, s)
                    if Link(lo, topo.switch_id(level + 1, t)) not in removed
                ]
            )
        stages.append(rows)
    return stages


def _stage_failure_positions(
    topo: FoldedClos,
    sweeper: "_accel.StageSweeper",
    order: list[Link],
):
    """Failure-order index of every stage edge (``len(order)`` = never).

    Maps the flat :class:`Link` failure order onto the sweeper's
    per-stage edge arrays once, so each binary-search probe afterwards
    is a single vectorized position comparison.
    """
    import numpy as np

    first_position: dict[tuple[int, int], int] = {}
    for position, link in enumerate(order):
        first_position.setdefault((link.lo, link.hi), position)
    never = len(order)
    positions = []
    for stage, (src, dst) in enumerate(sweeper.edge_keys()):
        lo_off = topo.switch_id(stage, 0)
        hi_off = topo.switch_id(stage + 1, 0)
        lo = (src + lo_off).tolist()
        hi = (dst + hi_off).tolist()
        positions.append(
            np.fromiter(
                (first_position.get(pair, never) for pair in zip(lo, hi)),
                dtype=np.int64,
                count=len(lo),
            )
        )
    return positions


def order_threshold(
    topo: FoldedClos, order: list[Link], accel: bool = True
) -> int:
    """Failures tolerated along one fixed failure order.

    The largest ``k`` such that the network is still up/down routable
    after the first ``k`` failures of ``order``.  Pure function of its
    arguments (no RNG), so trials over pre-drawn orders can run in any
    scheduling order -- including across a process pool -- without
    perturbing results.

    With ``accel=True`` (the default) the monotone binary search runs
    incrementally: the stage edges are packed once into a
    :class:`repro.accel.StageSweeper` together with each edge's
    position in ``order``, and every probe re-runs the packed ancestor
    sweep on a masked edge array instead of rebuilding pruned Python
    stage lists.  Thresholds are bit-for-bit identical to the
    reference path (``accel=False``).
    """
    sizes = topo.level_sizes

    if accel and sizes[0] > 0 and _accel.is_available():
        # sweeper_of consumes packed CSR stage arrays directly when the
        # topology carries them; flat edge order (and therefore every
        # keep mask and threshold) is identical either way.
        sweeper = sweeper_of(topo)
        positions = _stage_failure_positions(topo, sweeper, order)

        def still_ok(k: int) -> bool:
            keep = sweeper.keep_masks_for_positions(positions, k)
            return sweeper.has_updown(keep)

    else:

        def still_ok(k: int) -> bool:
            removed = set(order[:k])
            return has_updown_routing(
                sizes, pruned_stages(topo, removed), accel=accel
            )

    return failure_threshold(len(order), still_ok) - 1


def updown_trial(
    topo: FoldedClos,
    rng: random.Random | int | None = None,
    accel: bool = True,
) -> int:
    """Failures tolerated before up/down routing breaks (one order).

    Returns the largest ``k`` such that the network is still up/down
    routable after the first ``k`` failures.
    """
    return order_threshold(topo, shuffled_links(topo, rng=rng), accel=accel)


def updown_fault_tolerance(
    topo: FoldedClos,
    trials: int = 20,
    rng: random.Random | int | None = None,
    executor=None,
    accel: bool = True,
) -> UpdownSurvival:
    """Mean fraction of links tolerable while keeping up/down routing.

    All ``trials`` random failure orders are drawn from ``rng`` up
    front -- consuming exactly the same RNG stream as the historical
    serial trial loop -- and the monotone-threshold searches (the
    expensive part) then run through ``executor`` (the ambient
    :mod:`repro.exec` executor when None), which may fan them across
    worker processes.
    """
    from ..exec import get_executor

    if trials < 1:
        raise ValueError("need at least one trial")
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    total = topo.num_links
    orders = [shuffled_links(topo, rng=rand) for _ in range(trials)]
    runner = executor if executor is not None else get_executor()
    thresholds = runner.map(
        order_threshold, [(topo, order, accel) for order in orders]
    )
    fractions = [t / total for t in thresholds]
    return UpdownSurvival(
        mean_fraction=statistics.fmean(fractions),
        stdev_fraction=statistics.stdev(fractions) if trials > 1 else 0.0,
        trials=trials,
        total_links=total,
    )
