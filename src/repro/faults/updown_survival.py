"""Up/down-routing survival under link failures (paper Figure 11).

A folded Clos keeps its deadlock-free up/down routing only while every
leaf pair retains a common ancestor.  This module measures, for random
failure orders, the largest fraction of links that can fail before
that property breaks.  Per the paper:

* RFCs trade radix slack for tolerance: at the Theorem 4.2 threshold
  tolerance is small, while radix above the threshold (positive ``x``)
  buys a sizeable failure budget;
* CFTs have a fixed (lower) tolerance and OFTs lose up/down routing at
  the very first failures (unique paths).

The property is monotone in the failure prefix, so thresholds are
located by binary search over each random order (see
:mod:`repro.faults.removal`).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from ..core.ancestors import has_updown_routing
from ..topologies.base import FoldedClos, Link
from .removal import failure_threshold, shuffled_links

__all__ = [
    "UpdownSurvival",
    "updown_fault_tolerance",
    "updown_trial",
    "order_threshold",
    "pruned_stages",
]


@dataclass(frozen=True)
class UpdownSurvival:
    """Tolerated-failure statistics over several random orders."""

    mean_fraction: float
    stdev_fraction: float
    trials: int
    total_links: int

    @property
    def mean_percent(self) -> float:
        return 100.0 * self.mean_fraction


def pruned_stages(
    topo: FoldedClos, removed: set[Link]
) -> list[list[list[int]]]:
    """Stage adjacency with ``removed`` links deleted."""
    stages: list[list[list[int]]] = []
    for level in range(topo.num_levels - 1):
        rows = []
        for s in range(topo.level_sizes[level]):
            lo = topo.switch_id(level, s)
            rows.append(
                [
                    t
                    for t in topo.up_neighbors(level, s)
                    if Link(lo, topo.switch_id(level + 1, t)) not in removed
                ]
            )
        stages.append(rows)
    return stages


def order_threshold(topo: FoldedClos, order: list[Link]) -> int:
    """Failures tolerated along one fixed failure order.

    The largest ``k`` such that the network is still up/down routable
    after the first ``k`` failures of ``order``.  Pure function of its
    arguments (no RNG), so trials over pre-drawn orders can run in any
    scheduling order -- including across a process pool -- without
    perturbing results.
    """
    sizes = topo.level_sizes

    def still_ok(k: int) -> bool:
        removed = set(order[:k])
        return has_updown_routing(sizes, pruned_stages(topo, removed))

    return failure_threshold(len(order), still_ok) - 1


def updown_trial(
    topo: FoldedClos,
    rng: random.Random | int | None = None,
) -> int:
    """Failures tolerated before up/down routing breaks (one order).

    Returns the largest ``k`` such that the network is still up/down
    routable after the first ``k`` failures.
    """
    return order_threshold(topo, shuffled_links(topo, rng=rng))


def updown_fault_tolerance(
    topo: FoldedClos,
    trials: int = 20,
    rng: random.Random | int | None = None,
    executor=None,
) -> UpdownSurvival:
    """Mean fraction of links tolerable while keeping up/down routing.

    All ``trials`` random failure orders are drawn from ``rng`` up
    front -- consuming exactly the same RNG stream as the historical
    serial trial loop -- and the monotone-threshold searches (the
    expensive part) then run through ``executor`` (the ambient
    :mod:`repro.exec` executor when None), which may fan them across
    worker processes.
    """
    from ..exec import get_executor

    if trials < 1:
        raise ValueError("need at least one trial")
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    total = topo.num_links
    orders = [shuffled_links(topo, rng=rand) for _ in range(trials)]
    runner = executor if executor is not None else get_executor()
    thresholds = runner.map(order_threshold, [(topo, order) for order in orders])
    fractions = [t / total for t in thresholds]
    return UpdownSurvival(
        mean_fraction=statistics.fmean(fractions),
        stdev_fraction=statistics.stdev(fractions) if trials > 1 else 0.0,
        trials=trials,
        total_links=total,
    )
