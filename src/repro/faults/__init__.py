"""Fault injection and resiliency analyses (paper Section 7)."""

from .disconnection import (
    DisconnectionResult,
    disconnection_fraction,
    disconnection_trial,
)
from .removal import UnionFind, failure_threshold, shuffled_links
from .switches import (
    SwitchSurvival,
    links_of_switches,
    switch_failure_order,
    updown_switch_tolerance,
    updown_switch_trial,
)
from .updown_survival import (
    UpdownSurvival,
    order_threshold,
    pruned_stages,
    updown_fault_tolerance,
    updown_trial,
)

__all__ = [
    "DisconnectionResult",
    "disconnection_fraction",
    "disconnection_trial",
    "UnionFind",
    "failure_threshold",
    "shuffled_links",
    "UpdownSurvival",
    "SwitchSurvival",
    "links_of_switches",
    "switch_failure_order",
    "updown_switch_tolerance",
    "updown_switch_trial",
    "order_threshold",
    "pruned_stages",
    "updown_fault_tolerance",
    "updown_trial",
]
