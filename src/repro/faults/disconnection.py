"""Link removals until disconnection (paper Table 3).

For each trial, links fail in a uniformly random order and the trial
records the smallest number of failures that disconnects the switch
graph.  The paper reports the mean over 100 trials as a percentage of
the total links, for CFT / RRN / RFC / OFT instances of diameter 4
(3 levels) and matched terminal counts.

Two flavours of "disconnected" are provided:

* ``scope="switches"`` (default, matching the paper/Slim Fly): any
  switch separated from the rest counts;
* ``scope="leaves"``: only loss of leaf-to-leaf connectivity counts --
  terminals do not care about stranded root switches.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from ..topologies.base import DirectNetwork, FoldedClos
from .removal import UnionFind, failure_threshold, shuffled_links

__all__ = ["DisconnectionResult", "disconnection_fraction", "disconnection_trial"]


@dataclass(frozen=True)
class DisconnectionResult:
    """Aggregated disconnection statistics over several trials."""

    mean_fraction: float
    stdev_fraction: float
    trials: int
    total_links: int

    @property
    def mean_percent(self) -> float:
        return 100.0 * self.mean_fraction


def disconnection_trial(
    network: FoldedClos | DirectNetwork,
    rng: random.Random | int | None = None,
    scope: str = "switches",
) -> int:
    """Failures needed to disconnect under one random failure order."""
    order = shuffled_links(network, rng=rng)
    num_switches = network.num_switches
    if scope == "switches":
        watched = None
    elif scope == "leaves":
        if isinstance(network, FoldedClos):
            watched = list(range(network.num_leaves))
        else:
            watched = list(range(num_switches))
    else:
        raise ValueError(f"unknown scope {scope!r}")

    def still_ok(k: int) -> bool:
        uf = UnionFind(num_switches)
        for link in order[k:]:
            uf.union(link.lo, link.hi)
        if watched is None:
            return uf.components == 1
        return uf.all_connected(watched)

    return failure_threshold(len(order), still_ok)


def disconnection_fraction(
    network: FoldedClos | DirectNetwork,
    trials: int = 100,
    rng: random.Random | int | None = None,
    scope: str = "switches",
) -> DisconnectionResult:
    """Mean fraction of links whose removal disconnects the network.

    Matches the paper's Table 3 methodology (they use 100 trials).
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    total = network.num_links
    counts = [
        min(disconnection_trial(network, rng=rand, scope=scope), total)
        for _ in range(trials)
    ]
    fractions = [c / total for c in counts]
    return DisconnectionResult(
        mean_fraction=statistics.fmean(fractions),
        stdev_fraction=statistics.stdev(fractions) if trials > 1 else 0.0,
        trials=trials,
        total_links=total,
    )
