"""Correlated failures: whole-switch outages.

The paper's Section 7 fails individual links; real outages often take
out a switch (power, firmware) and with it *all* of its links.  This
module maps switch failures onto the link-failure machinery so the
same monotone binary-search analysis applies, letting users compare
tolerance to independent link faults vs correlated switch faults.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from ..core.ancestors import has_updown_routing
from ..topologies.base import DirectNetwork, FoldedClos, Link
from .removal import failure_threshold
from .updown_survival import pruned_stages

__all__ = [
    "links_of_switches",
    "switch_failure_order",
    "updown_switch_trial",
    "SwitchSurvival",
    "updown_switch_tolerance",
]


def links_of_switches(
    network: FoldedClos | DirectNetwork, switches: set[int]
) -> list[Link]:
    """Every link incident to any of the given flat switch ids."""
    return [
        link
        for link in network.links()
        if link.lo in switches or link.hi in switches
    ]


def switch_failure_order(
    network: FoldedClos | DirectNetwork,
    rng: random.Random | int | None = None,
    spare_leaves: bool = True,
) -> list[int]:
    """Switches in a uniformly random failure order.

    With ``spare_leaves`` (default) leaf switches are excluded on
    folded Clos networks: a dead leaf trivially disconnects its own
    terminals, which says nothing about fabric resilience.
    """
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    if isinstance(network, FoldedClos) and spare_leaves:
        candidates = list(range(network.num_leaves, network.num_switches))
    else:
        candidates = list(range(network.num_switches))
    rand.shuffle(candidates)
    return candidates


def updown_switch_trial(
    topo: FoldedClos,
    rng: random.Random | int | None = None,
) -> int:
    """Switch failures tolerated before up/down routing breaks."""
    order = switch_failure_order(topo, rng=rng)
    sizes = topo.level_sizes

    def still_ok(k: int) -> bool:
        removed = set(links_of_switches(topo, set(order[:k])))
        return has_updown_routing(sizes, pruned_stages(topo, removed))

    return failure_threshold(len(order), still_ok) - 1


@dataclass(frozen=True)
class SwitchSurvival:
    """Tolerated-switch-failure statistics."""

    mean_fraction: float
    stdev_fraction: float
    trials: int
    fabric_switches: int

    @property
    def mean_percent(self) -> float:
        return 100.0 * self.mean_fraction


def updown_switch_tolerance(
    topo: FoldedClos,
    trials: int = 10,
    rng: random.Random | int | None = None,
) -> SwitchSurvival:
    """Mean fraction of fabric switches tolerable with up/down intact."""
    if trials < 1:
        raise ValueError("need at least one trial")
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    fabric = topo.num_switches - topo.num_leaves
    if fabric < 1:
        raise ValueError("network has no fabric switches to fail")
    fractions = [
        updown_switch_trial(topo, rng=rand) / fabric for _ in range(trials)
    ]
    return SwitchSurvival(
        mean_fraction=statistics.fmean(fractions),
        stdev_fraction=statistics.stdev(fractions) if trials > 1 else 0.0,
        trials=trials,
        fabric_switches=fabric,
    )
