"""Cost accounting and deployment scenarios."""

from .model import (
    CostPoint,
    cft_cost,
    expandability_curve,
    oft_cost,
    rfc_cost,
    rrn_cost,
)
from .pricing import PriceModel, max_rfc_saving
from .scenarios import SCENARIOS, Scenario, scenario, scenario_names

__all__ = [
    "CostPoint",
    "cft_cost",
    "rfc_cost",
    "oft_cost",
    "rrn_cost",
    "expandability_curve",
    "PriceModel",
    "max_rfc_saving",
    "Scenario",
    "SCENARIOS",
    "scenario",
    "scenario_names",
]
