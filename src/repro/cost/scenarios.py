"""The paper's Section 5/6 comparison scenarios (11K / 100K / 200K).

Three named CFT-vs-RFC deployments with radix-36 switches recur through
the paper:

1. **equal resources (11K)** -- 3-level CFT and RFC with the same
   11,664 compute nodes, plus the paper's radix-20 RFC variant that
   matches the node count with smaller switches;
2. **intermediate expansion (100K)** -- 100,008 compute nodes: the RFC
   stays at 3 levels, the CFT must jump to 4;
3. **maximum expansion (200K)** -- the largest 3-level RFC
   (202,572 nodes, at the Theorem 4.2 limit) against the fully
   equipped 4-level CFT (209,952 nodes).

Each scenario carries the full-size cost figures (validated against
the paper's switch/wire counts in the tests) and a *scaled* parameter
set used by the cycle-level simulator, chosen to keep the structural
relationships (level counts, leaf ratios) while staying laptop-sized.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.theory import rfc_max_leaves
from .model import CostPoint, cft_cost, rfc_cost

__all__ = ["Scenario", "SCENARIOS", "scenario", "scenario_names"]


@dataclass(frozen=True)
class ScaledConfig:
    """Down-scaled simulator configuration preserving the structure.

    ``cft_hosts`` below ``radix/2`` models the paper's partially
    populated fabrics (intermediate expansion); ``rfc_alt_radix``/
    ``rfc_alt_n1`` carry the smaller-radix RFC variant of scenario 1.
    """

    radix: int
    cft_levels: int
    cft_hosts: int
    rfc_levels: int
    rfc_n1: int
    rfc_alt_radix: int | None = None
    rfc_alt_n1: int | None = None

    @property
    def cft_terminals(self) -> int:
        return 2 * (self.radix // 2) ** (self.cft_levels - 1) * self.cft_hosts

    @property
    def rfc_terminals(self) -> int:
        return self.rfc_n1 * (self.radix // 2)


@dataclass(frozen=True)
class Scenario:
    """One named CFT-vs-RFC comparison."""

    name: str
    description: str
    cft: CostPoint
    rfc: CostPoint
    scaled: ScaledConfig
    rfc_alt: CostPoint | None = None

    def savings(self) -> dict[str, float]:
        """RFC's fractional savings in switches/wires/ports vs CFT."""
        return self.rfc.savings_vs(self.cft)


def _build_scenarios() -> dict[str, Scenario]:
    radix = 36
    half = radix // 2

    # Scenario 1: equal resources, 11,664 terminals, both 3 levels.
    cft_11k = cft_cost(radix, 3)
    rfc_11k = rfc_cost(radix, n1=cft_11k.terminals // half, levels=3)
    rfc_11k_r20 = rfc_cost(20, n1=1166, levels=3)
    equal = Scenario(
        name="equal-resources-11k",
        description=(
            "3-level CFT and RFC with radix 36 and 11,664 compute nodes "
            "(plus the radix-20 RFC matching the node count)"
        ),
        cft=cft_11k,
        rfc=rfc_11k,
        rfc_alt=rfc_11k_r20,
        # Structural scale-down: both 3 levels, equal resources; the
        # alt RFC matches the node count with smaller-radix switches
        # (radix 10 vs 12, as radix 20 vs 36 in the paper).
        scaled=ScaledConfig(
            radix=12, cft_levels=3, cft_hosts=6, rfc_levels=3, rfc_n1=72,
            rfc_alt_radix=10, rfc_alt_n1=86,
        ),
    )

    # Scenario 2: 100,008 terminals; RFC keeps 3 levels, CFT needs 4.
    rfc_100k = rfc_cost(radix, n1=2 * 2778, levels=3)
    cft_100k = cft_cost(radix, 4)
    intermediate = Scenario(
        name="intermediate-100k",
        description=(
            "100,008 compute nodes: 3-level RFC vs 4-level CFT "
            "(fully equipped, with free ports for future expansion)"
        ),
        cft=cft_100k,
        rfc=rfc_100k,
        # Scaled: RFC stays 3 levels while the CFT adds a 4th, half
        # populated (paper: 100,008 of 209,952 slots in use).
        scaled=ScaledConfig(
            radix=12, cft_levels=4, cft_hosts=3, rfc_levels=3, rfc_n1=216
        ),
    )

    # Scenario 3: maximum 3-level RFC vs the full 4-level CFT.
    n1_max = rfc_max_leaves(radix, 3)  # paper: 2 * 5627 = 11,254
    rfc_200k = rfc_cost(radix, n1=n1_max, levels=3)
    cft_200k = cft_cost(radix, 4)
    maximum = Scenario(
        name="maximum-200k",
        description=(
            "maximum 3-level RFC (202,572 nodes, Theorem 4.2 limit) vs "
            "the 4-level CFT (209,952 nodes)"
        ),
        cft=cft_200k,
        rfc=rfc_200k,
        # Scaled: RFC near its Theorem 4.2 limit for radix 12
        # (max leaves ~247), CFT 4-level populated to a similar size.
        scaled=ScaledConfig(
            radix=12, cft_levels=4, cft_hosts=4, rfc_levels=3, rfc_n1=246
        ),
    )
    return {s.name: s for s in (equal, intermediate, maximum)}


SCENARIOS: dict[str, Scenario] = _build_scenarios()


def scenario(name: str) -> Scenario:
    """Fetch a scenario by name (or a unique prefix of it)."""
    if name in SCENARIOS:
        return SCENARIOS[name]
    matches = [s for key, s in SCENARIOS.items() if key.startswith(name)]
    if len(matches) == 1:
        return matches[0]
    raise KeyError(
        f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
    )


def scenario_names() -> list[str]:
    return list(SCENARIOS)
