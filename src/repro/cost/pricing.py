"""Configurable price model on top of the port/switch/wire counts.

Figure 7 uses raw port counts as "a coarse-grain measure of the
network cost"; real procurement weighs switches (chassis + per-port),
cables and NICs differently.  :class:`PriceModel` lets users plug in
their own unit prices and price any :class:`CostPoint`; the default
unit prices are deliberately simple (chassis dominated by port count)
so the defaults reproduce the paper's port-based conclusions.

:func:`max_rfc_saving` locates the paper's "saving up to 95% of the
cost" claim: the worst point for the CFT is just past a capacity step,
where a whole new level has been deployed for a handful of nodes while
the RFC grew by two leaf switches.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import CostPoint, expandability_curve

__all__ = ["PriceModel", "max_rfc_saving"]


@dataclass(frozen=True)
class PriceModel:
    """Unit prices (arbitrary currency).

    ``switch_base`` per chassis, ``per_port`` per switch port (ports
    are counted whether or not populated -- a radix-R switch carries R
    ports of silicon), ``per_cable`` per installed switch-to-switch
    cable, ``per_nic`` per compute-node link.
    """

    switch_base: float = 0.0
    per_port: float = 1.0
    per_cable: float = 0.0
    per_nic: float = 0.0

    def deployment_price(self, point: CostPoint) -> float:
        """Price a deployment described by a :class:`CostPoint`."""
        return (
            self.switch_base * point.switches
            + self.per_port * point.switches * point.radix
            + self.per_cable * point.wires
            + self.per_nic * point.terminals
        )

    def price_per_terminal(self, point: CostPoint) -> float:
        if point.terminals == 0:
            raise ValueError("deployment hosts no terminals")
        return self.deployment_price(point) / point.terminals


def max_rfc_saving(
    radix: int = 36,
    model: PriceModel | None = None,
    terminal_counts: list[int] | None = None,
) -> tuple[int, float]:
    """Largest RFC-vs-CFT cost saving over a terminal-count sweep.

    Returns ``(terminals, fractional_saving)``.  With the default
    port-dominated price model and the paper's radix 36, the maximum
    sits just past the 3-level CFT capacity (11,664) and exceeds 90%
    (the paper's abstract: "saving up to 95% of the cost").
    """
    model = model or PriceModel()
    if terminal_counts is None:
        terminal_counts = [
            2_000, 5_000, 11_664, 11_700, 12_000, 15_000, 20_000,
            50_000, 100_008, 150_000, 202_572,
        ]
    cft = expandability_curve("cft", radix, terminal_counts)
    rfc = expandability_curve("rfc", radix, terminal_counts)
    best = (terminal_counts[0], 0.0)
    for terminals, c, r in zip(terminal_counts, cft, rfc):
        c_price = model.deployment_price(c)
        r_price = model.deployment_price(r)
        if c_price <= 0:
            continue
        saving = 1.0 - r_price / c_price
        if saving > best[1]:
            best = (terminals, saving)
    return best
