"""Port/switch/wire cost accounting (paper Sections 5 and 6).

The paper's coarse-grain cost measure is the **total number of ports**
(Figure 7's ordinate): every switch-to-switch wire consumes two ports
and every compute node one.  :class:`CostPoint` captures one deployment
and the ``*_cost`` constructors compute the closed-form counts for each
topology family without instantiating graphs, so curves can be swept to
hundreds of thousands of terminals instantly.

:func:`expandability_curve` reproduces Figure 7: ports as a function of
connected compute nodes, stepping when a topology is forced to add a
level (weak expansion) and growing linearly for the random topologies
(strong expansion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.theory import rfc_max_leaves, rfc_max_terminals
from ..topologies.fattree import cft_terminals, cft_switches, cft_wires
from ..topologies.oft import (
    oft_order_for_radix,
    oft_switches,
    oft_terminals,
    oft_wires,
)
from ..topologies.rrn import rrn_degree_for

__all__ = [
    "CostPoint",
    "cft_cost",
    "rfc_cost",
    "oft_cost",
    "rrn_cost",
    "expandability_curve",
]


@dataclass(frozen=True)
class CostPoint:
    """One deployment's headline numbers."""

    topology: str
    radix: int
    levels: int
    terminals: int
    switches: int
    wires: int

    @property
    def ports(self) -> int:
        """Total ports: two per wire plus one per compute node."""
        return 2 * self.wires + self.terminals

    @property
    def ports_per_terminal(self) -> float:
        return self.ports / self.terminals if self.terminals else math.inf

    def savings_vs(self, other: "CostPoint") -> dict[str, float]:
        """Fractional savings of ``self`` relative to ``other``."""
        return {
            "switches": 1.0 - self.switches / other.switches,
            "wires": 1.0 - self.wires / other.wires,
            "ports": 1.0 - self.ports / other.ports,
        }


def cft_cost(radix: int, levels: int) -> CostPoint:
    """Fully-equipped R-commodity fat-tree."""
    return CostPoint(
        topology="CFT",
        radix=radix,
        levels=levels,
        terminals=cft_terminals(radix, levels),
        switches=cft_switches(radix, levels),
        wires=cft_wires(radix, levels),
    )


def rfc_cost(radix: int, n1: int, levels: int) -> CostPoint:
    """Radix-regular RFC with ``n1`` leaf switches."""
    if n1 % 2:
        raise ValueError("RFC leaf count must be even")
    half = radix // 2
    switches = n1 * (levels - 1) + n1 // 2
    wires = (levels - 1) * n1 * half
    return CostPoint(
        topology="RFC",
        radix=radix,
        levels=levels,
        terminals=n1 * half,
        switches=switches,
        wires=wires,
    )


def oft_cost(q: int, levels: int) -> CostPoint:
    """Orthogonal fat-tree of order ``q``."""
    return CostPoint(
        topology="OFT",
        radix=2 * (q + 1),
        levels=levels,
        terminals=oft_terminals(q, levels),
        switches=oft_switches(q, levels),
        wires=oft_wires(q, levels),
    )


def rrn_cost(num_switches: int, degree: int, hosts: int) -> CostPoint:
    """Random regular network (direct; 'levels' reported as 1)."""
    return CostPoint(
        topology="RRN",
        radix=degree + hosts,
        levels=1,
        terminals=num_switches * hosts,
        switches=num_switches,
        wires=num_switches * degree // 2,
    )


def _rfc_levels_for(radix: int, n1: int, max_levels: int = 12) -> int:
    """Fewest levels keeping ``n1`` leaves under the Theorem 4.2 cap."""
    for levels in range(2, max_levels):
        if rfc_max_leaves(radix, levels) >= n1:
            return levels
    raise ValueError(f"radix {radix} cannot reach {n1} leaves")


def expandability_curve(
    topology: str,
    radix: int,
    terminal_counts: list[int],
) -> list[CostPoint]:
    """Ports-vs-terminals deployment curve (Figure 7).

    For the deterministic topologies (CFT, OFT) the deployment at ``T``
    terminals is the smallest fully-equipped instance with capacity at
    least ``T`` (partially populated with ``T`` compute nodes) -- hence
    the step function.  RFC deployments grow by the minimal strong
    expansion (leaf pairs), stepping a level only at the Theorem 4.2
    limit; RRNs grow one switch at a time with the Section 4.3 balanced
    port split for diameter 4.
    """
    kind = topology.lower()
    points: list[CostPoint] = []
    for terminals in terminal_counts:
        if kind == "cft":
            levels = 1
            while cft_terminals(radix, levels) < terminals:
                levels += 1
            base = cft_cost(radix, levels)
            point = CostPoint(
                "CFT", radix, levels, terminals, base.switches, base.wires
            )
        elif kind == "oft":
            q = oft_order_for_radix(radix)
            levels = 2
            while oft_terminals(q, levels) < terminals:
                levels += 1
            base = oft_cost(q, levels)
            point = CostPoint(
                "OFT", base.radix, levels, terminals, base.switches, base.wires
            )
        elif kind == "rfc":
            half = radix // 2
            n1 = 2 * math.ceil(terminals / (2 * half))
            levels = _rfc_levels_for(radix, n1)
            base = rfc_cost(radix, n1, levels)
            point = CostPoint(
                "RFC", radix, levels, terminals, base.switches, base.wires
            )
        elif kind == "rrn":
            degree, hosts = rrn_degree_for(radix, 4)
            switches = math.ceil(terminals / hosts)
            base = rrn_cost(switches, degree, hosts)
            point = CostPoint(
                "RRN", radix, 1, terminals, base.switches, base.wires
            )
        else:
            raise ValueError(f"unknown topology kind {topology!r}")
        points.append(point)
    return points
