"""RPR103: impurity reaching key/seed derivation through any call chain.

RPR002 and RPR004 are per-file: they catch ``time.time()`` written
*inside* the cache layer.  One helper of indirection defeats them --
``cache_key`` calling a utility in another module that reads the
environment builds keys that differ between hosts, and no single file
looks wrong.  This pass runs the interprocedural taint engine
(:mod:`repro.lint.dataflow`) from every key-derivation root:

* **roots** -- functions defined in a module of an ``exec`` package
  whose name mentions key/seed/digest/derive (the same name heuristic
  RPR004 uses, now applied to the whole call graph);
* **hits** -- impure source calls (wall clock, entropy, environment,
  ``hash``, unseeded global RNGs) anywhere in a root's reachable set,
  reported at the source call site with the full call chain.

Direct hits inside the root itself are reported only for sources the
per-file rules do not cover (environment, ``os.getpid``, monotonic
clocks, global RNG draws); wall-clock/entropy calls sitting right in
an exec file stay RPR004's, so one defect never needs two waivers.
"""

from __future__ import annotations

from pathlib import PurePath
from typing import Iterator

from ..base import ProjectChecker, register_project
from ..dataflow import TaintEngine, TaintHit
from ..findings import Finding
from ..graph import ProjectGraph
from .rpr004_wallclock import _BANNED as _PER_FILE_COVERED

_ROOT_NAME_PARTS = ("key", "seed", "digest", "derive")
_EXEC_DIR = "exec"


def _is_key_root(path: str, name: str) -> bool:
    on_exec = _EXEC_DIR in PurePath(path).parts
    return on_exec and any(part in name.lower() for part in _ROOT_NAME_PARTS)


@register_project
class CacheKeyTaintChecker(ProjectChecker):
    CODE = "RPR103"
    SUMMARY = (
        "wall-clock/env/RNG impurity reaching cache-key or seed "
        "derivation through the call graph"
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        engine = TaintEngine(project)
        roots = sorted(
            qualified
            for qualified, summary, fn in project.iter_functions()
            if _is_key_root(summary.path, fn.name)
        )
        seen: set[tuple[str, int, int, str]] = set()
        for root in roots:
            for hit in engine.hits_from(root):
                if len(hit.chain) == 1 and hit.source in _PER_FILE_COVERED:
                    continue  # direct call in an exec file: RPR004's finding
                key = (hit.path, hit.site.lineno, hit.site.col, hit.source)
                if key in seen:
                    continue
                seen.add(key)
                yield self._finding_for(hit)

    def _finding_for(self, hit: TaintHit) -> Finding:
        root_name = hit.root.split(".")[-1]
        if len(hit.chain) == 1:
            how = f"directly inside {root_name}()"
        else:
            how = (
                f"reachable from {root_name}() via "
                f"{hit.chain_text()}"
            )
        return self.finding(
            hit.path, hit.site.lineno, hit.site.col,
            f"{hit.source}() reads {hit.reason} and is {how}; cache keys "
            "and derived seeds must be pure functions of their inputs -- "
            "any impurity below a key root silently splits the key space "
            "across runs or hosts",
        )
