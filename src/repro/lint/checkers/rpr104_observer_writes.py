"""RPR104: observer hooks must not perturb the simulation they watch.

The observability layer (:mod:`repro.obs`) promises that attaching a
tracer or metrics collector leaves every simulation bit-for-bit
identical to an unobserved run -- the whole three-way conformance
story rests on it.  The promise dies quietly the first time a hook
"just fixes up" a queue it was handed, or draws from an RNG the engine
owns: the observed run diverges and the differential tests blame the
engines.

The pass roots at every ``on_*`` method of every class defined in an
``obs`` package and walks the project call graph below them.  In that
closure it flags, with the hook-to-site call chain as the witness:

* **foreign writes** -- attribute stores, subscript stores or mutator
  method calls (``append``, ``update``, ``pop``...) whose receiver is
  a *parameter* of the containing function (engine state handed into
  the hook), not ``self`` (observers may accumulate freely on their
  own state);
* **RNG draws off a parameter** -- ``sim.rng.random()`` advances the
  engine's deterministic stream, which is a write in all but syntax;
* **global RNG draws** -- ``random.random()`` etc. perturb
  process-global state any co-resident code may rely on.

Conservative like every project pass: receivers the graph cannot
attribute add no findings.
"""

from __future__ import annotations

from pathlib import PurePath
from typing import Iterator

from ..base import ProjectChecker, register_project
from ..dataflow import classify_source
from ..findings import Finding
from ..graph import FunctionSummary, ModuleSummary, ProjectGraph

_OBS_DIR = "obs"
_HOOK_PREFIX = "on_"

#: Method names that draw from (and therefore advance) an RNG stream.
DRAW_METHODS = frozenset({
    "random", "randrange", "randint", "shuffle", "choice", "choices",
    "sample", "uniform", "normal", "gauss", "getrandbits", "integers",
    "permutation", "standard_normal", "exponential", "poisson",
})


def _hook_roots(project: ProjectGraph) -> list[str]:
    roots: list[str] = []
    for summary in project.modules.values():
        if _OBS_DIR not in PurePath(summary.path).parts:
            continue
        for cls_qual, cls in summary.classes.items():
            for method in cls.methods:
                if not method.startswith(_HOOK_PREFIX):
                    continue
                qualified = f"{summary.module}.{cls_qual}.{method}"
                if qualified in project.functions:
                    roots.append(qualified)
    return sorted(roots)


@register_project
class ObserverWriteChecker(ProjectChecker):
    CODE = "RPR104"
    SUMMARY = (
        "code reachable from observer hooks writing engine state or "
        "advancing RNG streams"
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        roots = _hook_roots(project)
        if not roots:
            return
        reachable = project.reachable(roots)
        # Shortest witness chain per flagged function, from any root.
        seen: set[tuple[str, int, int]] = set()
        for qualified in sorted(reachable):
            summary, fn = project.functions[qualified]
            chain = self._witness(project, roots, qualified)
            for finding in self._check_function(project, summary, fn,
                                                qualified, chain):
                key = (finding.file, finding.line, finding.col)
                if key not in seen:
                    seen.add(key)
                    yield finding

    @staticmethod
    def _witness(
        project: ProjectGraph, roots: list[str], qualified: str
    ) -> str:
        best: list[str] | None = None
        for root in roots:
            chain = project.call_chain(root, qualified)
            if chain is not None and (best is None or len(chain) < len(best)):
                best = chain
        if not best or len(best) == 1:
            return ""
        return " via " + " -> ".join(
            part.split(".")[-1] + "()" for part in best
        )

    def _check_function(
        self, project: ProjectGraph, summary: ModuleSummary,
        fn: FunctionSummary, qualified: str, chain: str,
    ) -> Iterator[Finding]:
        foreign = {p for p in fn.params if p not in ("self", "cls")}
        hook = fn.name.startswith(_HOOK_PREFIX)
        where = f"a hook ({fn.name})" if hook and not chain else (
            f"{fn.name}(), reachable from an observer hook{chain}"
        )
        for write in fn.writes:
            if write.root not in foreign:
                continue
            if write.via_call:
                what = f"mutates parameter {write.root!r} ({write.attr})"
            elif write.attr is None:
                what = f"stores into parameter {write.root!r} by subscript"
            else:
                what = f"sets {write.root}.{write.attr}"
            yield self.finding(
                summary.path, write.lineno, write.col,
                f"{where} {what}: observer-reachable code must never "
                "write state it was handed -- attaching an observer has "
                "to leave the run bit-for-bit identical",
            )
        for call in fn.calls:
            tail = call.target.rsplit(".", 1)
            if len(tail) == 2 and tail[1] in DRAW_METHODS:
                root = tail[0].split(".")[0]
                if root in foreign:
                    yield self.finding(
                        summary.path, call.lineno, call.col,
                        f"{where} draws from {tail[0]}.{tail[1]}() on a "
                        "parameter: advancing an engine-owned RNG stream "
                        "from an observer desynchronizes the observed run",
                    )
        for canonical, site in project.external_calls(qualified):
            reason = classify_source(canonical)
            if reason is not None and "RNG" in reason:
                yield self.finding(
                    summary.path, site.lineno, site.col,
                    f"{where} calls {canonical}(), which draws from "
                    f"{reason}: observer-reachable code must not consume "
                    "shared RNG state",
                )
