"""RPR007: scalar Python-loop accumulation over terminal-scale ranges.

The extreme-scale path (``repro.accel``, ``repro.topologies``) exists
because per-element Python work does not survive contact with 10^5 to
10^6 terminals: a ``for i in range(num_terminals)`` loop that
accumulates into a plain ``int`` runs the interpreter once per
terminal -- two to three orders of magnitude slower than the
``np.sum`` / ``np.bincount`` / ``reduceat`` reduction it shadows, and
exactly the kind of hot-path regression that creeps in through an
innocent-looking helper.

The rule is deliberately narrow so every finding is actionable:

* it only applies to files under an ``accel`` or ``topologies``
  package (the layers the benchmarks gate);
* it only fires on a ``for`` statement iterating ``range(...)`` whose
  bound mentions a terminal-scale quantity (``num_terminals``,
  ``num_switches``, ``num_links``, ``num_leaves`` -- bare or as an
  attribute such as ``topo.num_terminals``);
* the loop body must augment-assign (``+=``, ``|=``, ``*=``) into a
  bare name -- a scalar accumulator.  Array writes, list builds and
  plain iteration are left alone.

Fix by reducing vectorized (``np.sum``/``np.bincount``/
``np.bitwise_or.reduce``); waive deliberate scalar loops (e.g. the
pure-Python reference oracles) with ``# repro: allow-rpr007``.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from ..base import Checker, register
from ..context import FileContext
from ..findings import Finding

#: Quantities that scale with the network, not with a constant.
_SCALE_NAMES = frozenset({
    "num_terminals", "num_switches", "num_links", "num_leaves",
})

#: Accumulating augmented-assignment operators.
_ACCUM_OPS = (ast.Add, ast.Mult, ast.BitOr, ast.BitAnd, ast.BitXor)


def _mentions_scale_quantity(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _SCALE_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _SCALE_NAMES:
            return True
    return False


@register
class ScalarLoopChecker(Checker):
    CODE = "RPR007"
    SUMMARY = (
        "scalar int accumulation inside a Python loop over a "
        "terminal-scale range in an accel/topologies hot path"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parts = PurePath(ctx.path).parts
        if "accel" not in parts and "topologies" not in parts:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not self._is_scale_range(ctx, node.iter):
                continue
            accumulator = self._scalar_accumulation(node)
            if accumulator is not None:
                yield self.finding(
                    ctx, accumulator,
                    "scalar accumulation inside a Python loop over a "
                    "terminal-scale range runs the interpreter once per "
                    "element at 10^5-10^6 terminals; reduce vectorized "
                    "(np.sum / np.bincount / np.bitwise_or.reduce) or "
                    "waive a deliberate reference oracle with "
                    "'# repro: allow-rpr007'",
                )

    @staticmethod
    def _is_scale_range(ctx: FileContext, iterator: ast.expr) -> bool:
        return (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Name)
            and iterator.func.id == "range"
            and ctx.is_builtin("range")
            and any(_mentions_scale_quantity(arg) for arg in iterator.args)
        )

    @staticmethod
    def _scalar_accumulation(
        loop: ast.For | ast.AsyncFor,
    ) -> ast.AugAssign | None:
        """First ``name <op>= ...`` statement in the loop body, if any."""
        for sub in ast.walk(loop):
            if (
                isinstance(sub, ast.AugAssign)
                and isinstance(sub.op, _ACCUM_OPS)
                and isinstance(sub.target, ast.Name)
            ):
                return sub
        return None
