"""RPR006: mutable default arguments in public API functions.

A ``def f(x, acc=[])`` default is evaluated once and shared by every
call: state leaks between invocations, so two identical experiment
runs can observe different "defaults" depending on what ran before
them -- a reproducibility hazard dressed up as a convenience.  Public
functions (no leading underscore) are held to this; private helpers
are left to local judgement, since the sharing is at least contained
to one module.

Flagged defaults: list/dict/set displays and comprehensions, and
calls to ``list`` / ``dict`` / ``set`` / ``bytearray`` /
``collections.defaultdict`` / ``collections.deque``.  The standard
fix is ``arg=None`` plus ``arg = [] if arg is None else arg`` in the
body (or a frozen/tuple default).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Checker, register
from ..context import FileContext
from ..findings import Finding

_MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name in _MUTABLE_CTORS
    return False


@register
class MutableDefaultChecker(Checker):
    CODE = "RPR006"
    SUMMARY = "mutable default argument in a public API function"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            args = node.args
            positional = [*args.posonlyargs, *args.args]
            for arg, default in zip(
                positional[len(positional) - len(args.defaults):],
                args.defaults,
            ):
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default for parameter {arg.arg!r} of "
                        f"public function {node.name}() is shared across "
                        "calls; default to None and construct inside",
                    )
            for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                if kw_default is not None and _is_mutable_default(kw_default):
                    yield self.finding(
                        ctx, kw_default,
                        f"mutable default for parameter {arg.arg!r} of "
                        f"public function {node.name}() is shared across "
                        "calls; default to None and construct inside",
                    )
