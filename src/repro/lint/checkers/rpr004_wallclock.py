"""RPR004: wall-clock / entropy sources on key or seed paths.

A result cache is only content-addressed while its keys are pure
functions of the inputs; a seed derivation is only reproducible while
it is a pure function of the base seed.  ``time.time()``,
``datetime.now()``, ``os.urandom()`` and ``uuid`` values are different
on every call, so any of them reaching key or seed material makes
cache entries unreachable (every run computes fresh keys) or results
unrepeatable -- both silently.

The checker is path- and name-scoped rather than global, because
wall-clock reads are legitimate for *timing* (``time.perf_counter``
in the executor's reports is fine and not in the banned set):

* inside any file of an ``exec`` package (the execution/cache layer),
  every banned call is flagged;
* elsewhere, banned calls are flagged only inside functions whose
  name mentions key/seed/digest/derive.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Checker, register
from ..context import FileContext
from ..findings import Finding

_BANNED = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUIDs",
    "uuid.uuid4": "random UUIDs",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "secrets.randbits": "OS entropy",
    "secrets.randbelow": "OS entropy",
}

_SENSITIVE_FN_PARTS = ("key", "seed", "digest", "derive")


@register
class WallClockChecker(Checker):
    CODE = "RPR004"
    SUMMARY = "wall-clock/entropy sources inside cache-key or seed-derivation paths"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        exec_path = ctx.on_exec_path()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve_call(node)
            if name not in _BANNED:
                continue
            if exec_path:
                scope = "the execution/cache layer"
            else:
                fn = ctx.enclosing_function(node)
                if fn is None or not any(
                    part in fn.name.lower() for part in _SENSITIVE_FN_PARTS
                ):
                    continue
                scope = f"{fn.name}(), a key/seed-derivation function"
            yield self.finding(
                ctx, node,
                f"{name}() reads {_BANNED[name]} inside {scope}; keys and "
                "seeds must be pure functions of the inputs (derive from "
                "explicit arguments, or use time.perf_counter for timing)",
            )
