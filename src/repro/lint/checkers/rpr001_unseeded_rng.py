"""RPR001: unseeded RNG in library code.

The paper's constructions are *defined* by their RNG stream (a random
folded Clos is the sequence of draws that wired it), so any draw from
process-global or entropy-seeded state silently changes every result
built on top of it.  Three families are flagged:

* ``random.<fn>()`` module-level functions (``random.shuffle``,
  ``random.randint``, ...) -- they share hidden global state seeded
  from the OS at import time;
* the legacy ``numpy.random.<fn>()`` global API, same problem;
* RNG constructors with no seed: ``random.Random()``,
  ``numpy.random.default_rng()``, ``numpy.random.RandomState()``
  seed themselves from OS entropy, and ``random.SystemRandom`` is
  entropy by design.  A literal ``None`` seed (``random.Random(None)``
  and friends) is the same entropy self-seeding spelled explicitly,
  so it is flagged too -- it hid a nondeterministic sampling default
  in ``repro.graphs.metrics`` for several releases.

Seeded constructions (``random.Random(seed)``, ``default_rng(seed)``)
and calls on instances (``rand.shuffle(...)``) pass clean; a seed
*variable* that may be ``None`` at runtime is not flagged (only the
literal), since seed-or-None plumbing is how callers opt in.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Checker, register
from ..context import FileContext
from ..findings import Finding

#: ``random`` module functions that touch the hidden global instance.
_RANDOM_GLOBAL_FNS = frozenset({
    "seed", "random", "uniform", "randint", "randrange", "choice",
    "choices", "shuffle", "sample", "getrandbits", "randbytes",
    "betavariate", "binomialvariate", "expovariate", "gammavariate",
    "gauss", "lognormvariate", "normalvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate",
})

#: ``numpy.random`` attributes that are *not* part of the legacy
#: global-state API (constructors and submodule machinery).
_NUMPY_NON_GLOBAL = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: Constructors that self-seed from OS entropy when called bare.
_SEEDABLE_CTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
})


def _is_none_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _has_seed_argument(call: ast.Call) -> bool:
    """Whether the constructor call passes real seed material.

    A literal ``None`` does not count: ``random.Random(None)`` is
    entropy self-seeding written out loud.  Non-literal expressions do
    count -- they may be ``None`` at runtime, but flagging every
    seed-or-None parameter would outlaw the standard plumbing pattern.
    """
    if call.args:
        return not (len(call.args) == 1 and _is_none_literal(call.args[0]))
    for kw in call.keywords:
        if kw.arg in ("seed", "x"):
            return not _is_none_literal(kw.value)
        if kw.arg is None:
            return True
    return False


@register
class UnseededRngChecker(Checker):
    CODE = "RPR001"
    SUMMARY = "unseeded RNG: global random.* / np.random.* state or bare RNG constructors"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve_call(node)
            if name is None:
                continue
            if name == "random.SystemRandom":
                yield self.finding(
                    ctx, node,
                    "random.SystemRandom draws OS entropy and can never "
                    "be reproduced; construct random.Random(seed) instead",
                )
            elif name in _SEEDABLE_CTORS:
                if not _has_seed_argument(node):
                    yield self.finding(
                        ctx, node,
                        f"{name}() with no seed self-seeds from OS entropy; "
                        "pass an explicit seed so runs are reproducible",
                    )
            elif name.startswith("random."):
                fn = name.removeprefix("random.")
                if fn in _RANDOM_GLOBAL_FNS:
                    yield self.finding(
                        ctx, node,
                        f"random.{fn}() uses the process-global RNG; thread "
                        "a seeded random.Random instance through instead",
                    )
            elif name.startswith("numpy.random."):
                attr = name.removeprefix("numpy.random.")
                if "." not in attr and attr not in _NUMPY_NON_GLOBAL:
                    yield self.finding(
                        ctx, node,
                        f"numpy.random.{attr}() uses NumPy's legacy global "
                        "state; use numpy.random.default_rng(seed) and call "
                        "methods on the returned Generator",
                    )
