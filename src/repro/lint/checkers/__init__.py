"""Built-in checker plugins.

Importing this package registers every shipped checker; the registry
in :mod:`repro.lint.base` does it lazily so the data model can be
imported without side effects.
"""

from __future__ import annotations

from .rpr001_unseeded_rng import UnseededRngChecker
from .rpr002_hash_id import HashIdKeyChecker
from .rpr003_set_iteration import SetIterationChecker
from .rpr004_wallclock import WallClockChecker
from .rpr005_pool_closures import PoolClosureChecker
from .rpr006_mutable_defaults import MutableDefaultChecker
from .rpr007_scalar_loops import ScalarLoopChecker
from .rpr101_engine_parity import EngineParityChecker
from .rpr102_dtype_width import DtypeWidthChecker
from .rpr103_cachekey_taint import CacheKeyTaintChecker
from .rpr104_observer_writes import ObserverWriteChecker
from .rpr105_relaxed_rng import RelaxedRngChecker

__all__ = [
    "UnseededRngChecker",
    "HashIdKeyChecker",
    "SetIterationChecker",
    "WallClockChecker",
    "PoolClosureChecker",
    "MutableDefaultChecker",
    "ScalarLoopChecker",
    "EngineParityChecker",
    "DtypeWidthChecker",
    "CacheKeyTaintChecker",
    "ObserverWriteChecker",
    "RelaxedRngChecker",
]
