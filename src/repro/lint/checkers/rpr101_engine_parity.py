"""RPR101: engine-parity drift and cache-key policy for sim params.

The repo carries three engines that must stay bit-for-bit
interchangeable (``simulation/engine.py``, ``simulation/fastpath.py``,
``accel/sim.py``) and a content-addressed result cache whose key folds
in :class:`~repro.simulation.config.SimulationParams`.  Both contracts
break *silently* when a field is added:

* a knob consumed by two engines but not the third makes the
  conformance matrix compare two configurations that differ -- the
  differential tests then pass for the wrong reason or fail late;
* a knob with no explicit cache-key policy either poisons the key
  space (engine-selection fields must share entries) or, worse, is
  excluded by a stray ``pop`` nobody reviews.

This pass checks, over the whole program:

1. **Consumption parity** -- every ``SimulationParams`` field must be
   read by each engine module, where "read by" closes over the
   project call graph (a field consumed in a helper the engine calls
   counts) and over ``SimulationParams`` properties (reading
   ``horizon`` counts as reading ``warmup_cycles`` and
   ``measure_cycles``).  Fields consumed through shared pre-engine
   state (``Simulator.__init__``) are waived at their definition line
   with a justification naming that path.
2. **Cache-key policy** -- the set of fields excluded from
   :func:`repro.exec.cache.cache_key` must be declared once, in
   ``CACHE_KEY_EXCLUDED_FIELDS`` next to the dataclass; literal
   ``payload.pop("...")`` exclusions in the cache module must match
   the declaration, and every declared name must be a real field.
3. **Result coverage** -- every ``SimResult`` field that participates
   in equality must be set by ``from_stats``'s constructor call (or
   carry ``field(compare=False)`` like ``metrics``), so a new output
   column cannot silently keep its default in all three engines.
4. **Side-channel stripping** -- every ``SimResult`` field declared
   ``compare=False`` (a side channel like ``metrics``,
   ``latency_hist`` or ``flow_stats``) must be ``pop``-ed by a string
   literal in ``core_dict``, so side channels can never leak into
   cache entries or golden snapshots and silently change the on-disk
   byte layout.

Anchor modules are located by dotted suffix; when any anchor is
missing (linting a partial tree or unrelated project) the pass is
silent.
"""

from __future__ import annotations

from typing import Iterator

from ..base import ProjectChecker, register_project
from ..findings import Finding
from ..graph import ModuleSummary, ProjectGraph

#: Dotted suffixes of the three engine modules, reference first.
ENGINE_MODULES = ("simulation.engine", "simulation.fastpath", "accel.sim")
CONFIG_MODULE = "simulation.config"
STATS_MODULE = "simulation.stats"
CACHE_MODULE = "exec.cache"
PARAMS_CLASS = "SimulationParams"
RESULT_CLASS = "SimResult"
#: The single source of truth for cache-key exclusions.
EXCLUSION_CONSTANT = "CACHE_KEY_EXCLUDED_FIELDS"


@register_project
class EngineParityChecker(ProjectChecker):
    CODE = "RPR101"
    SUMMARY = (
        "SimulationParams/SimResult fields drifting out of an engine "
        "or lacking an explicit cache-key policy"
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        config = project.find_module(CONFIG_MODULE)
        if config is None or PARAMS_CLASS not in config.classes:
            return
        yield from self._check_parity(project, config)
        yield from self._check_cache_policy(project, config)
        yield from self._check_result_coverage(project)

    # -- 1. consumption parity ----------------------------------------

    def _engine_reads(
        self, project: ProjectGraph, engine: ModuleSummary,
        properties: dict[str, frozenset[str]],
    ) -> frozenset[str]:
        """Call-graph-closed attribute reads, properties expanded."""
        reads = set(project.read_closure(engine))
        # A property read counts as reading the fields the property
        # reads (one fixpoint pass; properties may chain).
        changed = True
        while changed:
            changed = False
            for name, expansion in properties.items():
                if name in reads and not expansion <= reads:
                    reads.update(expansion)
                    changed = True
        return frozenset(reads)

    def _check_parity(
        self, project: ProjectGraph, config: ModuleSummary
    ) -> Iterator[Finding]:
        engines: list[tuple[str, ModuleSummary]] = []
        for suffix in ENGINE_MODULES:
            summary = project.find_module(suffix)
            if summary is None:
                return  # partial tree: parity cannot be assessed
            engines.append((suffix, summary))
        properties = {
            name.rsplit(".", 1)[1]: fn.self_reads
            for name, fn in config.functions.items()
            if name.startswith(PARAMS_CLASS + ".")
        }
        read_sets = {
            suffix: self._engine_reads(project, summary, properties)
            for suffix, summary in engines
        }
        for field in config.classes[PARAMS_CLASS].fields:
            missing = [s for s, reads in read_sets.items()
                       if field.name not in reads]
            if not missing:
                continue
            consumed = [s for s in read_sets if s not in missing]
            if consumed:
                detail = (
                    f"consumed by {', '.join(consumed)} but never read "
                    f"(directly or through any call chain) by "
                    f"{', '.join(missing)}"
                )
            else:
                detail = "never read by any engine module"
            yield self.finding(
                config.path, field.lineno, field.col,
                f"{PARAMS_CLASS}.{field.name} is {detail}; all three "
                "engines must honor every knob to stay bit-for-bit "
                "interchangeable (waive here naming the shared state "
                "path if consumption is indirect)",
            )

    # -- 2. cache-key policy ------------------------------------------

    def _check_cache_policy(
        self, project: ProjectGraph, config: ModuleSummary
    ) -> Iterator[Finding]:
        field_names = {
            f.name for f in config.classes[PARAMS_CLASS].fields
        }
        declared = config.str_sets.get(EXCLUSION_CONSTANT)
        params_line = config.classes[PARAMS_CLASS].lineno
        cache = project.find_module(CACHE_MODULE)
        if declared is None:
            if cache is not None:
                yield self.finding(
                    config.path, params_line, 1,
                    f"{PARAMS_CLASS} has no {EXCLUSION_CONSTANT} "
                    "declaration: every field's cache-key policy "
                    "(in-key vs excluded) must be explicit and "
                    "machine-checked next to the dataclass",
                )
            return
        for name in declared:
            if name not in field_names:
                yield self.finding(
                    config.path, params_line, 1,
                    f"{EXCLUSION_CONSTANT} names {name!r}, which is not "
                    f"a {PARAMS_CLASS} field -- stale exclusions widen "
                    "the key space silently",
                )
        if cache is None:
            return
        for fq_name, fn in cache.functions.items():
            if "key" not in fn.name.lower():
                continue
            for call in fn.calls:
                if not call.target.endswith(".pop") or call.str_arg is None:
                    continue
                if call.str_arg in field_names and call.str_arg not in declared:
                    yield self.finding(
                        cache.path, call.lineno, call.col,
                        f"cache key drops {PARAMS_CLASS} field "
                        f"{call.str_arg!r} without a matching entry in "
                        f"{EXCLUSION_CONSTANT}: exclusions hand-rolled "
                        "in the cache layer drift from the declared "
                        "policy",
                    )

    # -- 3. result coverage -------------------------------------------

    def _check_result_coverage(
        self, project: ProjectGraph
    ) -> Iterator[Finding]:
        stats = project.find_module(STATS_MODULE)
        if stats is None or RESULT_CLASS not in stats.classes:
            return
        constructed: set[str] = set()
        for fn in stats.functions.values():
            for call in fn.calls:
                root = call.target.split(".")[0]
                if root in ("cls", RESULT_CLASS):
                    constructed.update(call.keywords)
        if not constructed:
            return  # construction is dynamic; nothing to pin
        for field in stats.classes[RESULT_CLASS].fields:
            if not field.compare or field.name in constructed:
                continue
            yield self.finding(
                stats.path, field.lineno, field.col,
                f"{RESULT_CLASS}.{field.name} participates in equality "
                "but is never passed by the from_stats constructor "
                "call, so every engine would silently ship the "
                "default; set it there or mark it "
                "field(compare=False) with an explicit policy",
            )
        # -- 4. side-channel stripping --------------------------------
        popped: set[str] = set()
        has_core_dict = False
        for fn in stats.functions.values():
            if fn.name != "core_dict":
                continue
            has_core_dict = True
            for call in fn.calls:
                if call.target.endswith(".pop") and call.str_arg is not None:
                    popped.add(call.str_arg)
        if not has_core_dict:
            return  # no canonical serializer to audit
        for field in stats.classes[RESULT_CLASS].fields:
            if field.compare or field.name in popped:
                continue
            yield self.finding(
                stats.path, field.lineno, field.col,
                f"{RESULT_CLASS}.{field.name} is compare=False (a side "
                "channel) but core_dict never pops it, so it would leak "
                "into cache entries and golden snapshots and change "
                "their byte layout; add a literal pop there",
            )
