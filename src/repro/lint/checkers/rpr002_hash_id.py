"""RPR002: builtin ``hash()`` / ``id()`` flowing into keys or seeds.

``hash(str)`` is salted per process (``PYTHONHASHSEED``) and ``id()``
is an address -- both vary run to run.  Folding either into a cache
key, a seed derivation or a sort key makes results differ across
processes while looking perfectly deterministic inside one.  This is
exactly the failure mode a content-addressed result cache cannot
tolerate: the same simulation point would be stored under a different
digest by every worker.

Flagged sinks for a ``hash(...)`` / ``id(...)`` value:

* subscript keys -- ``cache[hash(cfg)]``, ``memo[id(obj)] = ...``;
* keyword arguments named ``seed``, ``rng`` or ``key``;
* any argument to a callable whose name mentions seed/key/cache/
  digest/derive, or to dict-style ``.get`` / ``.setdefault`` /
  ``.pop``;
* assignment to a variable whose name mentions seed/key/digest.

A bare ``hash()`` / ``id()`` used for, say, logging is left alone.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..base import Checker, register
from ..context import FileContext
from ..findings import Finding

_SENSITIVE_CALL_RE = re.compile(r"(seed|key|cache|digest|derive)", re.IGNORECASE)
_SENSITIVE_NAME_RE = re.compile(r"(seed|key|digest)", re.IGNORECASE)
_DICT_METHODS = frozenset({"get", "setdefault", "pop"})
_SENSITIVE_KEYWORDS = frozenset({"seed", "rng", "key"})


def _callee_name(call: ast.Call) -> str:
    """Rightmost identifier of the callee (``a.b.make_key`` -> ``make_key``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register
class HashIdKeyChecker(Checker):
    CODE = "RPR002"
    SUMMARY = "builtin hash()/id() flowing into cache keys, seeds or sort keys"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("hash", "id")
                and ctx.is_builtin(node.func.id)
            ):
                continue
            sink = self._sink_description(ctx, node)
            if sink is not None:
                yield self.finding(
                    ctx, node,
                    f"{node.func.id}() varies between processes "
                    f"(PYTHONHASHSEED / addresses) but flows into {sink}; "
                    "use a content digest (e.g. hashlib over a canonical "
                    "serialization) or an explicit integer instead",
                )

    def _sink_description(self, ctx: FileContext, call: ast.Call) -> str | None:
        """How the call's value reaches key/seed material, or None."""
        previous: ast.AST = call
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, ast.keyword):
                if ancestor.arg in _SENSITIVE_KEYWORDS:
                    return f"keyword argument {ancestor.arg}="
            elif isinstance(ancestor, ast.Call):
                # Only when we arrived via the arguments, not the callee.
                if previous is ancestor.func:
                    return None
                name = _callee_name(ancestor)
                if _SENSITIVE_CALL_RE.search(name) or name in _DICT_METHODS:
                    return f"a call to {name}()"
            elif isinstance(ancestor, ast.Subscript):
                if previous is not ancestor.value:
                    return "a subscript key"
            elif isinstance(ancestor, ast.Assign):
                for target in ancestor.targets:
                    if isinstance(target, ast.Name) and _SENSITIVE_NAME_RE.search(
                        target.id
                    ):
                        return f"variable {target.id!r}"
                return None
            elif isinstance(ancestor, ast.stmt):
                return None
            previous = ancestor
        return None
