"""RPR102: numpy integer width hazards (int32 overflow, uint64 mixing).

The kernel layer stores CSR indices as ``int32`` and bitsets as packed
``uint64`` words -- deliberate, cache-friendly choices that become
silent correctness bugs at the million-terminal scale the extreme-
scale roadmap targets:

* ``int32 * int32`` (and ``+``) wraps at ``2**31`` with **no warning**
  from numpy -- flattened pair keys (``source * num_dests + dest``)
  cross that line near ~46k sources;
* storing an unbounded Python count (``len(values)``, a running
  total) into an ``int32`` array truncates the same way;
* ``cumsum`` over an ``int32`` array accumulates in ``int32``;
* mixing ``uint64`` words with *signed* operands silently promotes
  the whole expression to ``float64`` (or raises, for shifts) --
  numpy's classic uint64 trap.

The checker tracks dtypes locally: explicit ``dtype=`` keywords,
``astype(...)``, scalar constructors (``np.int32(...)``), ``NDArray``
parameter annotations, and propagation through arithmetic, unary ops
and subscripts.  Anything it cannot prove is left alone -- scoped to
files that import numpy, it reports only arithmetic whose operand
widths it actually derived, so a finding is worth reading.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Checker, register
from ..context import FileContext
from ..findings import Finding

#: Canonical numpy array constructors whose ``dtype=`` kwarg names the
#: element type of the result.
_CONSTRUCTORS = frozenset({
    "zeros", "ones", "full", "empty", "arange", "fromiter", "asarray",
    "array", "frombuffer", "fromstring", "linspace", "ascontiguousarray",
})

#: numpy functions whose result keeps the dtype of their first
#: positional argument (the idioms the packed CSR builders lean on).
_DTYPE_PRESERVING = frozenset({
    "repeat", "diff", "sort", "unique", "concatenate", "cumsum",
})

#: dtype spellings -> width class we reason about.
_DTYPE_NAMES = {
    "int32": "int32", "i4": "int32", "<i4": "int32",
    "int64": "int64", "i8": "int64", "<i8": "int64",
    "intp": "int64", "int_": "int64", "int": "int64", "long": "int64",
    "uint64": "uint64", "u8": "uint64", "<u8": "uint64",
    "int8": "small", "int16": "small", "uint8": "small",
    "uint16": "small", "uint32": "small",
}

_SIGNED = frozenset({"int32", "int64", "small"})

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod, ast.Pow)
_SHIFT_OPS = (ast.LShift, ast.RShift)


def _dtype_from_token(token: str) -> str | None:
    return _DTYPE_NAMES.get(token.split(".")[-1])


def _iter_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements in source order without descending into nested
    function scopes (each function body is analyzed with its own
    :class:`_Scope`).  Source order matters: dtype facts chain through
    assignments (``off = asarray(...); starts = repeat(off, ...)``),
    so a later binding must see the earlier one."""
    stack: list[ast.AST] = list(reversed(body))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


class _Scope:
    """Dtype facts for one function (or the module top level)."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.vars: dict[str, str] = {}

    # -- dtype of an expression, or None when unknown ------------------

    def dtype_of(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self.vars.get(node.id)
        if isinstance(node, ast.Subscript):
            # A slice/index of a typed array keeps the element type.
            return self.dtype_of(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.dtype_of(node.operand)
        if isinstance(node, ast.BinOp):
            left = self.dtype_of(node.left)
            right = self.dtype_of(node.right)
            if left == right:
                return left
            # array op python-int-literal keeps the array dtype
            # (numpy value-based scalar casting).
            if left is not None and self._is_int_literal(node.right):
                return left
            if right is not None and self._is_int_literal(node.left):
                return right
            return None
        if isinstance(node, ast.Call):
            return self._dtype_of_call(node)
        return None

    @staticmethod
    def _is_int_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, int)

    def _dtype_token(self, node: ast.expr) -> str | None:
        """The width class named by a dtype expression."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _DTYPE_NAMES.get(node.value)
        canonical = self.ctx.imports.resolve(node)
        if canonical is not None and canonical.split(".")[0] in (
            "numpy", "np"
        ):
            return _dtype_from_token(canonical)
        if isinstance(node, ast.Name) and node.id == "int":
            return "int64"
        if isinstance(node, ast.Attribute):
            return _dtype_from_token(node.attr)
        return None

    def _dtype_of_call(self, node: ast.Call) -> str | None:
        # <expr>.astype(D)
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            if node.args:
                return self._dtype_token(node.args[0])
            for kw in node.keywords:
                if kw.arg == "dtype":
                    return self._dtype_token(kw.value)
            return None
        canonical = self.ctx.imports.resolve(node.func)
        if canonical is None:
            return None
        parts = canonical.split(".")
        if parts[0] not in ("numpy", "np"):
            return None
        # Scalar constructors: np.int32(x), np.uint64(1).
        scalar = _DTYPE_NAMES.get(parts[-1])
        if scalar is not None:
            return scalar
        if parts[-1] in _CONSTRUCTORS:
            for kw in node.keywords:
                if kw.arg == "dtype":
                    return self._dtype_token(kw.value)
            return None
        if parts[-1] in _DTYPE_PRESERVING:
            for kw in node.keywords:
                if kw.arg == "dtype":
                    return self._dtype_token(kw.value)
            if node.args:
                return self.dtype_of(node.args[0])
        return None

    # -- seeding -------------------------------------------------------

    def seed_params(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for arg in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs):
            if arg.annotation is None:
                continue
            text = ast.unparse(arg.annotation)
            if "NDArray" not in text and "ndarray" not in text:
                continue
            for token, width in _DTYPE_NAMES.items():
                if f"np.{token}" in text or f"numpy.{token}" in text:
                    self.vars[arg.arg] = width
                    break

    def seed_assignments(self, body: list[ast.stmt]) -> None:
        for stmt in _iter_scope(body):
            if isinstance(stmt, ast.Assign):
                value_dtype = self.dtype_of(stmt.value)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._bind(target.id, value_dtype)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.value is not None:
                    self._bind(stmt.target.id, self.dtype_of(stmt.value))

    def _bind(self, name: str, dtype: str | None) -> None:
        if dtype is None:
            # A later untyped rebind poisons the fact: drop it rather
            # than reason from a stale width.
            self.vars.pop(name, None)
        elif self.vars.get(name) not in (None, dtype):
            self.vars.pop(name, None)
        else:
            self.vars[name] = dtype


@register
class DtypeWidthChecker(Checker):
    CODE = "RPR102"
    SUMMARY = (
        "int32 index arithmetic that can overflow and uint64/signed "
        "mixing that silently promotes"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._imports_numpy(ctx):
            return
        module_scope = _Scope(ctx)
        module_scope.seed_assignments(list(ctx.tree.body))
        yield from self._check_body(ctx, module_scope, ctx.tree.body)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = _Scope(ctx)
                scope.vars.update(module_scope.vars)
                scope.seed_params(node)
                scope.seed_assignments(list(node.body))
                yield from self._check_body(ctx, scope, node.body)

    @staticmethod
    def _imports_numpy(ctx: FileContext) -> bool:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if any(a.name.split(".")[0] == "numpy" for a in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "numpy":
                    return True
        return False

    def _check_body(
        self, ctx: FileContext, scope: _Scope, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        for node in _iter_scope(body):
            if isinstance(node, ast.BinOp):
                yield from self._check_binop(ctx, scope, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, scope, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_store(ctx, scope, node)

    # -- rules ---------------------------------------------------------

    def _check_binop(
        self, ctx: FileContext, scope: _Scope, node: ast.BinOp
    ) -> Iterator[Finding]:
        left = scope.dtype_of(node.left)
        right = scope.dtype_of(node.right)
        # Rule A: int32 +/-/* int32 (or int literal) can overflow.
        if isinstance(node.op, (ast.Add, ast.Mult)):
            if left == "int32" and (
                right == "int32" or scope._is_int_literal(node.right)
            ) or right == "int32" and scope._is_int_literal(node.left):
                op = "*" if isinstance(node.op, ast.Mult) else "+"
                yield self.finding(
                    ctx, node,
                    f"int32 {op} int32 arithmetic wraps silently at "
                    "2**31 -- flattened keys and edge counts cross that "
                    "line near 10^6 terminals; widen with "
                    ".astype(np.int64) (or build as intp) before "
                    "arithmetic",
                )
                return
        # Rule B: uint64 mixed with a signed operand promotes to
        # float64 (arith) or raises (shifts).
        if isinstance(node.op, (*_ARITH_OPS, *_SHIFT_OPS, ast.BitAnd,
                                ast.BitOr, ast.BitXor)):
            pairs = ((left, node.right, right), (right, node.left, left))
            for this, other_node, other in pairs:
                if this != "uint64":
                    continue
                if other in _SIGNED:
                    yield self.finding(
                        ctx, node,
                        "uint64 mixed with a signed operand silently "
                        "promotes the expression to float64 (or raises "
                        "for shifts), corrupting packed bitset words; "
                        "wrap the operand in np.uint64(...) / "
                        ".astype(np.uint64)",
                    )
                    return
                if isinstance(node.op, _SHIFT_OPS) and scope._is_int_literal(
                    other_node
                ) and isinstance(other_node, ast.UnaryOp):
                    # A negative literal shift is always wrong; plain
                    # positive literals are fine (value-based casting).
                    yield self.finding(
                        ctx, node,
                        "negative shift amount against a uint64 operand",
                    )
                    return

    def _check_call(
        self, ctx: FileContext, scope: _Scope, node: ast.Call
    ) -> Iterator[Finding]:
        # Rule C: truncating cast of a product/accumulation.
        target: str | None = None
        operand: ast.expr | None = None
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            target = scope._dtype_token(node.args[0]) if node.args else None
            operand = node.func.value
        else:
            canonical = ctx.imports.resolve(node.func)
            if canonical is not None and canonical.split(".")[0] in (
                "numpy", "np"
            ) and _DTYPE_NAMES.get(canonical.split(".")[-1]) in (
                "int32", "small"
            ):
                target = _DTYPE_NAMES[canonical.split(".")[-1]]
                operand = node.args[0] if node.args else None
        if target in ("int32", "small") and operand is not None:
            if self._is_accumulation(operand):
                yield self.finding(
                    ctx, node,
                    "casting a product or accumulated sum down to "
                    f"{target} truncates silently once the value "
                    "exceeds the narrow range; cast the *inputs* down "
                    "only after proving the bound, or keep int64",
                )
                return
        # Rule E: cumsum over an int32 array accumulates in int32.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "cumsum":
            canonical = ctx.imports.resolve(node.func)
            arg: ast.expr | None
            if canonical is not None and canonical.split(".")[0] in (
                "numpy", "np"
            ):
                arg = node.args[0] if node.args else None
            else:
                arg = node.func.value
            has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
            if arg is not None and not has_dtype and scope.dtype_of(
                arg
            ) == "int32":
                yield self.finding(
                    ctx, node,
                    "cumsum over an int32 array accumulates in int32 "
                    "and wraps at 2**31 total; pass dtype=np.int64 (or "
                    "build the operand as intp)",
                )

    @staticmethod
    def _is_accumulation(node: ast.expr) -> bool:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            return True
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in ("sum", "cumsum", "prod", "cumprod"):
            return True
        return False

    def _check_store(
        self, ctx: FileContext, scope: _Scope,
        node: ast.Assign | ast.AugAssign,
    ) -> Iterator[Finding]:
        # Rule D: storing an unbounded Python count into an int32 slot.
        targets = node.targets if isinstance(node, ast.Assign) else [
            node.target
        ]
        value = node.value
        unbounded = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "len"
            and ctx.is_builtin("len")
        ) or (
            isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult)
            and scope.dtype_of(value) is None
        )
        if not unbounded:
            return
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            if scope.dtype_of(target.value) in ("int32", "small"):
                yield self.finding(
                    ctx, node,
                    "storing an unbounded Python count into an "
                    "int32 array truncates silently beyond 2**31 "
                    "(candidate tables reach that at ~10^6 terminals); "
                    "allocate the array as int64/intp",
                )
                return
