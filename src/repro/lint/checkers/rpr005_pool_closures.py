"""RPR005: lambdas / nested closures submitted to a process pool.

``ProcessPoolExecutor`` and ``multiprocessing`` pools pickle the task
callable into the worker.  Lambdas and functions defined inside other
functions do not pickle under the ``spawn`` start method (the default
on macOS and Windows, and the only safe one with threads), so code
that "works on my Linux box" under ``fork`` dies -- or worse, quietly
falls back to serial -- elsewhere.  The executor's contract in this
codebase is that every submitted callable is a module-level function.

Flagged: a lambda, a nested ``def``, or a ``functools.partial`` over
either, passed as the callable to ``.submit`` / ``.map`` / ``.imap``
/ ``.imap_unordered`` / ``.starmap`` / ``.apply_async`` / ``.apply``.
Module-level functions (including ``partial`` over them) pass clean,
as does the builtin ``map(lambda ...)`` (no attribute receiver, no
pickling).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Checker, register
from ..context import FileContext
from ..findings import Finding

_POOL_METHODS = frozenset({
    "submit", "map", "imap", "imap_unordered", "starmap", "starmap_async",
    "apply", "apply_async",
})


@register
class PoolClosureChecker(Checker):
    CODE = "RPR005"
    SUMMARY = "lambda or nested closure submitted to a process pool (unpicklable under spawn)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        nested = self._nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_METHODS
                and node.args
            ):
                continue
            candidate = node.args[0]
            problem = self._unpicklable(ctx, candidate, nested)
            if problem is not None:
                yield self.finding(
                    ctx, node,
                    f"{problem} passed to .{node.func.attr}() cannot be "
                    "pickled into a spawned worker process; hoist it to a "
                    "module-level function",
                )

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> frozenset[str]:
        """Names of functions defined inside other functions."""
        names: set[str] = set()
        outer: list[ast.FunctionDef | ast.AsyncFunctionDef] = [
            node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for fn in outer:
            for inner in ast.walk(fn):
                if inner is not fn and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    names.add(inner.name)
        return frozenset(names)

    def _unpicklable(
        self,
        ctx: FileContext,
        candidate: ast.expr,
        nested: frozenset[str],
    ) -> str | None:
        if isinstance(candidate, ast.Lambda):
            return "a lambda"
        if isinstance(candidate, ast.Name) and candidate.id in nested:
            return f"nested function {candidate.id}()"
        if isinstance(candidate, ast.Call):
            name = ctx.imports.resolve_call(candidate)
            callee = candidate.func
            is_partial = name == "functools.partial" or (
                isinstance(callee, ast.Name) and callee.id == "partial"
            )
            if is_partial and candidate.args:
                inner = self._unpicklable(ctx, candidate.args[0], nested)
                if inner is not None:
                    return f"functools.partial over {inner}"
        return None
