"""RPR105: relaxed-RNG results must never alias exact results.

``rng_mode="relaxed"`` (PR 8) trades the exact engines' bit-for-bit
contract for throughput: its results are only *statistically*
equivalent (``tests/test_relaxed_rng_equivalence.py``).  Every sink
that treats two results as interchangeable must therefore see the
mode.  The cache is the dangerous one -- a relaxed result served from
(or overwriting) an exact entry corrupts golden numbers silently, and
the exclusion machinery RPR101 checks for *consistency* would happily
bless a consistently-wrong policy that declares ``rng_mode`` excluded.

This pass pins the policy itself, in three legs:

1. **Declared exclusion** -- ``rng_mode`` appearing in
   ``CACHE_KEY_EXCLUDED_FIELDS`` is a finding: unlike the engine-
   selection knobs (whose results are identical by contract), relaxed
   results differ, so the mode must stay in the key.
2. **Hand-rolled drop** -- any ``payload.pop("rng_mode")`` inside a
   key-deriving function of the cache module is a finding, declared or
   not.
3. **Unrecorded piecemeal key** -- a key-deriving function in an
   ``exec`` module that assembles its payload from individual
   ``params.<field>`` reads (no wholesale ``asdict``/``to_dict``
   serialization) without reading ``rng_mode`` leaves the mode
   unrecorded -- the exact failure shape for golden-pin comparisons
   built on such keys.

The pass is silent on trees whose ``SimulationParams`` has no
``rng_mode`` field (pre-relaxed checkouts, unrelated projects).
"""

from __future__ import annotations

from typing import Iterator

from ..base import ProjectChecker, register_project
from ..findings import Finding
from ..graph import ModuleSummary, ProjectGraph

CONFIG_MODULE = "simulation.config"
CACHE_MODULE = "exec.cache"
PARAMS_CLASS = "SimulationParams"
EXCLUSION_CONSTANT = "CACHE_KEY_EXCLUDED_FIELDS"
MODE_FIELD = "rng_mode"

#: Call-target suffixes that serialize a params object wholesale (every
#: field lands in the payload, so the mode is recorded by construction).
_WHOLESALE_SUFFIXES = ("asdict", "to_dict", "core_dict", "_asdict")


def _is_key_function(name: str) -> bool:
    return "key" in name.lower()


def _serializes_wholesale(fn) -> bool:  # type: ignore[no-untyped-def]
    return any(
        call.target.rsplit(".", 1)[-1] in _WHOLESALE_SUFFIXES
        for call in fn.calls
    )


@register_project
class RelaxedRngChecker(ProjectChecker):
    CODE = "RPR105"
    SUMMARY = (
        "relaxed rng_mode results reaching a cache key or pinned "
        "comparison without the mode recorded"
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        config = project.find_module(CONFIG_MODULE)
        if config is None or PARAMS_CLASS not in config.classes:
            return
        fields = {f.name for f in config.classes[PARAMS_CLASS].fields}
        if MODE_FIELD not in fields:
            return  # pre-relaxed tree: nothing to guard
        yield from self._check_declared_exclusion(config)
        cache = project.find_module(CACHE_MODULE)
        if cache is None:
            return
        yield from self._check_key_functions(cache, fields)

    # -- 1. declared exclusion ----------------------------------------

    def _check_declared_exclusion(
        self, config: ModuleSummary
    ) -> Iterator[Finding]:
        declared = config.str_sets.get(EXCLUSION_CONSTANT)
        if declared is not None and MODE_FIELD in declared:
            yield self.finding(
                config.path, config.classes[PARAMS_CLASS].lineno, 1,
                f"{EXCLUSION_CONSTANT} excludes {MODE_FIELD!r} from the "
                "cache key: relaxed-mode results are only statistically "
                "equivalent to exact ones, so sharing cache entries "
                "across modes serves wrong numbers silently -- the mode "
                "must stay in the key",
            )

    # -- 2./3. key-deriving functions in the cache layer ---------------

    def _check_key_functions(
        self, cache: ModuleSummary, fields: set[str]
    ) -> Iterator[Finding]:
        other_fields = fields - {MODE_FIELD}
        for fn in cache.functions.values():
            if not _is_key_function(fn.name):
                continue
            for call in fn.calls:
                if (
                    call.target.endswith(".pop")
                    and call.str_arg == MODE_FIELD
                ):
                    yield self.finding(
                        cache.path, call.lineno, call.col,
                        f"cache key drops {MODE_FIELD!r} from its "
                        "payload: relaxed and exact runs would collide "
                        "on one entry even though their results differ "
                        "-- this field may never be popped",
                    )
            if _serializes_wholesale(fn):
                continue
            reads = fn.attr_reads & other_fields
            if reads and MODE_FIELD not in fn.attr_reads:
                yield self.finding(
                    cache.path, fn.lineno, fn.col,
                    f"{fn.name}() assembles its key from individual "
                    f"params fields ({', '.join(sorted(reads))}) "
                    f"without recording {MODE_FIELD!r}; a hand-rolled "
                    "key that omits the mode lets relaxed results "
                    "alias exact ones -- read the field or serialize "
                    "the params wholesale",
                )
