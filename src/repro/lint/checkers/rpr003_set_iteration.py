"""RPR003: ``set`` iteration feeding order-sensitive computation.

Set iteration order is implementation-defined.  Iterating a set is
fine when the loop computes an order-independent reduction (membership
scans, ``any``/``all``/``sum``, building another set or dict), but it
is a reproducibility bug the moment the order leaks into results:

* building a **list or tuple** (the classic ``[f(x) for x in s]``) --
  downstream indexing, zipping or RNG-driven selection now depends on
  hash-table layout;
* a loop body that **draws from an RNG**, **appends/yields** into
  ordered output, or **serializes** (``write``/``dump``/``print``) --
  the emitted stream varies between interpreters and insertion
  histories.

The fix is always the same: iterate ``sorted(the_set)`` (or keep a
list in the first place).  ``sorted`` consumes the set before any
order-sensitive work happens, so wrapped iterations pass clean.

Detection is intraprocedural and name-based: a name counts as a set
if it is assigned from a set constructor/literal/comprehension or
set-algebra method, or annotated ``set[...]``; containers of sets
(``list[set[int]]`` parameters, ``[set(...) for ...]`` builds) make
their subscripts count too.  That is deliberately narrow -- it will
miss sets smuggled through other calls, but it never cries wolf on
ordinary list iteration, which keeps the gate adoptable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Checker, register
from ..context import FileContext
from ..findings import Finding

#: Builtins whose result does not depend on input order.
_ORDER_FREE_REDUCERS = frozenset({
    "any", "all", "sum", "min", "max", "len", "set", "frozenset",
    "sorted", "dict",
})

#: Method names that produce a new set from a set receiver.
_SET_ALGEBRA = frozenset({
    "intersection", "union", "difference", "symmetric_difference", "copy",
})

#: Attribute calls inside a loop body that make its order observable.
_ORDERED_MUTATORS = frozenset({"append", "extend", "insert"})
_SERIALIZERS = frozenset({"write", "writelines", "dump", "dumps"})
_RNG_DRAWS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits",
})


def _is_set_annotation(ann: ast.expr | None) -> bool:
    """``set[...]`` / ``Set[...]`` / bare ``set``."""
    if ann is None:
        return False
    if isinstance(ann, ast.Subscript):
        ann = ann.value
    return (isinstance(ann, ast.Name) and ann.id in ("set", "Set", "AbstractSet",
                                                     "MutableSet", "FrozenSet",
                                                     "frozenset")) or (
        isinstance(ann, ast.Attribute) and ann.attr in ("Set", "AbstractSet",
                                                        "MutableSet", "FrozenSet")
    )


def _is_container_of_sets_annotation(ann: ast.expr | None) -> bool:
    """``list[set[int]]`` / ``Sequence[set[int]]`` and friends."""
    if not isinstance(ann, ast.Subscript):
        return False
    inner = ann.slice
    if isinstance(inner, ast.Tuple):
        return any(_is_set_annotation(elt) for elt in inner.elts)
    return _is_set_annotation(inner)


class _SetTracker:
    """Which names in one scope are sets / containers of sets."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.container_names: set[str] = set()

    def observe(self, node: ast.AST) -> None:
        if isinstance(node, ast.arg):
            if _is_set_annotation(node.annotation):
                self.set_names.add(node.arg)
            elif _is_container_of_sets_annotation(node.annotation):
                self.container_names.add(node.arg)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation):
                self.set_names.add(node.target.id)
            elif _is_container_of_sets_annotation(node.annotation):
                self.container_names.add(node.target.id)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if self.is_set_expr(node.value):
                    self.set_names.add(target.id)
                elif self._builds_container_of_sets(node.value):
                    self.container_names.add(target.id)
                else:
                    self.set_names.discard(target.id)
                    self.container_names.discard(target.id)

    def is_set_expr(self, node: ast.expr) -> bool:
        """Whether ``node`` syntactically denotes a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Subscript):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id in self.container_names
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_ALGEBRA:
                return self.is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) and self.is_set_expr(node.right)
        return False

    def _builds_container_of_sets(self, node: ast.expr) -> bool:
        if isinstance(node, ast.ListComp):
            return self.is_set_expr(node.elt)
        if isinstance(node, (ast.List, ast.Tuple)):
            return bool(node.elts) and all(
                self.is_set_expr(elt) for elt in node.elts
            )
        return False


def _loop_order_sink(body: list[ast.stmt]) -> str | None:
    """Why a ``for`` body is order-sensitive, or None if it is not."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields values in iteration order"
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr in _ORDERED_MUTATORS:
                        return f"accumulates with .{func.attr}()"
                    if func.attr in _SERIALIZERS:
                        return f"serializes with .{func.attr}()"
                    if func.attr in _RNG_DRAWS:
                        return f"draws from an RNG (.{func.attr}())"
                elif isinstance(func, ast.Name) and func.id == "print":
                    return "prints in iteration order"
    return None


@register
class SetIterationChecker(Checker):
    CODE = "RPR003"
    SUMMARY = "set iteration feeding RNG draws, ordered accumulation or serialization"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(
            node for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(ctx, scope)

    def _check_scope(self, ctx: FileContext, scope: ast.AST) -> Iterator[Finding]:
        tracker = _SetTracker()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                tracker.observe(arg)
            body: list[ast.stmt] = scope.body
        else:
            body = scope.body  # type: ignore[attr-defined]
        for node in self._walk_scope(body):
            tracker.observe(node)
            if isinstance(node, ast.For) and tracker.is_set_expr(node.iter):
                sink = _loop_order_sink(node.body)
                if sink is not None:
                    yield self.finding(
                        ctx, node,
                        "iteration over a set in implementation-defined "
                        f"order {sink}; iterate sorted(...) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                yield from self._check_comprehension(ctx, tracker, node)

    def _check_comprehension(
        self,
        ctx: FileContext,
        tracker: _SetTracker,
        node: ast.ListComp | ast.GeneratorExp,
    ) -> Iterator[Finding]:
        if not any(
            tracker.is_set_expr(gen.iter) for gen in node.generators
        ):
            return
        if isinstance(node, ast.GeneratorExp):
            parent = ctx.parent(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_FREE_REDUCERS
                and ctx.is_builtin(parent.func.id)
            ):
                return
            # ``x in (f(y) for y in s)`` is an any()-style reduction:
            # membership does not observe iteration order.
            if isinstance(parent, ast.Compare) and all(
                isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops
            ):
                return
        kind = "list" if isinstance(node, ast.ListComp) else "generator"
        yield self.finding(
            ctx, node,
            f"{kind} comprehension over a set captures implementation-"
            "defined iteration order in ordered output; iterate "
            "sorted(...) instead",
        )

    @staticmethod
    def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested functions
        (each function scope is analysed with its own tracker)."""
        stack: list[ast.AST] = list(reversed(body))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(reversed(list(ast.iter_child_nodes(node))))
