"""Whole-program model: per-module summaries and the project call graph.

PR 2's checkers see one file at a time, which is exactly why they
cannot express this repository's hardest invariants -- "every engine
consumes every knob", "nothing impure reaches the cache key through
*any* call chain".  This module builds the cross-module view those
passes run on:

* :class:`ModuleSummary` -- one JSON-serializable digest of a parsed
  module: functions with their call sites / attribute reads / foreign
  writes, classes with their (dataclass) fields, canonicalized
  imports, string-set constants and suppression comments.  Summaries
  are what the incremental cache (:mod:`repro.lint.cache`) persists,
  keyed by content hash, so re-runs only re-parse edited files.
* :class:`ProjectGraph` -- the summaries of every linted file plus a
  resolved call graph over them: edges between project functions
  (``module.Class.method`` qualnames) and canonical external callee
  names (``time.time``, ``numpy.zeros``) for the taint engine.

Resolution is deliberately conservative: a call we cannot attribute
statically (a dynamic dispatch, a callable in a variable) simply adds
no edge.  Project passes are therefore under-approximate -- they can
miss, never hallucinate, which is the right default for a CI gate.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Any, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "CallSite",
    "WriteSite",
    "FieldSummary",
    "ClassSummary",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectGraph",
    "build_project",
    "module_name_for",
    "source_digest",
    "summarize_module",
]

#: Method names whose call on an object mutates it in place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "extend", "insert", "update",
    "setdefault", "pop", "popitem", "popleft", "remove", "discard",
    "clear", "sort", "reverse", "__setitem__",
})


def source_digest(source: str) -> str:
    """Content hash the incremental cache keys summaries by."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: str | Path) -> tuple[str, bool]:
    """Dotted module name for a file, by walking up ``__init__.py``s.

    Returns ``(name, is_package)``.  A file outside any package keeps
    its bare stem, so fixture files in a temp directory still get
    stable, collision-free names.
    """
    path = Path(path)
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:
        parts = [path.parent.name or path.stem]
    return ".".join(parts), is_package


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``target`` is the dotted path as written (``self.registry.counter``,
    ``np.zeros``, ``run_fast``); resolution to canonical or project
    names happens in :class:`ProjectGraph` where the import maps of
    every module are available.  ``str_arg`` records a literal first
    argument (``payload.pop("engine", ...)``) for policy checkers.
    """

    target: str
    lineno: int
    col: int
    keywords: tuple[str, ...] = ()
    str_arg: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target, "lineno": self.lineno, "col": self.col,
            "keywords": list(self.keywords), "str_arg": self.str_arg,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CallSite":
        return cls(
            target=data["target"], lineno=data["lineno"], col=data["col"],
            keywords=tuple(data["keywords"]), str_arg=data["str_arg"],
        )


@dataclass(frozen=True)
class WriteSite:
    """A store through a name: ``root.attr = ...``, ``root[k] = ...``
    or a mutating method call ``root.append(...)``.

    ``attr`` is None for subscript stores; ``via_call`` marks mutator
    method calls.  ``root`` is the leftmost name, after one level of
    local aliasing (``s = sim; s.x = 1`` reports root ``sim``).
    """

    root: str
    attr: str | None
    lineno: int
    col: int
    via_call: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "root": self.root, "attr": self.attr, "lineno": self.lineno,
            "col": self.col, "via_call": self.via_call,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WriteSite":
        return cls(
            root=data["root"], attr=data["attr"], lineno=data["lineno"],
            col=data["col"], via_call=data["via_call"],
        )


@dataclass(frozen=True)
class FieldSummary:
    """One annotated class attribute (a dataclass field, typically)."""

    name: str
    lineno: int
    col: int
    annotation: str
    #: ``field(..., compare=False)`` -- excluded from generated equality.
    compare: bool = True
    has_default: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "lineno": self.lineno, "col": self.col,
            "annotation": self.annotation, "compare": self.compare,
            "has_default": self.has_default,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FieldSummary":
        return cls(**data)


@dataclass(frozen=True)
class ClassSummary:
    """One class: bases as written, annotated fields, method names."""

    name: str
    lineno: int
    bases: tuple[str, ...]
    fields: tuple[FieldSummary, ...]
    methods: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "lineno": self.lineno,
            "bases": list(self.bases),
            "fields": [f.to_dict() for f in self.fields],
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClassSummary":
        return cls(
            name=data["name"], lineno=data["lineno"],
            bases=tuple(data["bases"]),
            fields=tuple(FieldSummary.from_dict(f) for f in data["fields"]),
            methods=tuple(data["methods"]),
        )


@dataclass(frozen=True)
class FunctionSummary:
    """One function or method, flattened for cross-module analysis."""

    name: str
    qualname: str
    lineno: int
    col: int
    params: tuple[str, ...]
    calls: tuple[CallSite, ...]
    #: Attribute names read anywhere in the body (any receiver).
    attr_reads: frozenset[str]
    #: Attribute names read specifically off ``self``.
    self_reads: frozenset[str]
    writes: tuple[WriteSite, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "qualname": self.qualname,
            "lineno": self.lineno, "col": self.col,
            "params": list(self.params),
            "calls": [c.to_dict() for c in self.calls],
            "attr_reads": sorted(self.attr_reads),
            "self_reads": sorted(self.self_reads),
            "writes": [w.to_dict() for w in self.writes],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FunctionSummary":
        return cls(
            name=data["name"], qualname=data["qualname"],
            lineno=data["lineno"], col=data["col"],
            params=tuple(data["params"]),
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
            attr_reads=frozenset(data["attr_reads"]),
            self_reads=frozenset(data["self_reads"]),
            writes=tuple(WriteSite.from_dict(w) for w in data["writes"]),
        )


@dataclass
class ModuleSummary:
    """Everything the project passes need to know about one file."""

    path: str
    module: str
    sha256: str
    is_package: bool
    imports: dict[str, str]
    functions: dict[str, FunctionSummary]
    classes: dict[str, ClassSummary]
    module_attr_reads: frozenset[str]
    #: Module-level ``NAME = {"a", "b"}`` string-collection constants.
    str_sets: dict[str, tuple[str, ...]]
    shadowed_builtins: frozenset[str] = field(default_factory=frozenset)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path, "module": self.module, "sha256": self.sha256,
            "is_package": self.is_package, "imports": dict(self.imports),
            "functions": {
                q: f.to_dict() for q, f in sorted(self.functions.items())
            },
            "classes": {
                q: c.to_dict() for q, c in sorted(self.classes.items())
            },
            "module_attr_reads": sorted(self.module_attr_reads),
            "str_sets": {k: list(v) for k, v in sorted(self.str_sets.items())},
            "shadowed_builtins": sorted(self.shadowed_builtins),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleSummary":
        return cls(
            path=data["path"], module=data["module"], sha256=data["sha256"],
            is_package=data["is_package"], imports=dict(data["imports"]),
            functions={
                q: FunctionSummary.from_dict(f)
                for q, f in data["functions"].items()
            },
            classes={
                q: ClassSummary.from_dict(c)
                for q, c in data["classes"].items()
            },
            module_attr_reads=frozenset(data["module_attr_reads"]),
            str_sets={k: tuple(v) for k, v in data["str_sets"].items()},
            shadowed_builtins=frozenset(data["shadowed_builtins"]),
        )


# ----------------------------------------------------------------------
# Summarization
# ----------------------------------------------------------------------

def _dotted_path(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains back to a dotted string (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve_import(
    module: str, is_package: bool, level: int, target: str
) -> str:
    """Absolute dotted path of a (possibly relative) import source."""
    if level == 0:
        return target
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: max(0, len(parts) - (level - 1))]
    base = ".".join(parts)
    if not target:
        return base
    return f"{base}.{target}" if base else target


def _import_table(
    tree: ast.Module, module: str, is_package: bool
) -> dict[str, str]:
    """Local name -> absolute canonical dotted path, relatives resolved."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            source = _resolve_import(
                module, is_package, node.level, node.module or ""
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{source}.{alias.name}" if source else alias.name
    return table


def _literal_str_set(node: ast.expr) -> tuple[str, ...] | None:
    """String elements of a set/frozenset/tuple/list display (or None)."""
    if isinstance(node, ast.Call):
        callee = node.func
        name = callee.id if isinstance(callee, ast.Name) else (
            callee.attr if isinstance(callee, ast.Attribute) else ""
        )
        if name != "frozenset" or len(node.args) != 1:
            return None
        node = node.args[0]
    if not isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        values.append(elt.value)
    return tuple(values)


def _class_fields(node: ast.ClassDef) -> tuple[FieldSummary, ...]:
    """Annotated class-body attributes (dataclass fields, typically)."""
    fields: list[FieldSummary] = []
    for stmt in node.body:
        if not (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ):
            continue
        annotation = ast.unparse(stmt.annotation)
        if annotation.startswith("ClassVar"):
            continue
        compare = True
        if isinstance(stmt.value, ast.Call):
            callee = stmt.value.func
            callee_name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else ""
            )
            if callee_name == "field":
                for kw in stmt.value.keywords:
                    if (
                        kw.arg == "compare"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    ):
                        compare = False
        fields.append(
            FieldSummary(
                name=stmt.target.id,
                lineno=stmt.lineno,
                col=stmt.col_offset + 1,
                annotation=annotation,
                compare=compare,
                has_default=stmt.value is not None,
            )
        )
    return tuple(fields)


def _write_root(node: ast.expr) -> tuple[str, str | None] | None:
    """(root name, attr-or-None-for-subscript) of a store target."""
    if isinstance(node, ast.Attribute):
        root = _dotted_path(node.value)
        if root is not None:
            return root.split(".")[0], node.attr
    elif isinstance(node, ast.Subscript):
        root = _dotted_path(node.value)
        if root is not None:
            return root.split(".")[0], None
    return None


def _function_summary(
    node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
) -> FunctionSummary:
    params = tuple(
        arg.arg
        for arg in (
            *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs,
            *((node.args.vararg,) if node.args.vararg else ()),
            *((node.args.kwarg,) if node.args.kwarg else ()),
        )
    )
    # One level of aliasing: locals assigned from a bare parameter name
    # count as that parameter for foreign-write attribution.
    aliases: dict[str, str] = {}
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Assign)
            and isinstance(sub.value, ast.Name)
            and sub.value.id in params
        ):
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    aliases[target.id] = sub.value.id

    calls: list[CallSite] = []
    attr_reads: set[str] = set()
    self_reads: set[str] = set()
    writes: list[WriteSite] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
            attr_reads.add(sub.attr)
            if isinstance(sub.value, ast.Name) and sub.value.id == "self":
                self_reads.add(sub.attr)
        elif isinstance(sub, ast.Call):
            target = _dotted_path(sub.func)
            if target is None:
                continue
            str_arg: str | None = None
            if sub.args and isinstance(sub.args[0], ast.Constant) and isinstance(
                sub.args[0].value, str
            ):
                str_arg = sub.args[0].value
            calls.append(
                CallSite(
                    target=target,
                    lineno=sub.lineno,
                    col=sub.col_offset + 1,
                    keywords=tuple(
                        kw.arg for kw in sub.keywords if kw.arg is not None
                    ),
                    str_arg=str_arg,
                )
            )
            tail = target.rsplit(".", 1)
            if len(tail) == 2 and tail[1] in MUTATOR_METHODS:
                root = aliases.get(
                    tail[0].split(".")[0], tail[0].split(".")[0]
                )
                writes.append(
                    WriteSite(
                        root=root, attr=tail[1],
                        lineno=sub.lineno, col=sub.col_offset + 1,
                        via_call=True,
                    )
                )
        elif isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets: Sequence[ast.expr]
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            else:
                targets = (sub.target,)
            for tgt in targets:
                hit = _write_root(tgt)
                if hit is None:
                    continue
                root, attr = hit
                writes.append(
                    WriteSite(
                        root=aliases.get(root, root), attr=attr,
                        lineno=tgt.lineno, col=tgt.col_offset + 1,
                    )
                )
    return FunctionSummary(
        name=node.name,
        qualname=qualname,
        lineno=node.lineno,
        col=node.col_offset + 1,
        params=params,
        calls=tuple(calls),
        attr_reads=frozenset(attr_reads),
        self_reads=frozenset(self_reads),
        writes=tuple(writes),
    )


class _ModuleVisitor(ast.NodeVisitor):
    """Collects functions (with class nesting) and classes."""

    def __init__(self) -> None:
        self.stack: list[str] = []
        self.functions: dict[str, FunctionSummary] = {}
        self.classes: dict[str, ClassSummary] = {}

    def _qual(self, name: str) -> str:
        return ".".join([*self.stack, name])

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _handle_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        qualname = self._qual(node.name)
        self.functions[qualname] = _function_summary(node, qualname)
        self.stack.append(node.name)
        for stmt in node.body:
            self.visit(stmt)
        self.stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qual(node.name)
        methods = tuple(
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        bases = tuple(
            base for base in (_dotted_path(b) for b in node.bases)
            if base is not None
        )
        self.classes[qualname] = ClassSummary(
            name=node.name,
            lineno=node.lineno,
            bases=bases,
            fields=_class_fields(node),
            methods=methods,
        )
        self.stack.append(node.name)
        for stmt in node.body:
            self.visit(stmt)
        self.stack.pop()


def summarize_module(
    source: str,
    path: str,
    module: str | None = None,
    tree: ast.Module | None = None,
) -> ModuleSummary:
    """Build a :class:`ModuleSummary` from one source buffer.

    Raises :class:`SyntaxError` for unparseable sources; the runner
    reports those as RPR000 findings and excludes the file from the
    project graph.  Pass ``tree`` to reuse an existing parse.
    """
    if tree is None:
        tree = ast.parse(source, filename=path)
    if module is None:
        module, is_package = module_name_for(path)
    else:
        is_package = PurePath(path).name == "__init__.py"
    visitor = _ModuleVisitor()
    visitor.visit(tree)
    module_attr_reads = {
        node.attr
        for node in ast.walk(tree)
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)
    }
    str_sets: dict[str, tuple[str, ...]] = {}
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            values = _literal_str_set(stmt.value)
            if values is not None:
                str_sets[stmt.targets[0].id] = values
    shadowed = {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef))
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            shadowed.add(node.id)
        elif isinstance(node, ast.arg):
            shadowed.add(node.arg)
    return ModuleSummary(
        path=path,
        module=module,
        sha256=source_digest(source),
        is_package=is_package,
        imports=_import_table(tree, module, is_package),
        functions=visitor.functions,
        classes=visitor.classes,
        module_attr_reads=frozenset(module_attr_reads),
        str_sets=str_sets,
        shadowed_builtins=frozenset(shadowed),
    )


# ----------------------------------------------------------------------
# The project graph
# ----------------------------------------------------------------------

class ProjectGraph:
    """All module summaries plus the resolved call graph over them.

    Project functions are addressed as ``<module>.<qualname>``
    (``repro.simulation.engine.Simulator.run``).  :meth:`callees`
    returns both the project-internal edges and the canonical names of
    external calls; :meth:`reachable` closes over internal edges only.
    """

    def __init__(self, modules: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        for summary in modules:
            self.modules[summary.module] = summary
        #: qualified function name -> (owning summary, function summary)
        self.functions: dict[str, tuple[ModuleSummary, FunctionSummary]] = {}
        for summary in self.modules.values():
            for qualname, fn in summary.functions.items():
                self.functions[f"{summary.module}.{qualname}"] = (summary, fn)
        self._internal: dict[str, frozenset[str]] = {}
        self._external: dict[str, tuple[tuple[str, CallSite], ...]] = {}
        self._resolve_all()

    # -- resolution ----------------------------------------------------

    def _project_target(self, canonical: str) -> str | None:
        """Map a canonical dotted path onto a project function, if any."""
        if canonical in self.functions:
            return canonical
        # A class constructor call: Module.Class -> Module.Class.__init__.
        init = f"{canonical}.__init__"
        if init in self.functions:
            return init
        return None

    def _resolve_call(
        self, summary: ModuleSummary, fn: FunctionSummary, call: CallSite
    ) -> tuple[str | None, str | None]:
        """(internal qualified name, canonical external name) for a call.

        Exactly one side is non-None for resolvable calls; both are
        None when the receiver is dynamic (a parameter, a loop
        variable) and no static attribution is possible.
        """
        parts = call.target.split(".")
        root = parts[0]
        if root in ("self", "cls"):
            owner = fn.qualname.rsplit(".", 2)
            # A method's qualname is Class.method (or Outer.Class.method);
            # self.x() resolves against the owning class when it has x.
            if len(parts) == 2 and len(owner) >= 2:
                cls_qual = fn.qualname.rsplit(".", 1)[0]
                cls = summary.classes.get(cls_qual)
                if cls is not None and parts[1] in cls.methods:
                    return f"{summary.module}.{cls_qual}.{parts[1]}", None
            return None, None
        if root in summary.imports:
            canonical = ".".join([summary.imports[root], *parts[1:]])
            internal = self._project_target(canonical)
            if internal is not None:
                return internal, None
            return None, canonical
        local = f"{summary.module}.{call.target}"
        internal = self._project_target(local)
        if internal is not None:
            return internal, None
        if len(parts) == 1 and root not in summary.shadowed_builtins:
            # A bare call to an unshadowed name: a builtin (hash, len).
            return None, root
        return None, None

    def _resolve_all(self) -> None:
        for qualified, (summary, fn) in self.functions.items():
            internal: set[str] = set()
            external: list[tuple[str, CallSite]] = []
            for call in fn.calls:
                target, canonical = self._resolve_call(summary, fn, call)
                if target is not None:
                    internal.add(target)
                elif canonical is not None:
                    external.append((canonical, call))
            self._internal[qualified] = frozenset(internal)
            self._external[qualified] = tuple(external)

    # -- queries -------------------------------------------------------

    def find_module(self, suffix: str) -> ModuleSummary | None:
        """The unique module whose dotted name ends with ``suffix``."""
        hits = [
            summary for name, summary in self.modules.items()
            if name == suffix or name.endswith("." + suffix)
        ]
        return hits[0] if len(hits) == 1 else None

    def module_functions(self, summary: ModuleSummary) -> list[str]:
        """Qualified names of every function defined in ``summary``."""
        return [f"{summary.module}.{q}" for q in summary.functions]

    def callees(self, qualified: str) -> frozenset[str]:
        """Project-internal callees of one function."""
        return self._internal.get(qualified, frozenset())

    def external_calls(
        self, qualified: str
    ) -> tuple[tuple[str, CallSite], ...]:
        """(canonical name, call site) pairs for external calls."""
        return self._external.get(qualified, ())

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Functions reachable from ``roots`` over internal edges
        (roots included, unknown roots ignored)."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callees(current) - seen)
        return seen

    def call_chain(self, start: str, end: str) -> list[str] | None:
        """Shortest internal-edge path ``start -> ... -> end`` (BFS),
        or None when ``end`` is unreachable."""
        if start not in self.functions:
            return None
        if start == end:
            return [start]
        parents: dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            nxt: list[str] = []
            for current in queue:
                for callee in sorted(self.callees(current)):
                    if callee in seen:
                        continue
                    parents[callee] = current
                    if callee == end:
                        chain = [end]
                        while chain[-1] != start:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    seen.add(callee)
                    nxt.append(callee)
            queue = nxt
        return None

    def read_closure(self, summary: ModuleSummary) -> frozenset[str]:
        """Attribute names read by a module's functions *and* every
        project function reachable from them -- the "what does this
        engine consume, including through helpers" question."""
        roots = self.module_functions(summary)
        reads: set[str] = set(summary.module_attr_reads)
        for qualified in self.reachable(roots):
            _, fn = self.functions[qualified]
            reads.update(fn.attr_reads)
        return frozenset(reads)

    def iter_functions(
        self,
    ) -> Iterator[tuple[str, ModuleSummary, FunctionSummary]]:
        """(qualified name, module, function) over the whole project."""
        for qualified, (summary, fn) in self.functions.items():
            yield qualified, summary, fn


def build_project(summaries: Iterable[ModuleSummary]) -> ProjectGraph:
    """Convenience constructor mirroring the dataclass-style API."""
    return ProjectGraph(summaries)
