"""Per-file analysis context shared by all checkers.

One :class:`FileContext` is built per source file: the parsed tree,
an import-resolution map, a child -> parent node index (the :mod:`ast`
module only links downward) and a few questions every checker asks
(enclosing function, whether a builtin name is shadowed, whether the
file lives on an execution/cache path).
"""

from __future__ import annotations

import ast
from pathlib import PurePath

from .imports import ImportMap

__all__ = ["FileContext"]


class FileContext:
    """Everything a checker may want to know about one file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.imports = ImportMap.from_tree(tree)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._shadowed = self._collect_shadowed_builtins(tree)

    @staticmethod
    def _collect_shadowed_builtins(tree: ast.Module) -> frozenset[str]:
        """Names rebound anywhere in the module (defs, assignments,
        imports, parameters) -- a call to one of these is not a call
        to the builtin of the same name."""
        bound: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                bound.add(node.id)
            elif isinstance(node, ast.arg):
                bound.add(node.arg)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
        return frozenset(bound)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        """Parents of ``node``, innermost first, module last."""
        chain: list[ast.AST] = []
        current = self._parents.get(node)
        while current is not None:
            chain.append(current)
            current = self._parents.get(current)
        return chain

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """Innermost function definition containing ``node``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def is_builtin(self, name: str) -> bool:
        """Whether ``name`` still refers to the Python builtin here."""
        return name not in self._shadowed

    def on_exec_path(self) -> bool:
        """Whether this file belongs to the execution/cache layer.

        RPR004 treats everything under an ``exec`` package as
        key/seed-sensitive: a wall-clock or entropy read there is one
        refactor away from a cache key.
        """
        return "exec" in PurePath(self.path).parts
