"""The :class:`Checker` plugin contracts and registries.

Two kinds of checker share the ``RPR###`` code space:

* a **file checker** (:class:`Checker`) sees one file's
  :class:`~repro.lint.context.FileContext` at a time -- the PR 2
  contract, unchanged;
* a **project checker** (:class:`ProjectChecker`) sees the whole
  :class:`~repro.lint.graph.ProjectGraph` once per run and may pin
  findings to any file in it -- the contract the RPR10x passes use
  for invariants that span modules.

Registration is explicit (the :func:`register` /
:func:`register_project` decorators) so importing
``repro.lint.checkers`` is the single side effect that populates both
registries, and tests can instantiate checkers individually without
it.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator, Type

from .context import FileContext
from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import ProjectGraph

__all__ = [
    "Checker",
    "ProjectChecker",
    "register",
    "register_project",
    "all_checkers",
    "all_project_checkers",
    "checker_codes",
]

_CODE_RE = re.compile(r"^RPR\d{3}$")
_REGISTRY: dict[str, Type["Checker"]] = {}
_PROJECT_REGISTRY: dict[str, Type["ProjectChecker"]] = {}


class Checker:
    """Base class for one reproducibility rule.

    Subclasses set ``CODE`` (``RPR`` + three digits), ``SUMMARY`` (one
    line, shown in ``--list`` style output and docs) and implement
    :meth:`check`.  :meth:`finding` builds a correctly-attributed
    :class:`Finding` from an AST node.
    """

    CODE: str = ""
    SUMMARY: str = ""
    SEVERITY: Severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file.  Must not mutate ``ctx``."""
        raise NotImplementedError
        yield  # pragma: no cover - generator typing aid

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` pinned to ``node``'s source location."""
        return Finding(
            file=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.CODE,
            severity=self.SEVERITY,
            message=message,
        )


class ProjectChecker:
    """Base class for one whole-program rule.

    Subclasses set ``CODE``/``SUMMARY`` exactly like :class:`Checker`
    and implement :meth:`check_project` over the resolved
    :class:`~repro.lint.graph.ProjectGraph`.  Findings may point at
    any file of the project; per-line ``# repro: allow-...`` waivers
    apply to them the same way they do to file-checker findings.
    """

    CODE: str = ""
    SUMMARY: str = ""
    SEVERITY: Severity = Severity.ERROR

    def check_project(self, project: "ProjectGraph") -> Iterator[Finding]:
        """Yield findings across the project.  Must not mutate it."""
        raise NotImplementedError
        yield  # pragma: no cover - generator typing aid

    def finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """A :class:`Finding` pinned to an explicit location."""
        return Finding(
            file=path,
            line=line,
            col=col,
            code=self.CODE,
            severity=self.SEVERITY,
            message=message,
        )


def _check_code(code: str, name: str) -> None:
    if not _CODE_RE.match(code):
        raise ValueError(f"bad checker code {code!r} on {name}")
    if code in _REGISTRY or code in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate checker code {code}")


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding ``cls`` to the file-checker registry.

    Codes must be unique (across both registries) and well-formed; a
    duplicate registration is a programming error worth failing
    loudly on.
    """
    if _REGISTRY.get(cls.CODE) is not cls:
        _check_code(cls.CODE, cls.__name__)
    _REGISTRY[cls.CODE] = cls
    return cls


def register_project(cls: Type[ProjectChecker]) -> Type[ProjectChecker]:
    """Class decorator adding ``cls`` to the project-checker registry."""
    if _PROJECT_REGISTRY.get(cls.CODE) is not cls:
        _check_code(cls.CODE, cls.__name__)
    _PROJECT_REGISTRY[cls.CODE] = cls
    return cls


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered file checker, by code."""
    from . import checkers  # noqa: F401  (import populates the registry)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def all_project_checkers() -> list[ProjectChecker]:
    """Fresh instances of every registered project checker, by code."""
    from . import checkers  # noqa: F401

    return [_PROJECT_REGISTRY[code]() for code in sorted(_PROJECT_REGISTRY)]


def checker_codes() -> list[str]:
    """Sorted registered codes across both registries (after loading
    the built-in set)."""
    from . import checkers  # noqa: F401

    return sorted([*_REGISTRY, *_PROJECT_REGISTRY])
