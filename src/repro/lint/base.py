"""The :class:`Checker` plugin contract and registry.

A checker is a class with a ``CODE``, a ``SUMMARY`` and a
:meth:`Checker.check` generator over one file's
:class:`~repro.lint.context.FileContext`.  Registration is explicit
(the :func:`register` decorator) so importing ``repro.lint.checkers``
is the single side effect that populates the registry, and tests can
instantiate checkers individually without it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Type

from .context import FileContext
from .findings import Finding, Severity

__all__ = ["Checker", "register", "all_checkers", "checker_codes"]

_CODE_RE = re.compile(r"^RPR\d{3}$")
_REGISTRY: dict[str, Type["Checker"]] = {}


class Checker:
    """Base class for one reproducibility rule.

    Subclasses set ``CODE`` (``RPR`` + three digits), ``SUMMARY`` (one
    line, shown in ``--list`` style output and docs) and implement
    :meth:`check`.  :meth:`finding` builds a correctly-attributed
    :class:`Finding` from an AST node.
    """

    CODE: str = ""
    SUMMARY: str = ""
    SEVERITY: Severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file.  Must not mutate ``ctx``."""
        raise NotImplementedError
        yield  # pragma: no cover - generator typing aid

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` pinned to ``node``'s source location."""
        return Finding(
            file=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.CODE,
            severity=self.SEVERITY,
            message=message,
        )


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding ``cls`` to the global registry.

    Codes must be unique and well-formed; a duplicate registration is
    a programming error worth failing loudly on.
    """
    if not _CODE_RE.match(cls.CODE):
        raise ValueError(f"bad checker code {cls.CODE!r} on {cls.__name__}")
    if cls.CODE in _REGISTRY and _REGISTRY[cls.CODE] is not cls:
        raise ValueError(f"duplicate checker code {cls.CODE}")
    _REGISTRY[cls.CODE] = cls
    return cls


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, ordered by code."""
    from . import checkers  # noqa: F401  (import populates the registry)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def checker_codes() -> list[str]:
    """Sorted registered codes (after loading the built-in set)."""
    from . import checkers  # noqa: F401

    return sorted(_REGISTRY)
