"""Content-hash-keyed incremental cache for per-file analysis.

Whole-program passes need a summary of *every* file on every run, but
almost no file changes between runs.  The cache stores, per source
file, the :class:`~repro.lint.graph.ModuleSummary`, the raw per-file
checker findings and the suppression table, keyed by the SHA-256 of
the file's content plus an analyzer version tag.  A run then re-parses
only edited files; everything else is deserialized.

The key is **pure**: content hash + analyzer version.  No mtimes, no
absolute-time stamps, no environment -- the same tree always produces
the same cache, which is the same property the repo's result cache
lives by (and which RPR103 now enforces transitively).

Entries for files that no longer exist are dropped on save.  A corrupt
or version-skewed cache file is treated as empty: correctness never
depends on the cache, only wall time does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from .findings import Finding, Severity
from .graph import ModuleSummary

__all__ = ["ANALYZER_SCHEMA", "analyzer_version", "CacheEntry", "AnalysisCache"]

#: Bump when the summary shape or finding semantics change; combined
#: with the registered checker codes into the version tag so adding a
#: checker invalidates stale per-file findings automatically.
ANALYZER_SCHEMA = 1

_CACHE_NAME = "lint-cache.json"


def analyzer_version() -> str:
    """Version tag mixed into every cache key."""
    from .base import checker_codes

    return f"{ANALYZER_SCHEMA}:" + ",".join(checker_codes())


def _finding_to_dict(finding: Finding) -> dict[str, Any]:
    return finding.to_dict()


def _finding_from_dict(data: Mapping[str, Any]) -> Finding:
    return Finding(
        file=data["file"],
        line=data["line"],
        col=data["col"],
        code=data["code"],
        severity=Severity(data["severity"]),
        message=data["message"],
    )


@dataclass
class CacheEntry:
    """Everything one run needs to know about one unchanged file."""

    sha256: str
    summary: ModuleSummary | None
    findings: list[Finding]
    #: line -> (sorted codes, justified) from the suppression scan.
    suppressions: dict[int, tuple[list[str], bool]]

    def to_dict(self) -> dict[str, Any]:
        return {
            "sha256": self.sha256,
            "summary": self.summary.to_dict() if self.summary else None,
            "findings": [_finding_to_dict(f) for f in self.findings],
            "suppressions": {
                str(line): [codes, justified]
                for line, (codes, justified) in self.suppressions.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CacheEntry":
        return cls(
            sha256=data["sha256"],
            summary=(
                ModuleSummary.from_dict(data["summary"])
                if data["summary"] else None
            ),
            findings=[_finding_from_dict(f) for f in data["findings"]],
            suppressions={
                int(line): (list(codes), bool(justified))
                for line, (codes, justified) in data["suppressions"].items()
            },
        )


class AnalysisCache:
    """Directory-backed per-file analysis store with reuse counters.

    ``reused`` / ``analyzed`` accumulate over one run and feed the
    ``--stats`` report (and the incremental-invalidation test: edit
    one file out of N, expect ``analyzed == 1``).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.version = analyzer_version()
        self.reused = 0
        self.analyzed = 0
        self._entries: dict[str, CacheEntry] = {}
        self._touched: set[str] = set()
        self._load()

    @property
    def path(self) -> Path:
        return self.directory / _CACHE_NAME

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            if payload.get("version") != self.version:
                return
            for key, raw in payload.get("entries", {}).items():
                self._entries[key] = CacheEntry.from_dict(raw)
        except (OSError, ValueError, KeyError, TypeError):
            self._entries = {}

    def get(self, path: str, sha256: str) -> CacheEntry | None:
        """The entry for ``path`` iff its content hash still matches."""
        entry = self._entries.get(path)
        if entry is None or entry.sha256 != sha256:
            self.analyzed += 1
            return None
        self.reused += 1
        self._touched.add(path)
        return entry

    def put(self, path: str, entry: CacheEntry) -> None:
        self._entries[path] = entry
        self._touched.add(path)

    def save(self) -> None:
        """Persist touched entries (best-effort; failures are silent).

        Entries never touched this run belonged to files outside the
        linted path set; they are kept, so alternating between linting
        subtrees does not thrash the cache.
        """
        payload = {
            "version": self.version,
            "entries": {
                key: entry.to_dict()
                for key, entry in sorted(self._entries.items())
            },
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(self.path)
        except OSError:  # pragma: no cover - disk-full etc.
            pass
