"""AST-based determinism and reproducibility linting (``repro.lint``).

Every figure in this reproduction is defined by an RNG stream: a
random folded Clos *is* the sequence of draws that wired it, a
Theorem 4.2 sweep *is* the seeds it averaged over, and the
``repro.exec`` result cache replays old numbers only as long as its
keys are pure functions of the inputs.  A single call into unseeded
global RNG state, a ``hash()`` of a string reaching a cache key, or a
``set`` iterated into an RNG-indexed list silently breaks all of that
-- usually without failing a single test on the machine it was
written on.

``repro.lint`` catches the whole class mechanically.  It parses each
source file once, runs a registry of :class:`~repro.lint.base.Checker`
plugins over the AST and reports :class:`~repro.lint.findings.Finding`
records.  Shipped checkers:

========  ==========================================================
code      hazard
========  ==========================================================
RPR001    unseeded RNG (``random.*`` module globals, legacy
          ``np.random.*``, ``default_rng()`` / ``Random()`` with no
          seed)
RPR002    builtin ``hash()`` / ``id()`` flowing into cache keys,
          seeds or sort keys (``PYTHONHASHSEED`` nondeterminism)
RPR003    ``set`` iteration feeding RNG draws, ordered accumulation
          or serialization
RPR004    wall-clock / entropy sources on cache-key or
          seed-derivation paths
RPR005    lambdas or nested closures submitted to a process pool
          (unpicklable under spawn)
RPR006    mutable default arguments in public API functions
========  ==========================================================

Since the whole-program layer landed, a second registry of *project*
checkers runs once over the resolved import/call graph
(:mod:`repro.lint.graph`) after the per-file phase:

========  ==========================================================
code      invariant
========  ==========================================================
RPR101    every ``SimulationParams``/``SimResult`` field consumed by
          all three engines and covered by an explicit cache-key
          policy
RPR102    numpy integer-width hazards (int32 overflow, uint64/signed
          mixing) in kernel code
RPR103    wall-clock/env/RNG impurity reaching cache-key or seed
          derivation through *any* call chain
RPR104    code reachable from observer hooks writing engine state or
          advancing RNG streams
RPR105    relaxed ``rng_mode`` results reaching a cache key or pinned
          comparison without the mode recorded
========  ==========================================================

Run it as ``python -m repro.lint src`` or ``repro-rfc lint``; exit
status is 1 whenever findings remain and 2 on internal errors.
Intentional uses are waived per line with
``# repro: allow-<code> -- <justification>``; ``--format sarif``
emits SARIF 2.1.0 for code scanning, ``--baseline`` subtracts known
findings and ``--cache-dir`` makes re-runs incremental.  See
``docs/LINTING.md`` for the full catalogue with examples.
"""

from __future__ import annotations

from .base import (
    Checker,
    ProjectChecker,
    all_checkers,
    all_project_checkers,
    checker_codes,
    register,
    register_project,
)
from .baseline import apply_baseline, load_baseline, write_baseline
from .cache import AnalysisCache, analyzer_version
from .context import FileContext
from .dataflow import TaintEngine, TaintHit
from .findings import Finding, Severity
from .graph import (
    ModuleSummary,
    ProjectGraph,
    build_project,
    summarize_module,
)
from .runner import (
    LintReport,
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
    main,
    run_analysis,
)
from .sarif import format_sarif, to_sarif
from .suppressions import parse_suppressions

__all__ = [
    "AnalysisCache",
    "Checker",
    "FileContext",
    "Finding",
    "LintReport",
    "ModuleSummary",
    "ProjectChecker",
    "ProjectGraph",
    "Severity",
    "TaintEngine",
    "TaintHit",
    "all_checkers",
    "all_project_checkers",
    "analyzer_version",
    "apply_baseline",
    "build_project",
    "checker_codes",
    "format_findings",
    "format_sarif",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "parse_suppressions",
    "register",
    "register_project",
    "run_analysis",
    "summarize_module",
    "to_sarif",
    "write_baseline",
]
