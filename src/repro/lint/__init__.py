"""AST-based determinism and reproducibility linting (``repro.lint``).

Every figure in this reproduction is defined by an RNG stream: a
random folded Clos *is* the sequence of draws that wired it, a
Theorem 4.2 sweep *is* the seeds it averaged over, and the
``repro.exec`` result cache replays old numbers only as long as its
keys are pure functions of the inputs.  A single call into unseeded
global RNG state, a ``hash()`` of a string reaching a cache key, or a
``set`` iterated into an RNG-indexed list silently breaks all of that
-- usually without failing a single test on the machine it was
written on.

``repro.lint`` catches the whole class mechanically.  It parses each
source file once, runs a registry of :class:`~repro.lint.base.Checker`
plugins over the AST and reports :class:`~repro.lint.findings.Finding`
records.  Shipped checkers:

========  ==========================================================
code      hazard
========  ==========================================================
RPR001    unseeded RNG (``random.*`` module globals, legacy
          ``np.random.*``, ``default_rng()`` / ``Random()`` with no
          seed)
RPR002    builtin ``hash()`` / ``id()`` flowing into cache keys,
          seeds or sort keys (``PYTHONHASHSEED`` nondeterminism)
RPR003    ``set`` iteration feeding RNG draws, ordered accumulation
          or serialization
RPR004    wall-clock / entropy sources on cache-key or
          seed-derivation paths
RPR005    lambdas or nested closures submitted to a process pool
          (unpicklable under spawn)
RPR006    mutable default arguments in public API functions
========  ==========================================================

Run it as ``python -m repro.lint src`` or ``repro-rfc lint``; exit
status is non-zero whenever findings remain.  Intentional uses are
waived per line with ``# repro: allow-<code> -- <justification>``.
See ``docs/LINTING.md`` for the full catalogue with examples.
"""

from __future__ import annotations

from .base import Checker, all_checkers, checker_codes, register
from .context import FileContext
from .findings import Finding, Severity
from .runner import (
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
    main,
)
from .suppressions import parse_suppressions

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "Severity",
    "all_checkers",
    "checker_codes",
    "format_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "parse_suppressions",
    "register",
]
