"""Finding baselines: ratchet new code clean without a big-bang fixup.

A baseline file records the findings a team has consciously deferred.
``--baseline lint-baseline.json`` subtracts them from a run, so CI
fails only on *new* findings; ``--write-baseline`` regenerates the
file after a triage pass.  The workflow is the standard ratchet:
check the baseline in, keep it shrinking, never let it grow.

Fingerprints are ``(relative posix path, code, message)`` -- stable
across machines (no absolute paths) and across unrelated edits in the
same file (no line numbers: a finding that merely moves stays
baselined, a finding whose message changes is new).  The file is
sorted JSON, so diffs review cleanly.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePosixPath
from typing import Sequence

from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1


def fingerprint(finding: Finding, base_dir: str | Path | None = None) -> str:
    """The stable identity of one finding (path is made base-relative)."""
    path = Path(finding.file)
    if base_dir is not None:
        try:
            path = path.resolve().relative_to(Path(base_dir).resolve())
        except ValueError:
            pass
    rel = str(PurePosixPath(*path.parts))
    return f"{rel}::{finding.code}::{finding.message}"


def load_baseline(path: str | Path) -> frozenset[str]:
    """Fingerprints recorded in a baseline file.

    Raises ``ValueError`` for a malformed or version-skewed file --
    silently treating a corrupt baseline as empty would fail CI on
    every baselined finding at once, which is the confusing direction.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file: {path}")
    entries = payload.get("entries")
    if not isinstance(entries, list) or not all(
        isinstance(e, str) for e in entries
    ):
        raise ValueError(f"malformed baseline file: {path}")
    return frozenset(entries)


def write_baseline(
    path: str | Path,
    findings: Sequence[Finding],
    base_dir: str | Path | None = None,
) -> int:
    """Write the baseline for ``findings``; returns the entry count."""
    entries = sorted({fingerprint(f, base_dir) for f in findings})
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding],
    baseline: frozenset[str],
    base_dir: str | Path | None = None,
) -> list[Finding]:
    """The findings not covered by ``baseline``, order preserved."""
    return [
        finding
        for finding in findings
        if fingerprint(finding, base_dir) not in baseline
    ]
