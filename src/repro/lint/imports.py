"""Name resolution for checkers: local names -> canonical dotted paths.

Checkers want to ask "is this call ``numpy.random.shuffle``?" without
caring whether the file spelled it ``np.random.shuffle``,
``numpy.random.shuffle`` or ``from numpy.random import shuffle``.
:class:`ImportMap` walks a module's import statements (at any nesting
level -- this codebase imports lazily inside functions) and resolves
``Name`` / ``Attribute`` expressions back to the canonical dotted path
of whatever was imported.

Only absolute imports resolve; relative imports (``from ..x import y``)
map to ``?.x.y`` so they can never collide with a stdlib or third-party
canonical name a checker matches against.
"""

from __future__ import annotations

import ast

__all__ = ["ImportMap"]


class ImportMap:
    """Maps local identifiers to the canonical dotted names they import."""

    def __init__(self) -> None:
        self._aliases: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        """Collect every import binding anywhere in ``tree``."""
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c``
                    # binds ``c`` to the full path.
                    target = alias.name if alias.asname else local
                    imports._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level:
                    module = "?" * node.level + ("." + module if module else "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports._aliases[local] = f"{module}.{alias.name}"
        return imports

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of ``node``, or None if not import-rooted.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` given ``import numpy as np``;
        ``rand.shuffle`` resolves to None when ``rand`` is a plain
        variable (so seeded :class:`random.Random` instances are never
        mistaken for the module-level global API).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted path of a call's callee (or None)."""
        return self.resolve(node.func)
