"""File discovery, checker execution, suppression and reporting.

The run is two-phase now that project passes exist:

1. **Per-file phase** -- each file is read, hashed, parsed, summarized
   for the project graph and run through every file checker.  With
   ``--cache-dir`` the whole per-file result is keyed by content hash
   (:mod:`repro.lint.cache`), so an incremental run re-analyzes only
   edited files.  Unparseable files become RPR000 findings and drop
   out of the graph; a checker crash becomes an *internal error*
   (exit 2), never a silent pass.
2. **Project phase** -- the summaries form a
   :class:`~repro.lint.graph.ProjectGraph` and every registered
   :class:`~repro.lint.base.ProjectChecker` (the RPR10x passes) runs
   once over it.

Suppression is applied at report time to the merged finding stream,
so a ``# repro: allow-RPR103 -- why`` waives a project finding
exactly like a file finding, and *unjustified* waivers surface as
RPR999.  ``--baseline`` subtracts known findings, ``--changed-only``
narrows the report to files touched relative to a git ref (analysis
still sees the whole tree -- cross-module passes need it), and
``--format sarif`` emits SARIF 2.1.0 for code scanning.

Exit status: 0 clean, 1 when error-severity findings remain, 2 on
usage or internal errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from .base import Checker, ProjectChecker, all_checkers, all_project_checkers
from .baseline import apply_baseline, load_baseline, write_baseline
from .cache import AnalysisCache, CacheEntry
from .context import FileContext
from .findings import PARSE_ERROR_CODE, Finding, Severity
from .graph import ModuleSummary, ProjectGraph, source_digest, summarize_module
from .sarif import format_sarif
from .suppressions import Suppression, parse_suppressions

__all__ = [
    "UNJUSTIFIED_CODE",
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "run_analysis",
    "iter_python_files",
    "format_findings",
    "main",
]

#: Code reported for an allow-comment with no written justification.
UNJUSTIFIED_CODE = "RPR999"

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache",
                        ".pytest_cache", "build", "dist"})


def _parse_error_finding(filename: str, exc: SyntaxError) -> Finding:
    return Finding(
        file=filename,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
        code=PARSE_ERROR_CODE,
        severity=Severity.ERROR,
        message=f"cannot parse file: {exc.msg}",
    )


def _unjustified_finding(filename: str, line: int) -> Finding:
    return Finding(
        file=filename,
        line=line,
        col=1,
        code=UNJUSTIFIED_CODE,
        severity=Severity.ERROR,
        message=(
            "suppression without a written justification; use "
            "'# repro: allow-<code> -- <reason>'"
        ),
    )


def _apply_suppressions(
    findings: Iterable[Finding],
    waivers_by_file: Mapping[str, Mapping[int, Suppression]],
) -> list[Finding]:
    """Drop waived findings; surface used-but-unjustified waivers."""
    kept: list[Finding] = []
    used: dict[str, set[int]] = {}
    for finding in findings:
        waiver = waivers_by_file.get(finding.file, {}).get(finding.line)
        if waiver is not None and finding.code in waiver.codes:
            used.setdefault(finding.file, set()).add(finding.line)
            continue
        kept.append(finding)
    for filename, waivers in waivers_by_file.items():
        for line, waiver in waivers.items():
            if line in used.get(filename, ()) and not waiver.justified:
                kept.append(_unjustified_finding(filename, line))
    return sorted(kept)


def lint_source(
    source: str,
    filename: str = "<string>",
    checkers: Sequence[Checker] | None = None,
) -> list[Finding]:
    """Per-file findings for one source buffer, suppression applied.

    This is the single-file API (no project passes); :func:`lint_paths`
    and :func:`main` run the whole two-phase pipeline.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [_parse_error_finding(filename, exc)]
    ctx = FileContext(filename, source, tree)
    active = list(all_checkers() if checkers is None else checkers)
    findings: list[Finding] = []
    for checker in active:
        findings.extend(checker.check(ctx))
    waivers = parse_suppressions(source)
    return _apply_suppressions(findings, {filename: waivers})


def lint_file(
    path: str | Path, checkers: Sequence[Checker] | None = None
) -> list[Finding]:
    """Per-file findings for one file on disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                file=str(path),
                line=1,
                col=1,
                code=PARSE_ERROR_CODE,
                severity=Severity.ERROR,
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, filename=str(path), checkers=checkers)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Python files under ``paths``, depth-first, sorted, caches skipped."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for sub in sorted(entry.iterdir()):
                if sub.is_dir():
                    if sub.name in _SKIP_DIRS or sub.name.startswith("."):
                        continue
                    yield from iter_python_files([sub])
                elif sub.suffix == ".py":
                    yield sub
        elif entry.suffix == ".py" or entry.is_file():
            yield entry


@dataclass
class LintReport:
    """Everything one full run produced."""

    findings: list[Finding]
    #: Checker crashes and other analyzer faults -- exit 2 material.
    internal_errors: list[str] = field(default_factory=list)
    files: int = 0
    #: Per-file cache counters (equal to ``files`` / 0 without a cache).
    analyzed: int = 0
    reused: int = 0


def _suppressions_to_cache(
    waivers: Mapping[int, Suppression],
) -> dict[int, tuple[list[str], bool]]:
    return {
        line: (sorted(w.codes), w.justified) for line, w in waivers.items()
    }


def _suppressions_from_cache(
    data: Mapping[int, tuple[list[str], bool]],
) -> dict[int, Suppression]:
    return {
        line: Suppression(
            line=line, codes=frozenset(codes), justified=justified
        )
        for line, (codes, justified) in data.items()
    }


def run_analysis(
    paths: Iterable[str | Path],
    checkers: Sequence[Checker] | None = None,
    project_checkers: Sequence[ProjectChecker] | None = None,
    cache: AnalysisCache | None = None,
) -> LintReport:
    """The full two-phase pipeline over files and directories."""
    file_checkers = list(all_checkers() if checkers is None else checkers)
    proj_checkers = list(
        all_project_checkers() if project_checkers is None
        else project_checkers
    )
    raw: list[Finding] = []
    internal_errors: list[str] = []
    summaries: list[ModuleSummary] = []
    waivers_by_file: dict[str, dict[int, Suppression]] = {}
    files = 0
    analyzed = 0

    for path in iter_python_files(paths):
        files += 1
        filename = str(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raw.append(
                Finding(
                    file=filename, line=1, col=1, code=PARSE_ERROR_CODE,
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        sha = source_digest(source)
        if cache is not None:
            entry = cache.get(filename, sha)
            if entry is not None:
                if entry.summary is not None:
                    summaries.append(entry.summary)
                raw.extend(entry.findings)
                waivers_by_file[filename] = _suppressions_from_cache(
                    entry.suppressions
                )
                continue
        else:
            analyzed += 1
        waivers = parse_suppressions(source)
        waivers_by_file[filename] = waivers
        file_findings: list[Finding] = []
        summary: ModuleSummary | None = None
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            file_findings.append(_parse_error_finding(filename, exc))
        else:
            summary = summarize_module(source, filename, tree=tree)
            summaries.append(summary)
            ctx = FileContext(filename, source, tree)
            for checker in file_checkers:
                try:
                    file_findings.extend(checker.check(ctx))
                except Exception as exc:  # noqa: BLE001 - contained on purpose
                    internal_errors.append(
                        f"{checker.CODE} crashed on {filename}: "
                        f"{type(exc).__name__}: {exc}"
                    )
        raw.extend(file_findings)
        if cache is not None:
            cache.put(
                filename,
                CacheEntry(
                    sha256=sha,
                    summary=summary,
                    findings=file_findings,
                    suppressions=_suppressions_to_cache(waivers),
                ),
            )

    if proj_checkers and summaries:
        project = ProjectGraph(summaries)
        for proj_checker in proj_checkers:
            try:
                raw.extend(proj_checker.check_project(project))
            except Exception as exc:  # noqa: BLE001 - contained on purpose
                internal_errors.append(
                    f"{proj_checker.CODE} crashed in the project phase: "
                    f"{type(exc).__name__}: {exc}"
                )

    if cache is not None:
        cache.save()
        analyzed = cache.analyzed
    return LintReport(
        findings=_apply_suppressions(raw, waivers_by_file),
        internal_errors=internal_errors,
        files=files,
        analyzed=analyzed,
        reused=cache.reused if cache is not None else 0,
    )


def lint_paths(
    paths: Iterable[str | Path], checkers: Sequence[Checker] | None = None
) -> list[Finding]:
    """Findings across files and directories, stably ordered.

    Runs both phases; pass ``checkers=[]`` style sequences to narrow
    the file phase (project passes always run over the full set).
    """
    return run_analysis(paths, checkers=checkers).findings


def format_findings(
    findings: Sequence[Finding],
    fmt: str = "text",
    base_dir: str | Path | None = None,
) -> str:
    """Render findings as ``text``, ``json`` or ``sarif``."""
    if fmt == "json":
        payload = {
            "version": 1,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    if fmt == "sarif":
        return format_sarif(findings, base_dir)
    if not findings:
        return "repro.lint: clean"
    lines = [finding.render() for finding in findings]
    lines.append(
        f"repro.lint: {len(findings)} finding"
        f"{'s' if len(findings) != 1 else ''}"
    )
    return "\n".join(lines)


def _changed_files(ref: str) -> set[str] | None:
    """Resolved paths changed vs ``ref`` plus untracked files, or None
    when git is unavailable (caller reports and exits 2)."""
    changed: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        for line in proc.stdout.splitlines():
            if line.strip():
                changed.add(str(Path(line.strip()).resolve()))
    return changed


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST and whole-program determinism/reproducibility checks "
            "(RPR001-RPR006 per file, RPR101-RPR105 across the project). "
            "Exit 1 when findings remain, 2 on usage or internal errors."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="subtract findings recorded in a baseline file",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--changed-only", metavar="REF", nargs="?", const="HEAD",
        default=None,
        help=(
            "report findings only in files changed vs a git ref "
            "(default HEAD); whole-program passes still analyze "
            "the full tree"
        ),
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="reuse per-file analysis keyed by content hash under DIR",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip the whole-program passes (file checkers only)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print files/analyzed/reused counters to stderr",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point shared by ``python -m repro.lint`` and the
    ``repro-rfc lint`` subcommand."""
    args = build_arg_parser().parse_args(argv)
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"repro.lint: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    cache = AnalysisCache(args.cache_dir) if args.cache_dir else None
    report = run_analysis(
        args.paths,
        project_checkers=[] if args.no_project else None,
        cache=cache,
    )
    findings = report.findings
    base_dir = Path.cwd()

    if args.changed_only is not None:
        changed = _changed_files(args.changed_only)
        if changed is None:
            print(
                "repro.lint: --changed-only requires a usable git "
                f"checkout (ref {args.changed_only!r})",
                file=sys.stderr,
            )
            return 2
        findings = [
            f for f in findings if str(Path(f.file).resolve()) in changed
        ]

    if args.write_baseline:
        count = write_baseline(args.write_baseline, findings, base_dir)
        print(
            f"repro.lint: wrote {count} entr"
            f"{'y' if count == 1 else 'ies'} to {args.write_baseline}"
        )
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro.lint: {exc}", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, baseline, base_dir)

    rendered = format_findings(findings, fmt=args.format, base_dir=base_dir)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(
            f"repro.lint: wrote {args.format} report "
            f"({len(findings)} finding{'s' if len(findings) != 1 else ''}) "
            f"to {args.output}"
        )
    else:
        print(rendered)

    if args.stats:
        print(
            f"repro.lint: {report.files} files, "
            f"{report.analyzed} analyzed, {report.reused} reused from cache",
            file=sys.stderr,
        )
    for error in report.internal_errors:
        print(f"repro.lint: internal error: {error}", file=sys.stderr)
    if report.internal_errors:
        return 2
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0
