"""File discovery, checker execution, suppression and reporting.

``lint_source`` is the core: parse one buffer, run every registered
checker, drop findings waived by a same-line
``# repro: allow-<code>`` comment -- and convert *unjustified*
waivers into RPR999 findings so suppressions always carry a written
reason.  ``lint_paths`` walks directories (skipping caches and hidden
trees), and :func:`main` is the shared entry point behind both
``python -m repro.lint`` and ``repro-rfc lint``.

Exit status: 0 clean, 1 when error-severity findings remain, 2 on
usage errors (no such path).  Unparseable files are reported as
RPR000 rather than crashing the run, so one syntax error cannot hide
findings elsewhere.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .base import Checker, all_checkers
from .context import FileContext
from .findings import PARSE_ERROR_CODE, Finding, Severity
from .suppressions import parse_suppressions

__all__ = [
    "UNJUSTIFIED_CODE",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "format_findings",
    "main",
]

#: Code reported for an allow-comment with no written justification.
UNJUSTIFIED_CODE = "RPR999"

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache",
                        ".pytest_cache", "build", "dist"})


def lint_source(
    source: str,
    filename: str = "<string>",
    checkers: Sequence[Checker] | None = None,
) -> list[Finding]:
    """Findings for one source buffer, suppression already applied."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Finding(
                file=filename,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                code=PARSE_ERROR_CODE,
                severity=Severity.ERROR,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    ctx = FileContext(filename, source, tree)
    waivers = parse_suppressions(source)
    active = list(all_checkers() if checkers is None else checkers)
    findings: list[Finding] = []
    used_waiver_lines: set[int] = set()
    for checker in active:
        for finding in checker.check(ctx):
            waiver = waivers.get(finding.line)
            if waiver is not None and finding.code in waiver.codes:
                used_waiver_lines.add(finding.line)
                continue
            findings.append(finding)
    for line, waiver in waivers.items():
        if line in used_waiver_lines and not waiver.justified:
            findings.append(
                Finding(
                    file=filename,
                    line=line,
                    col=1,
                    code=UNJUSTIFIED_CODE,
                    severity=Severity.ERROR,
                    message=(
                        "suppression without a written justification; use "
                        "'# repro: allow-<code> -- <reason>'"
                    ),
                )
            )
    return sorted(findings)


def lint_file(
    path: str | Path, checkers: Sequence[Checker] | None = None
) -> list[Finding]:
    """Findings for one file on disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                file=str(path),
                line=1,
                col=1,
                code=PARSE_ERROR_CODE,
                severity=Severity.ERROR,
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, filename=str(path), checkers=checkers)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Python files under ``paths``, depth-first, sorted, caches skipped."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for sub in sorted(entry.iterdir()):
                if sub.is_dir():
                    if sub.name in _SKIP_DIRS or sub.name.startswith("."):
                        continue
                    yield from iter_python_files([sub])
                elif sub.suffix == ".py":
                    yield sub
        elif entry.suffix == ".py" or entry.is_file():
            yield entry


def lint_paths(
    paths: Iterable[str | Path], checkers: Sequence[Checker] | None = None
) -> list[Finding]:
    """Findings across files and directories, stably ordered."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, checkers=checkers))
    return sorted(findings)


def format_findings(findings: Sequence[Finding], fmt: str = "text") -> str:
    """Render findings as ``text`` (one line each) or ``json``."""
    if fmt == "json":
        payload = {
            "version": 1,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    if not findings:
        return "repro.lint: clean"
    lines = [finding.render() for finding in findings]
    lines.append(
        f"repro.lint: {len(findings)} finding"
        f"{'s' if len(findings) != 1 else ''}"
    )
    return "\n".join(lines)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism & reproducibility checks (RPR001-RPR006). "
            "Exit 1 when findings remain, 2 on usage errors."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point shared by ``python -m repro.lint`` and the
    ``repro-rfc lint`` subcommand."""
    args = build_arg_parser().parse_args(argv)
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"repro.lint: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    findings = lint_paths(args.paths)
    print(format_findings(findings, fmt=args.format))
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0
