"""The lint result model: :class:`Severity` and :class:`Finding`."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the gate (non-zero exit); ``WARNING``
    findings are reported but do not fail by themselves.  Every
    shipped determinism checker emits ``ERROR`` -- nondeterminism in
    a reproduction is a correctness bug, not a style preference.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One checker hit at a source location.

    Ordering is (file, line, col, code) so reports are stable
    regardless of checker registration or traversal order -- the
    linter holds itself to the determinism bar it enforces.
    """

    file: str
    line: int
    col: int
    code: str
    # Excluded from ordering: enum members define no '<', and the code
    # already determines the severity for every shipped checker.
    severity: Severity = field(compare=False)
    message: str

    def render(self) -> str:
        """``file:line:col: CODE [severity] message`` (text format)."""
        return (
            f"{self.file}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping (used by ``--format json``)."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }


#: Code used for files that cannot be parsed at all.
PARSE_ERROR_CODE = "RPR000"
