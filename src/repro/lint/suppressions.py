"""Per-line waivers: ``# repro: allow-<code> -- <justification>``.

A finding is suppressed when the physical line it is reported on
carries an allow-comment naming its code (case-insensitive; several
codes may be listed, comma-separated).  The convention is to follow
the code with ``--`` and a written justification; the runner counts a
bare waiver as a finding of its own (``RPR999``) so unexplained
suppressions cannot accumulate silently.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Suppression", "parse_suppressions"]

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow-(?P<codes>[A-Za-z0-9]+(?:\s*,\s*[A-Za-z0-9]+)*)"
    r"(?P<rest>.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One allow-comment: which codes it waives and whether it says why."""

    line: int
    codes: frozenset[str]
    justified: bool


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Map line number -> :class:`Suppression` for every allow-comment.

    Comments are found with :mod:`tokenize` (not regex-over-lines), so
    a ``# repro: allow-...`` inside a string literal is never treated
    as a waiver.  Unreadable trailing bytes simply end the scan; the
    linter separately reports files it cannot parse.
    """
    found: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            codes = frozenset(
                code.strip().upper()
                for code in match.group("codes").split(",")
            )
            justified = bool(match.group("rest").strip(" -").strip())
            found[tok.start[0]] = Suppression(
                line=tok.start[0], codes=codes, justified=justified
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return found
