"""SARIF 2.1.0 rendering of lint findings.

SARIF (Static Analysis Results Interchange Format) is the format
GitHub code scanning ingests: uploading one file per run puts every
``RPR###`` finding inline on the PR diff, with the rule catalogue
(name, short description, default severity) carried alongside so the
UI can explain a finding without linking out.

The emitter is deliberately minimal -- one ``run``, the registered
checkers (plus the two runner-synthesized codes, parse errors and
unjustified waivers) as ``rules``, one ``result`` per finding with a
file-relative ``physicalLocation``.  Everything it writes is required
or strongly recommended by the 2.1.0 schema; nothing depends on the
host, the clock or absolute paths, so the same tree produces the same
SARIF byte-for-byte.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePosixPath
from typing import Any, Sequence

from .findings import PARSE_ERROR_CODE, Finding, Severity

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif", "format_sarif"]

SARIF_SCHEMA = (
    "https://json.schemastore.org/sarif-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

_TOOL_NAME = "repro.lint"
_INFO_URI = "https://example.invalid/repro-rfc/docs/LINTING.md"

#: Codes synthesized by the runner rather than a registered checker.
_RUNNER_RULES = {
    PARSE_ERROR_CODE: "file cannot be parsed; excluded from analysis",
    "RPR999": "suppression comment without a written justification",
}


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _relative_uri(file: str, base_dir: Path | None) -> str:
    """A forward-slash, preferably base-relative artifact URI."""
    path = Path(file)
    if base_dir is not None:
        try:
            path = path.resolve().relative_to(base_dir.resolve())
        except ValueError:
            pass
    return str(PurePosixPath(*path.parts))


def _rules() -> list[dict[str, Any]]:
    from .base import all_checkers, all_project_checkers

    catalogue: dict[str, tuple[str, Severity]] = {}
    for checker in (*all_checkers(), *all_project_checkers()):
        catalogue[checker.CODE] = (checker.SUMMARY, checker.SEVERITY)
    for code, summary in _RUNNER_RULES.items():
        catalogue[code] = (summary, Severity.ERROR)
    return [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": summary},
            "helpUri": _INFO_URI,
            "defaultConfiguration": {"level": _level(severity)},
        }
        for code, (summary, severity) in sorted(catalogue.items())
    ]


def to_sarif(
    findings: Sequence[Finding], base_dir: str | Path | None = None
) -> dict[str, Any]:
    """The findings as one SARIF 2.1.0 log object (a plain dict)."""
    base = Path(base_dir) if base_dir is not None else None
    results = [
        {
            "ruleId": finding.code,
            "level": _level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(finding.file, base),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _INFO_URI,
                        "rules": _rules(),
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def format_sarif(
    findings: Sequence[Finding], base_dir: str | Path | None = None
) -> str:
    """:func:`to_sarif` serialized deterministically."""
    return json.dumps(to_sarif(findings, base_dir), indent=2, sort_keys=True)
