"""Interprocedural taint over the project call graph.

RPR002 and RPR004 ask "does an impure value appear *in this file* near
key material?"; one helper function of indirection defeats them.  The
taint engine upgrades the question to "can an impure *call* execute
anywhere below a key-construction root?" -- a reachability problem on
:class:`~repro.lint.graph.ProjectGraph`:

* **sources** are canonical call names whose results differ between
  runs or processes: wall-clock reads, OS entropy, environment reads,
  builtin ``hash()``, and the unseeded module-level RNG APIs;
* **roots** are the functions that build cache keys or derive seeds;
* a **hit** is a source call inside any function reachable from a
  root, reported at the source call site with the full call chain so
  the reader sees *how* impurity reaches the key.

The analysis is under-approximate by construction (dynamic dispatch
adds no edges), so every hit it does report corresponds to a concrete
call chain in the source.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import CallSite, ProjectGraph

__all__ = ["TaintHit", "TaintEngine", "IMPURE_SOURCES"]

#: Canonical callable names whose results vary run-to-run or
#: process-to-process, with a short reason used in messages.
IMPURE_SOURCES: dict[str, str] = {
    # wall clock
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.monotonic": "process-relative time",
    "time.monotonic_ns": "process-relative time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    # entropy
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUIDs",
    "uuid.uuid4": "random UUIDs",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "secrets.randbits": "OS entropy",
    "secrets.randbelow": "OS entropy",
    # environment
    "os.getenv": "the process environment",
    "os.environ.get": "the process environment",
    "os.environ.setdefault": "the process environment",
    "os.getpid": "the process id",
    # per-process hashing
    "hash": "PYTHONHASHSEED-salted hashing",
    # unseeded module-level RNG state
    "random.random": "process-global RNG state",
    "random.randrange": "process-global RNG state",
    "random.randint": "process-global RNG state",
    "random.choice": "process-global RNG state",
    "random.choices": "process-global RNG state",
    "random.shuffle": "process-global RNG state",
    "random.sample": "process-global RNG state",
    "random.uniform": "process-global RNG state",
    "random.getrandbits": "process-global RNG state",
    "numpy.random.random": "NumPy's legacy global RNG",
    "numpy.random.rand": "NumPy's legacy global RNG",
    "numpy.random.randn": "NumPy's legacy global RNG",
    "numpy.random.randint": "NumPy's legacy global RNG",
    "numpy.random.choice": "NumPy's legacy global RNG",
    "numpy.random.shuffle": "NumPy's legacy global RNG",
    "numpy.random.permutation": "NumPy's legacy global RNG",
}

#: ``import numpy as np`` is near-universal; match the alias root too.
_NUMPY_ALIASES = ("numpy.random.", "np.random.")


@dataclass(frozen=True)
class TaintHit:
    """One impure call reachable from a root.

    ``chain`` is the qualified call path root -> ... -> the function
    containing the source call; ``site`` pins the source call itself.
    """

    root: str
    source: str
    reason: str
    chain: tuple[str, ...]
    path: str
    site: CallSite

    def chain_text(self) -> str:
        """``a -> b -> c`` rendering of the call chain for messages."""
        return " -> ".join(part.split(".")[-1] + "()" for part in self.chain)


def classify_source(canonical: str) -> str | None:
    """The impurity reason for a canonical callee name, or None."""
    reason = IMPURE_SOURCES.get(canonical)
    if reason is not None:
        return reason
    for prefix in _NUMPY_ALIASES:
        if canonical.startswith(prefix):
            bare = "numpy.random." + canonical[len(prefix):]
            if bare in IMPURE_SOURCES:
                return IMPURE_SOURCES[bare]
    return None


class TaintEngine:
    """Reachability-based taint queries over one project graph."""

    def __init__(self, project: ProjectGraph) -> None:
        self.project = project
        self._direct: dict[str, tuple[tuple[str, str, CallSite], ...]] = {}
        for qualified, _summary, _fn in project.iter_functions():
            hits: list[tuple[str, str, CallSite]] = []
            for canonical, site in project.external_calls(qualified):
                reason = classify_source(canonical)
                if reason is not None:
                    hits.append((canonical, reason, site))
            self._direct[qualified] = tuple(hits)

    def direct_sources(
        self, qualified: str
    ) -> tuple[tuple[str, str, CallSite], ...]:
        """(canonical source, reason, site) called directly by a function."""
        return self._direct.get(qualified, ())

    def tainted_functions(self) -> set[str]:
        """Every function that can execute an impure source call,
        directly or through project-internal callees (fixpoint)."""
        tainted = {q for q, hits in self._direct.items() if hits}
        # Reverse edges once, then saturate.
        callers: dict[str, set[str]] = {}
        for qualified in self._direct:
            for callee in self.project.callees(qualified):
                callers.setdefault(callee, set()).add(qualified)
        frontier = list(tainted)
        while frontier:
            current = frontier.pop()
            for caller in callers.get(current, ()):
                if caller not in tainted:
                    tainted.add(caller)
                    frontier.append(caller)
        return tainted

    def hits_from(self, root: str) -> list[TaintHit]:
        """Every impure source call reachable from ``root``, with the
        shortest call chain as the witness."""
        hits: list[TaintHit] = []
        for qualified in sorted(self.project.reachable([root])):
            direct = self._direct.get(qualified, ())
            if not direct:
                continue
            chain = self.project.call_chain(root, qualified)
            if chain is None:
                continue
            summary, _fn = self.project.functions[qualified]
            for canonical, reason, site in direct:
                hits.append(
                    TaintHit(
                        root=root,
                        source=canonical,
                        reason=reason,
                        chain=tuple(chain),
                        path=summary.path,
                        site=site,
                    )
                )
        return hits
