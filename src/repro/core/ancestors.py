"""Common-ancestor analysis of folded Clos networks.

Up/down routing exists iff every pair of leaf switches has a common
ancestor (paper Section 4.1).  A common ancestor at any level implies
one at the root level (every non-root switch has up-links), so the
check reduces to root-ancestor reachability.  Done naively this is
quadratic in leaves with large set intersections; instead we run two
linear bitset sweeps:

1. *descendant sweep* -- ``D[s]`` = bitmask of leaves reachable going
   only down from switch ``s`` (computed level by level upward);
2. *coverage sweep* -- ``M[s]`` = union of ``D[r]`` over all roots
   ``r`` above ``s`` (computed level by level downward).

``M[leaf]`` is then exactly the set of leaves that ``leaf`` can reach
by an up*/down* path, and the network is up/down routable iff every
``M[leaf]`` is the full leaf set.  Each sweep is
O(links * N_1 / wordsize).

Two sweep engines sit behind every public function: the pure-Python
big-int sweeps below (the reference oracle, ``accel=False``) and the
packed ``uint64`` numpy kernels of :class:`repro.accel.StageSweeper`
(``accel=True``, the default), proven exactly equal by the
differential and Hypothesis suites.  The numpy path is what makes the
paper's largest instances (N_1 ~ 11k) and the fault binary searches
cheap; it falls back to the reference automatically when the kernels
do not apply (no leaves, numpy unavailable).

All functions take the low-level ``(level_sizes, up_stages)``
representation so that fault experiments can pass pruned stages without
rebuilding :class:`FoldedClos` objects; ``*_of`` wrappers accept the
topology object directly.
"""

from __future__ import annotations

from typing import Sequence

from .. import accel as _accel
from ..topologies.base import FoldedClos

__all__ = [
    "descendant_leaf_sets",
    "updown_coverage",
    "has_updown_routing",
    "updown_reachable_fraction",
    "root_ancestor_sets",
    "has_updown_routing_of",
    "updown_coverage_of",
    "updown_reachable_fraction_of",
    "common_ancestors_of",
    "stages_of",
    "sweeper_of",
]

StageAdjacency = Sequence[Sequence[Sequence[int]]]


def _use_accel(accel: bool, n1: int) -> bool:
    return accel and n1 > 0 and _accel.is_available()


def stages_of(topo: FoldedClos) -> list[list[tuple[int, ...]]]:
    """Extract ``up_stages`` rows from a topology (stage -> switch -> ups)."""
    stages: list[list[tuple[int, ...]]] = []
    for level in range(topo.num_levels - 1):
        stages.append(
            [
                topo.up_neighbors(level, s)
                for s in range(topo.level_sizes[level])
            ]
        )
    return stages


def descendant_leaf_sets(
    level_sizes: Sequence[int],
    up_stages: StageAdjacency,
    accel: bool = True,
) -> list[list[int]]:
    """``D[level][s]`` = bitmask of leaves below switch ``s``.

    Level 0 masks are singletons; each higher level ORs its
    down-neighbors, which we obtain by scattering from below using the
    up-stage adjacency (no down adjacency needed).
    """
    if len(up_stages) != len(level_sizes) - 1:
        raise ValueError("up_stages must have one entry per stage")
    if _use_accel(accel, level_sizes[0]):
        sweeper = _accel.StageSweeper(level_sizes, up_stages)
        return [_accel.masks_to_ints(m) for m in sweeper.descendant_masks()]
    masks: list[list[int]] = [[1 << leaf for leaf in range(level_sizes[0])]]
    for stage, rows in enumerate(up_stages):
        upper = [0] * level_sizes[stage + 1]
        lower = masks[stage]
        for s, ups in enumerate(rows):
            m = lower[s]
            for t in ups:
                upper[t] |= m
        masks.append(upper)
    return masks


def updown_coverage(
    level_sizes: Sequence[int],
    up_stages: StageAdjacency,
    accel: bool = True,
) -> list[int]:
    """Per-leaf bitmask of leaves reachable by an up*/down* path.

    A leaf always reaches itself (zero-hop path), so every returned
    mask contains the leaf's own bit even in a fully disconnected
    network.
    """
    if len(up_stages) != len(level_sizes) - 1:
        raise ValueError("up_stages must have one entry per stage")
    if _use_accel(accel, level_sizes[0]):
        sweeper = _accel.StageSweeper(level_sizes, up_stages)
        return _accel.masks_to_ints(sweeper.coverage_masks())
    masks = descendant_leaf_sets(level_sizes, up_stages, accel=False)
    # Downward sweep: start at roots with their own descendant sets.
    cover = list(masks[-1])
    for stage in range(len(up_stages) - 1, -1, -1):
        rows = up_stages[stage]
        below = [0] * level_sizes[stage]
        for s, ups in enumerate(rows):
            acc = 0
            for t in ups:
                acc |= cover[t]
            below[s] = acc
        cover = below
    return [c | (1 << leaf) for leaf, c in enumerate(cover)]


def has_updown_routing(
    level_sizes: Sequence[int],
    up_stages: StageAdjacency,
    accel: bool = True,
) -> bool:
    """Whether every pair of leaves has a common ancestor."""
    n1 = level_sizes[0]
    if _use_accel(accel, n1):
        if len(up_stages) != len(level_sizes) - 1:
            raise ValueError("up_stages must have one entry per stage")
        return _accel.StageSweeper(level_sizes, up_stages).has_updown()
    full = (1 << n1) - 1
    return all(
        c == full for c in updown_coverage(level_sizes, up_stages, accel=False)
    )


def updown_reachable_fraction(
    level_sizes: Sequence[int],
    up_stages: StageAdjacency,
    accel: bool = True,
) -> float:
    """Fraction of ordered leaf pairs joined by an up*/down* path.

    1.0 means up/down routable; the resiliency experiments use the
    partial value to show graceful degradation.
    """
    n1 = level_sizes[0]
    if n1 < 2:
        return 1.0
    if _use_accel(accel, n1):
        if len(up_stages) != len(level_sizes) - 1:
            raise ValueError("up_stages must have one entry per stage")
        return _accel.StageSweeper(level_sizes, up_stages).reachable_fraction()
    covered = sum(
        c.bit_count() - 1
        for c in updown_coverage(level_sizes, up_stages, accel=False)
    )
    return covered / (n1 * (n1 - 1))


def root_ancestor_sets(
    level_sizes: Sequence[int],
    up_stages: StageAdjacency,
    accel: bool = True,
) -> list[int]:
    """Per-leaf bitmask (over root indices) of reachable root switches."""
    if _use_accel(accel, level_sizes[-1]):
        if len(up_stages) != len(level_sizes) - 1:
            raise ValueError("up_stages must have one entry per stage")
        sweeper = _accel.StageSweeper(level_sizes, up_stages)
        return _accel.masks_to_ints(sweeper.root_ancestor_masks())
    num_levels = len(level_sizes)
    masks = [1 << r for r in range(level_sizes[-1])]
    for stage in range(num_levels - 2, -1, -1):
        rows = up_stages[stage]
        below = [0] * level_sizes[stage]
        for s, ups in enumerate(rows):
            acc = 0
            for t in ups:
                acc |= masks[t]
            below[s] = acc
        masks = below
    return masks


# ----------------------------------------------------------------------
# Topology-object conveniences
# ----------------------------------------------------------------------

def sweeper_of(topo: FoldedClos) -> "_accel.StageSweeper":
    """A :class:`repro.accel.StageSweeper` over a topology's stages.

    Packed topologies (anything exposing ``up_stage_arrays()``, i.e.
    :class:`repro.topologies.packed.PackedFoldedClos`) hand their CSR
    stage arrays to the sweeper directly -- no Python row lists are
    built, which is what keeps ancestor analysis array-native at
    10^5--10^6 terminals.  List topologies flatten through
    :func:`stages_of` as before; both constructions yield bit-identical
    sweeps (same flat edge order).
    """
    arrays = getattr(topo, "up_stage_arrays", None)
    if arrays is not None:
        return _accel.StageSweeper.from_arrays(topo.level_sizes, arrays())
    return _accel.StageSweeper(topo.level_sizes, stages_of(topo))


def has_updown_routing_of(topo: FoldedClos, accel: bool = True) -> bool:
    if _use_accel(accel, topo.level_sizes[0]):
        return sweeper_of(topo).has_updown()
    return has_updown_routing(topo.level_sizes, stages_of(topo), accel=accel)


def updown_coverage_of(topo: FoldedClos, accel: bool = True) -> list[int]:
    """Per-leaf coverage bitmasks of a topology (packed-aware)."""
    if _use_accel(accel, topo.level_sizes[0]):
        return _accel.masks_to_ints(sweeper_of(topo).coverage_masks())
    return updown_coverage(topo.level_sizes, stages_of(topo), accel=accel)


def updown_reachable_fraction_of(topo: FoldedClos, accel: bool = True) -> float:
    """Reachable ordered-pair fraction of a topology (packed-aware)."""
    if topo.level_sizes[0] < 2:
        return 1.0
    if _use_accel(accel, topo.level_sizes[0]):
        return sweeper_of(topo).reachable_fraction()
    return updown_reachable_fraction(
        topo.level_sizes, stages_of(topo), accel=accel
    )


def common_ancestors_of(
    topo: FoldedClos, leaf_a: int, leaf_b: int
) -> tuple[int, list[int]]:
    """Least-common-ancestor level and switches for two leaves.

    Returns ``(level, switches)`` where ``level`` is the lowest level
    (0-based) at which the leaves share ancestors and ``switches`` the
    level-local indices of those shared ancestors.  Raises
    ``ValueError`` when the pair has no common ancestor at all.
    """
    if leaf_a == leaf_b:
        return 0, [leaf_a]
    anc_a: set[int] = {leaf_a}
    anc_b: set[int] = {leaf_b}
    for level in range(topo.num_levels - 1):
        anc_a = {
            t for s in anc_a for t in topo.up_neighbors(level, s)
        }
        anc_b = {
            t for s in anc_b for t in topo.up_neighbors(level, s)
        }
        shared = anc_a & anc_b
        if shared:
            return level + 1, sorted(shared)
    raise ValueError(f"leaves {leaf_a} and {leaf_b} share no ancestor")
