"""The paper's contribution: Random Folded Clos networks and their theory."""

from .ancestors import (
    common_ancestors_of,
    has_updown_routing,
    has_updown_routing_of,
    sweeper_of,
    updown_coverage,
    updown_coverage_of,
    updown_reachable_fraction,
    updown_reachable_fraction_of,
)
from .expansion import (
    ExpansionError,
    ExpansionStep,
    RewiringReport,
    expand_rfc,
    expand_rrn,
    expansion_trajectory,
    strong_expansion_limit,
    weak_expand_rfc,
)
from .rfc import (
    UpDownNotFound,
    radix_regular_rfc,
    random_folded_clos,
    rfc_with_updown,
)
from .theory import (
    rfc_max_leaves,
    rfc_max_terminals,
    threshold_radix,
    threshold_radix_simplified,
    updown_probability,
    x_for_radix,
)

__all__ = [
    "radix_regular_rfc",
    "random_folded_clos",
    "rfc_with_updown",
    "UpDownNotFound",
    "has_updown_routing",
    "has_updown_routing_of",
    "updown_coverage",
    "updown_coverage_of",
    "updown_reachable_fraction",
    "updown_reachable_fraction_of",
    "sweeper_of",
    "common_ancestors_of",
    "threshold_radix",
    "threshold_radix_simplified",
    "updown_probability",
    "x_for_radix",
    "rfc_max_leaves",
    "rfc_max_terminals",
    "expand_rfc",
    "expand_rrn",
    "expansion_trajectory",
    "ExpansionStep",
    "weak_expand_rfc",
    "strong_expansion_limit",
    "RewiringReport",
    "ExpansionError",
]
