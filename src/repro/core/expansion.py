"""Incremental (strong) expansion of random topologies -- Section 5.

RFCs and RRNs expand without adding levels: new switches splice into
the random wiring by *edge breaking* (the Jellyfish technique): remove
an existing link (a, b) and add (a, new) and (new', b), consuming one
free port on each new switch per broken link.  The minimal RFC upgrade
adds two switches to every level except one at the top and ``R`` new
compute nodes (paper Section 5); this module implements that step,
counts the rewiring it causes, and exposes the strong-expansion limit
(Theorem 4.2 threshold) past which a level must be added (weak
expansion).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..topologies.base import DirectNetwork, FoldedClos
from .rfc import rfc_level_sizes
from .theory import rfc_max_leaves

__all__ = [
    "RewiringReport",
    "ExpansionError",
    "ExpansionStep",
    "expand_rfc",
    "expand_rrn",
    "expansion_trajectory",
    "weak_expand_rfc",
    "strong_expansion_limit",
]


class ExpansionError(RuntimeError):
    """Raised when an expansion step cannot be completed."""


@dataclass
class RewiringReport:
    """Accounting of one or more expansion steps.

    ``links_removed`` existing cables were unplugged and
    ``links_added`` new cables plugged (including re-uses of the freed
    ports); ``switches_added`` and ``terminals_added`` summarize the
    growth.  ``rewired_fraction(total)`` is the paper's "% of the total
    links" rewiring metric.
    """

    links_removed: int = 0
    links_added: int = 0
    switches_added: int = 0
    terminals_added: int = 0

    def merge(self, other: "RewiringReport") -> None:
        self.links_removed += other.links_removed
        self.links_added += other.links_added
        self.switches_added += other.switches_added
        self.terminals_added += other.terminals_added

    def rewired_fraction(self, total_links: int) -> float:
        if total_links <= 0:
            raise ValueError("total_links must be positive")
        return self.links_removed / total_links


def _as_rng(rng: random.Random | int | None) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def _splice_bipartite(
    adj1: list[set[int]],
    adj2: list[set[int]],
    new_left: int,
    d1: int,
    new_right: int,
    d2: int,
    rand: random.Random,
    report: RewiringReport,
    max_tries: int = 10_000,
) -> None:
    """Insert new vertices into a bipartite stage by edge breaking.

    Mutates ``adj1``/``adj2`` in place: appends ``new_left`` vertices
    needing ``d1`` links and ``new_right`` needing ``d2``.  New-new
    links are placed directly first; the remainder breaks random old
    links, one break serving one new-left and one new-right port.
    """
    if new_left * d1 != new_right * d2:
        raise ExpansionError(
            f"port mismatch: {new_left}x{d1} != {new_right}x{d2}"
        )
    n1_old, n2_old = len(adj1), len(adj2)
    left_ids = list(range(n1_old, n1_old + new_left))
    right_ids = list(range(n2_old, n2_old + new_right))
    adj1.extend(set() for _ in range(new_left))
    adj2.extend(set() for _ in range(new_right))
    need1 = {u: d1 for u in left_ids}
    need2 = {v: d2 for v in right_ids}

    # Phase 1: direct new-new links (at most one per pair).
    for u in left_ids:
        for v in right_ids:
            if need1[u] > 0 and need2[v] > 0 and v not in adj1[u]:
                adj1[u].add(v)
                adj2[v].add(u)
                need1[u] -= 1
                need2[v] -= 1
                report.links_added += 1

    # Phase 2: break old links to feed the remaining ports.
    pending1 = [u for u in left_ids for _ in range(need1[u])]
    pending2 = [v for v in right_ids for _ in range(need2[v])]
    assert len(pending1) == len(pending2)
    if not pending1:
        return
    # sorted(): the edge list's order feeds rand.randrange indexing, so
    # set iteration order must not leak into which links get broken.
    old_edges = [
        (a, b) for a in range(n1_old) for b in sorted(adj1[a]) if b < n2_old
    ]
    if not old_edges:
        raise ExpansionError("no existing links to splice into")
    rand.shuffle(pending1)
    rand.shuffle(pending2)
    for u, v in zip(pending1, pending2):
        for _ in range(max_tries):
            idx = rand.randrange(len(old_edges))
            a, b = old_edges[idx]
            if b not in adj1[a]:
                # Stale entry (already broken); compact lazily.
                old_edges[idx] = old_edges[-1]
                old_edges.pop()
                if not old_edges:
                    raise ExpansionError("ran out of spliceable links")
                continue
            if b in adj1[u] or v in adj1[a]:
                continue
            adj1[a].discard(b)
            adj2[b].discard(a)
            adj1[u].add(b)
            adj2[b].add(u)
            adj1[a].add(v)
            adj2[v].add(a)
            old_edges[idx] = old_edges[-1]
            old_edges.pop()
            report.links_removed += 1
            report.links_added += 2
            break
        else:
            raise ExpansionError(
                "could not find a suitable link to break (degenerate stage)"
            )


def expand_rfc(
    topo: FoldedClos,
    steps: int = 1,
    rng: random.Random | int | None = None,
) -> tuple[FoldedClos, RewiringReport]:
    """Strong-expand a radix-regular RFC by ``steps`` minimal upgrades.

    Each step adds two switches per non-root level, one root switch and
    ``R`` compute nodes (two leaves x ``R/2`` hosts), splicing them
    into every stage with edge breaking.  The result keeps the same
    radix and level count.  Callers should check
    :func:`strong_expansion_limit` -- past the Theorem 4.2 threshold
    the expanded network will stop being up/down routable.
    """
    if steps < 1:
        raise ExpansionError("steps must be >= 1")
    half = topo.radix // 2
    levels = topo.num_levels
    if levels < 2:
        raise ExpansionError("cannot strong-expand a single-level network")
    rand = _as_rng(rng)
    report = RewiringReport()

    # Mutable copies of every stage.
    stage_left: list[list[set[int]]] = []
    stage_right: list[list[set[int]]] = []
    for stage in range(levels - 1):
        left = [
            set(topo.up_neighbors(stage, s))
            for s in range(topo.level_sizes[stage])
        ]
        right = [
            set(topo.down_neighbors(stage + 1, s))
            for s in range(topo.level_sizes[stage + 1])
        ]
        stage_left.append(left)
        stage_right.append(right)

    for _ in range(steps):
        for stage in range(levels - 1):
            top = stage == levels - 2
            _splice_bipartite(
                stage_left[stage],
                stage_right[stage],
                new_left=2,
                d1=half,
                new_right=1 if top else 2,
                d2=topo.radix if top else half,
                rand=rand,
                report=report,
            )
        report.switches_added += 2 * (levels - 1) + 1
        report.terminals_added += topo.radix

    new_sizes = [len(stage_left[0])] + [
        len(stage_right[i]) for i in range(levels - 1)
    ]
    expanded = FoldedClos(
        new_sizes,
        stage_left,
        hosts_per_leaf=topo.hosts_per_leaf,
        radix=topo.radix,
        name=f"{topo.name}+{steps}step",
    )
    return expanded, report


@dataclass(frozen=True)
class ExpansionStep:
    """Up/down health of one strong-expansion step (see trajectory)."""

    level_sizes: tuple[int, ...]
    num_terminals: int
    reachable_fraction: float
    updown_ok: bool
    #: Ancestor-mask rows recomputed by the incremental sweep at this
    #: step (equal to ``total_rows`` on the reference path).
    dirty_rows: int
    #: All mask rows above level 0 -- what a from-scratch sweep costs.
    total_rows: int


def expansion_trajectory(
    topo: FoldedClos,
    steps: int = 1,
    rng: random.Random | int | None = None,
    accel: bool = True,
) -> tuple[FoldedClos, RewiringReport, list[ExpansionStep]]:
    """Strong-expand step by step, analyzing coverage incrementally.

    Runs :func:`expand_rfc` one minimal upgrade at a time and measures
    up/down coverage after every step.  With ``accel=True`` the
    analysis reuses the previous size's packed descendant masks through
    :class:`repro.accel.IncrementalSweeper`: an expansion step rewires
    O(R) links per stage while the topology holds O(N_1 * R), so only
    the mask rows reachable from the spliced edges are recomputed
    (``ExpansionStep.dirty_rows`` vs ``total_rows`` records the
    saving).  Results are bit-identical to from-scratch sweeps -- the
    incremental engine is differentially tested in
    ``tests/test_incremental_ancestors.py``.
    """
    from .. import accel as _accel
    from ..topologies.packed import stage_arrays_of

    if steps < 1:
        raise ExpansionError("steps must be >= 1")
    rand = _as_rng(rng)
    report = RewiringReport()
    current = topo
    use_accel = (
        accel and topo.level_sizes[0] > 0 and _accel.is_available()
    )
    sweeper = (
        _accel.IncrementalSweeper(topo.level_sizes, stage_arrays_of(topo))
        if use_accel
        else None
    )
    records: list[ExpansionStep] = []
    for _ in range(steps):
        current, step_report = expand_rfc(current, 1, rng=rand)
        report.merge(step_report)
        if sweeper is not None:
            stats = sweeper.update(
                current.level_sizes, stage_arrays_of(current)
            )
            fraction = sweeper.reachable_fraction()
            ok = sweeper.has_updown()
        else:
            from .ancestors import (
                updown_reachable_fraction_of,
            )

            fraction = updown_reachable_fraction_of(current, accel=False)
            ok = fraction >= 1.0
            stats = {
                "dirty_rows": sum(current.level_sizes[1:]),
                "total_rows": sum(current.level_sizes[1:]),
            }
        records.append(
            ExpansionStep(
                level_sizes=tuple(current.level_sizes),
                num_terminals=current.num_terminals,
                reachable_fraction=fraction,
                updown_ok=ok,
                dirty_rows=stats["dirty_rows"],
                total_rows=stats["total_rows"],
            )
        )
    return current, report, records


def weak_expand_rfc(
    topo: FoldedClos,
    rng: random.Random | int | None = None,
) -> tuple[FoldedClos, RewiringReport]:
    """Weak-expand an RFC: add a level, restoring up/down headroom.

    The existing roots become intermediate switches: each splits its
    ``R`` down-links into ``R/2`` down + ``R/2`` up (which requires
    doubling the count of old roots to keep all old down-links), and a
    new random stage connects them to fresh roots.  In practice
    operators rebuild the two top stages; here we model the simplest
    variant -- regenerate the top stage at full width and add one more
    random stage -- and count every moved cable as rewiring.
    """
    from ..topologies.random_graphs import random_bipartite_graph

    rand = _as_rng(rng)
    half = topo.radix // 2
    levels = topo.num_levels
    n1 = topo.level_sizes[0]
    report = RewiringReport()

    sizes = rfc_level_sizes(n1, levels + 1)
    stages: list[list[set[int]]] = [
        [set(topo.up_neighbors(stage, s)) for s in range(topo.level_sizes[stage])]
        for stage in range(levels - 2)
    ]
    # Rebuild: old top stage widens (N_l doubles to N_1) ...
    old_top_links = topo.level_sizes[-2] * half
    widened, _ = random_bipartite_graph(sizes[levels - 2], half, sizes[levels - 1], half, rng=rand)
    stages.append(widened)
    # ... and a brand-new top stage caps the network.
    new_top, _ = random_bipartite_graph(sizes[levels - 1], half, sizes[levels], topo.radix, rng=rand)
    stages.append(new_top)

    report.links_removed += old_top_links
    report.links_added += sizes[levels - 2] * half + sizes[levels - 1] * half
    report.switches_added = sum(sizes) - topo.num_switches

    expanded = FoldedClos(
        sizes,
        stages,
        hosts_per_leaf=topo.hosts_per_leaf,
        radix=topo.radix,
        name=f"{topo.name}+level",
    )
    return expanded, report


def expand_rrn(
    network: DirectNetwork,
    new_switches: int,
    rng: random.Random | int | None = None,
    max_tries: int = 10_000,
) -> tuple[DirectNetwork, RewiringReport]:
    """Jellyfish-style expansion of a random regular network.

    Each new switch of degree ``delta`` breaks ``delta/2`` random
    existing links; for odd ``delta`` the spare ports of consecutive
    new switches are paired up.
    """
    if new_switches < 1:
        raise ExpansionError("new_switches must be >= 1")
    if network.num_switches < 3:
        raise ExpansionError("network too small to splice into")
    rand = _as_rng(rng)
    report = RewiringReport()
    adj = [set(row) for row in network.adjacency()]
    degree = len(adj[0])
    n_old = len(adj)
    spare: int | None = None
    for new in range(n_old, n_old + new_switches):
        adj.append(set())
        need = degree
        if degree % 2 == 1:
            if spare is None:
                spare = new
            else:
                adj[spare].add(new)
                adj[new].add(spare)
                report.links_added += 1
                spare = None
                need -= 1
                # The earlier spare switch also consumed its odd port.
        breaks = need // 2
        # sorted() for the same reason as _splice_bipartite: this list
        # is indexed by rand.randrange, so its order is result-bearing.
        edges = [
            (a, b) for a in range(len(adj)) for b in sorted(adj[a]) if a < b
        ]
        for _ in range(breaks):
            for _ in range(max_tries):
                a, b = edges[rand.randrange(len(edges))]
                if b not in adj[a]:
                    continue
                if a == new or b == new or new in adj[a] or new in adj[b]:
                    continue
                adj[a].discard(b)
                adj[b].discard(a)
                adj[a].add(new)
                adj[new].add(a)
                adj[b].add(new)
                adj[new].add(b)
                report.links_removed += 1
                report.links_added += 2
                break
            else:
                raise ExpansionError("could not splice new switch")
        report.switches_added += 1
        report.terminals_added += network.hosts_per_switch
    if spare is not None and degree % 2 == 1:
        # A final odd port stays free; that is fine for expansion,
        # matching Jellyfish practice (one port awaits the next step).
        pass
    expanded = DirectNetwork(
        adj,
        hosts_per_switch=network.hosts_per_switch,
        name=f"{network.name}+{new_switches}",
    )
    return expanded, report


def strong_expansion_limit(radix: int, levels: int) -> int:
    """Maximum leaves reachable by strong expansion (Theorem 4.2)."""
    return rfc_max_leaves(radix, levels)
