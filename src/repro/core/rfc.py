"""Random Folded Clos (RFC) network generation -- the paper's core.

An RFC keeps the level structure of a folded Clos network but draws
each inter-level wiring stage uniformly at random from the simple
biregular bipartite graphs with the prescribed degrees (Definition 4.1
restricted to radix-regular instances, built per Appendix Listing 2).

Main entry points:

* :func:`random_folded_clos` -- fully general: any level sizes and
  per-stage degrees.
* :func:`radix_regular_rfc` -- the practical case studied throughout
  the paper: radix ``R``, ``N_1`` leaves, ``l`` levels, level sizes
  ``N_1, ..., N_1, N_1/2`` and ``R/2`` terminals per leaf.
* :func:`rfc_with_updown` -- retry :func:`radix_regular_rfc` until the
  sample is up/down routable.  Near the Theorem 4.2 threshold the
  success probability is ``1/e``, so about three attempts are expected
  (tested); far above it the first sample virtually always works.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..topologies.base import FoldedClos, NetworkError
from ..topologies.random_graphs import GenerationError, random_bipartite_graph
from .ancestors import has_updown_routing_of

__all__ = [
    "random_folded_clos",
    "radix_regular_rfc",
    "rfc_with_updown",
    "random_k_ary_tree",
    "hashnet",
    "UpDownNotFound",
    "rfc_level_sizes",
    "rfc_switches",
    "rfc_wires",
]


class UpDownNotFound(RuntimeError):
    """Raised when no up/down routable RFC is found within the budget."""


def _as_rng(rng: random.Random | int | None) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def random_folded_clos(
    level_sizes: Sequence[int],
    up_degrees: Sequence[int],
    hosts_per_leaf: int,
    radix: int | None = None,
    rng: random.Random | int | None = None,
    name: str | None = None,
) -> FoldedClos:
    """Draw an RFC with arbitrary level sizes and per-stage up-degrees.

    ``up_degrees[i]`` is the number of up-links of every level-``i``
    switch (0-based); the matching down-degree of level ``i+1`` is
    derived from the level sizes and must be integral.
    """
    if len(up_degrees) != len(level_sizes) - 1:
        raise NetworkError("need one up-degree per stage")
    rand = _as_rng(rng)
    stages: list[list[set[int]]] = []
    max_ports = [0] * len(level_sizes)
    for i, d1 in enumerate(up_degrees):
        n1, n2 = level_sizes[i], level_sizes[i + 1]
        total = n1 * d1
        if total % n2 != 0:
            raise NetworkError(
                f"stage {i}: {n1} x {d1} up-links do not divide evenly "
                f"over {n2} upper switches"
            )
        d2 = total // n2
        adj1, _ = random_bipartite_graph(n1, d1, n2, d2, rng=rand)
        stages.append(adj1)
        max_ports[i] += d1
        max_ports[i + 1] += d2
    max_ports[0] += hosts_per_leaf
    topo = FoldedClos(
        level_sizes,
        stages,
        hosts_per_leaf=hosts_per_leaf,
        radix=radix if radix is not None else max(max_ports),
        name=name or f"RFC(levels={list(level_sizes)})",
    )
    return topo


def rfc_level_sizes(n1: int, levels: int) -> list[int]:
    """Level sizes of a radix-regular RFC: ``N_1`` everywhere, half roots."""
    if levels < 2:
        raise NetworkError(f"an RFC needs at least 2 levels, got {levels}")
    if n1 < 2 or n1 % 2 != 0:
        raise NetworkError(f"N_1 must be even and >= 2, got {n1}")
    return [n1] * (levels - 1) + [n1 // 2]


def radix_regular_rfc(
    radix: int,
    n1: int,
    levels: int,
    rng: random.Random | int | None = None,
) -> FoldedClos:
    """Draw the radix-regular RFC of Figure 4.

    ``R/2`` terminals per leaf; every non-root switch has ``R/2``
    up-links and ``R/2`` down-links, roots have ``R`` down-links.
    """
    if radix < 4 or radix % 2 != 0:
        raise NetworkError(f"radix must be even and >= 4, got {radix}")
    half = radix // 2
    sizes = rfc_level_sizes(n1, levels)
    if half > sizes[-1]:
        raise NetworkError(
            f"radix {radix} too large: top stage needs R/2 <= N_l = {sizes[-1]}"
        )
    topo = random_folded_clos(
        sizes,
        up_degrees=[half] * (levels - 1),
        hosts_per_leaf=half,
        radix=radix,
        rng=rng,
        name=f"RFC(R={radix}, N1={n1}, l={levels})",
    )
    return topo


def rfc_with_updown(
    radix: int,
    n1: int,
    levels: int,
    rng: random.Random | int | None = None,
    max_attempts: int = 64,
) -> tuple[FoldedClos, int]:
    """Sample radix-regular RFCs until one is up/down routable.

    Returns ``(topology, attempts)``.  Raises :class:`UpDownNotFound`
    after ``max_attempts`` failures -- which, per Theorem 4.2, signals
    parameters well below the threshold radix rather than bad luck.
    """
    rand = _as_rng(rng)
    for attempt in range(1, max_attempts + 1):
        try:
            topo = radix_regular_rfc(radix, n1, levels, rng=rand)
        except GenerationError as exc:
            raise UpDownNotFound(
                f"cannot even generate RFC(R={radix}, N1={n1}, l={levels}): {exc}"
            ) from exc
        if has_updown_routing_of(topo):
            return topo, attempt
    raise UpDownNotFound(
        f"no up/down routable RFC(R={radix}, N1={n1}, l={levels}) in "
        f"{max_attempts} attempts; radix is likely below the Theorem 4.2 "
        "threshold"
    )


def random_k_ary_tree(
    k: int,
    levels: int,
    rng: random.Random | int | None = None,
) -> FoldedClos:
    """A *random* k-ary l-tree (paper Section 4, after Definition 4.1).

    Same level structure as the deterministic k-ary l-tree of Petrini
    and Vanneschi -- ``k^(l-1)`` switches at every level, ``k``
    terminals per leaf, radix ``2k`` -- but with random inter-level
    wiring.  This is essentially the construction of Bassalygo-Pinsker
    and Upfal's splitter networks.
    """
    if k < 2:
        raise NetworkError(f"need k >= 2, got {k}")
    if levels < 2:
        raise NetworkError(f"need at least 2 levels, got {levels}")
    n = k ** (levels - 1)
    return random_folded_clos(
        [n] * levels,
        up_degrees=[k] * (levels - 1),
        hosts_per_leaf=k,
        radix=2 * k,
        rng=rng,
        name=f"random {k}-ary {levels}-tree",
    )


def hashnet(
    num_switches: int,
    degree: int,
    levels: int,
    rng: random.Random | int | None = None,
) -> FoldedClos:
    """Fahlman's Hashnet as a folded Clos (paper Section 4).

    The Hashnet interconnection scheme is the *unfolding* of an RFC
    whose levels all have the same switch count; this returns that
    folded form -- ``num_switches`` switches per level, ``degree``
    up-links each, ``degree`` terminals per leaf.
    """
    if num_switches < 2:
        raise NetworkError("need at least 2 switches per level")
    if not 1 <= degree <= num_switches:
        raise NetworkError(
            f"degree {degree} infeasible for {num_switches} switches"
        )
    if levels < 2:
        raise NetworkError(f"need at least 2 levels, got {levels}")
    return random_folded_clos(
        [num_switches] * levels,
        up_degrees=[degree] * (levels - 1),
        hosts_per_leaf=degree,
        radix=2 * degree,
        rng=rng,
        name=f"hashnet(N={num_switches}, d={degree}, l={levels})",
    )


def rfc_switches(n1: int, levels: int) -> int:
    """Total switches of the radix-regular RFC."""
    return sum(rfc_level_sizes(n1, levels))


def rfc_wires(n1: int, radix: int, levels: int) -> int:
    """Switch-to-switch cables: ``(l-1) * N_1 * R/2``."""
    return (levels - 1) * n1 * (radix // 2)
