"""Closed-form results of the paper: Theorem 4.2 and Section 4.2/4.3.

This module is the analytic backbone of the Figure 5 (diameter),
Figure 6 (scalability) and Figure 7 (expandability) reproductions:

* the sharp **up/down routability threshold** of Theorem 4.2 --
  ``R/2 = (N_l (ln C(N_1, 2) + x))^(1 / (2(l-1)))`` with success
  probability tending to ``exp(-exp(-x))``;
* its simplified form ``R = 2 (N_1 ln N_1)^(1 / (2(l-1)))`` used for
  sizing throughout the paper;
* maximum network sizes at a given radix/diameter for RFC, CFT, OFT and
  RRN (Section 4.3 formulas).

Everything here is arithmetic -- no topology is instantiated -- so the
functions run at any paper scale instantly and are cross-validated
against generated instances in the tests.
"""

from __future__ import annotations

import math

from ..topologies.fattree import cft_terminals
from ..topologies.oft import oft_order_for_radix, oft_terminals
from ..topologies.rrn import (  # noqa: F401 - re-exported helpers
    rrn_balanced_hosts,
    rrn_degree_for,
    rrn_switches_for_diameter,
)

__all__ = [
    "binom2",
    "updown_probability",
    "threshold_radix",
    "threshold_radix_simplified",
    "x_for_radix",
    "rfc_max_leaves",
    "rfc_max_terminals",
    "rfc_diameter",
    "cft_diameter",
    "oft_diameter",
    "rrn_diameter",
    "rrn_max_terminals",
    "scalability_point",
]

MAX_LEVELS = 16


def binom2(n: int) -> int:
    """``C(n, 2)`` -- leaf pairs."""
    return n * (n - 1) // 2


def updown_probability(x: float) -> float:
    """Limit probability of up/down routability at threshold offset ``x``.

    Theorem 4.2: ``P -> exp(-exp(-x))``; ``x = 0`` gives ``1/e``.
    """
    return math.exp(-math.exp(-x))


def threshold_radix(n1: int, levels: int, x: float = 0.0) -> float:
    """Exact Theorem 4.2 threshold radix for a radix-regular RFC.

    ``R = 2 (N_l (ln C(N_1, 2) + x))^(1 / (2(l-1)))`` with
    ``N_l = N_1 / 2``.
    """
    if levels < 2:
        raise ValueError("threshold needs at least 2 levels")
    if n1 < 2:
        raise ValueError("need at least two leaves")
    n_top = n1 / 2.0
    body = n_top * (math.log(binom2(n1)) + x)
    if body <= 0:
        raise ValueError(f"offset x={x} pushes the threshold below zero")
    return 2.0 * body ** (1.0 / (2 * (levels - 1)))


def threshold_radix_simplified(n1: int, levels: int) -> float:
    """The paper's simplified threshold ``2 (N_1 ln N_1)^(1/(2(l-1)))``."""
    if levels < 2:
        raise ValueError("threshold needs at least 2 levels")
    if n1 < 2:
        raise ValueError("need at least two leaves")
    return 2.0 * (n1 * math.log(n1)) ** (1.0 / (2 * (levels - 1)))


def x_for_radix(radix: float, n1: int, levels: int) -> float:
    """Invert :func:`threshold_radix`: offset ``x`` realized by ``radix``.

    Positive ``x`` means slack above the threshold (routability
    probability near 1), negative means below (near 0).
    """
    n_top = n1 / 2.0
    return (radix / 2.0) ** (2 * (levels - 1)) / n_top - math.log(binom2(n1))


def rfc_max_leaves(radix: int, levels: int) -> int:
    """Largest even ``N_1`` at the simplified threshold.

    Solves ``N_1 ln N_1 <= (R/2)^(2(l-1))`` by bisection; e.g.
    ``rfc_max_leaves(36, 3)`` is slightly above 11,254 (paper §4.2).
    """
    half = radix / 2.0
    target = half ** (2 * (levels - 1))
    if 2 * math.log(2) > target:
        return 0
    lo, hi = 2, 4
    while hi * math.log(hi) <= target:
        hi *= 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if mid * math.log(mid) <= target:
            lo = mid
        else:
            hi = mid - 1
    # Round *up* to even: the threshold is "slightly above" the real
    # solution (paper: N1 ~ 11,254 for R=36, l=3, where the floor is
    # 11,253).
    return lo + (lo % 2)


def rfc_max_terminals(radix: int, levels: int) -> int:
    """Compute-node capacity at the threshold: ``N_1 * R/2``."""
    return rfc_max_leaves(radix, levels) * (radix // 2)


# ----------------------------------------------------------------------
# Minimum achievable diameter at a given size (Figure 5 curves)
# ----------------------------------------------------------------------

def rfc_diameter(radix: int, terminals: int) -> int:
    """Smallest diameter ``2(l-1)`` of an up/down routable RFC.

    The RFC with ``l`` levels holds up to
    :func:`rfc_max_terminals(radix, l)` compute nodes.
    """
    if terminals <= radix:
        return 2  # a 2-level RFC handles trivially small networks too
    for levels in range(2, MAX_LEVELS):
        if rfc_max_terminals(radix, levels) >= terminals:
            return 2 * (levels - 1)
    raise ValueError(f"radix {radix} cannot reach {terminals} terminals")


def cft_diameter(radix: int, terminals: int) -> int:
    """Smallest diameter of a ``radix``-CFT with ``terminals`` nodes."""
    if terminals <= radix:
        return 0 if terminals <= radix else 2
    for levels in range(1, MAX_LEVELS):
        if cft_terminals(radix, levels) >= terminals:
            return 2 * (levels - 1)
    raise ValueError(f"radix {radix} cannot reach {terminals} terminals")


def oft_diameter(radix: int, terminals: int) -> int:
    """Smallest diameter of an OFT built from radix-``radix`` switches."""
    q = oft_order_for_radix(radix)
    for levels in range(2, MAX_LEVELS):
        if oft_terminals(q, levels) >= terminals:
            return 2 * (levels - 1)
    raise ValueError(f"radix {radix} cannot reach {terminals} terminals")


def rrn_diameter(radix: int, terminals: int) -> int:
    """Smallest diameter of a balanced RRN on radix-``radix`` switches.

    For each candidate diameter the radix is split into network/terminal
    ports per Section 4.3 and the maximal switch count checked against
    ``delta^D >= 2 N ln N``.
    """
    for diameter_ in range(1, 2 * MAX_LEVELS):
        if rrn_max_terminals(radix, diameter_) >= terminals:
            return diameter_
    raise ValueError(f"radix {radix} cannot reach {terminals} terminals")


def rrn_max_terminals(radix: int, diameter_: int) -> int:
    """Capacity of the balanced RRN at (radix, diameter)."""
    degree, hosts = rrn_degree_for(radix, diameter_)
    if degree < 3:
        return hosts + 1
    n = rrn_switches_for_diameter(degree, diameter_)
    return n * hosts


def scalability_point(topology: str, radix: int, levels: int) -> int:
    """Capacity T for a (topology, radix, levels) triple -- Figure 6.

    ``topology`` is one of ``cft``, ``rfc``, ``oft``, ``rrn``; levels
    map to diameter ``2(l-1)`` (for RRN the equivalent diameter is
    used).
    """
    kind = topology.lower()
    if kind == "cft":
        return cft_terminals(radix, levels)
    if kind == "rfc":
        return rfc_max_terminals(radix, levels)
    if kind == "oft":
        q = oft_order_for_radix(radix)
        return oft_terminals(q, levels)
    if kind == "rrn":
        diameter_ = 2 * (levels - 1)
        if diameter_ < 1:
            raise ValueError("RRN needs diameter >= 1")
        return rrn_max_terminals(radix, diameter_)
    raise ValueError(f"unknown topology kind {topology!r}")


def expected_attempts(x: float) -> float:
    """Expected RFC generations until an up/down routable one (1/P)."""
    return 1.0 / updown_probability(x)
