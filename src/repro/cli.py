"""Command-line interface: ``repro-rfc`` / ``python -m repro``.

Subcommands
-----------
``generate``
    Build a topology (rfc / cft / oft / rrn / kary), print its summary
    and optionally verify up/down routability.
``analyze``
    Structural report for an RFC: threshold offset, diameter,
    bisection bounds, generation attempts.
``simulate``
    One cycle-level simulation run (topology, traffic, load).
``workload``
    One open-loop flow workload run (poisson-mix / rpc / shuffle /
    incast) with an FCT percentile table.
``experiment``
    Regenerate a paper table/figure by id (fig5, tab3, ... or 'all').
``scenarios``
    Print the Section 5 cost scenarios.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rfc",
        description=(
            "Random Folded Clos topologies: generation, analysis, "
            "simulation and paper-experiment reproduction (HPCA 2017)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="build a topology and summarize it")
    gen.add_argument(
        "topology", choices=["rfc", "cft", "oft", "rrn", "kary"]
    )
    gen.add_argument("--radix", type=int, default=12)
    gen.add_argument("--levels", type=int, default=3)
    gen.add_argument("--leaves", type=int, default=0,
                     help="RFC leaf switches (default: Theorem 4.2 maximum)")
    gen.add_argument("--order", type=int, default=0,
                     help="OFT order q (default: from radix)")
    gen.add_argument("--switches", type=int, default=64,
                     help="RRN switch count")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--check-updown", action="store_true")
    gen.add_argument("--packed", action="store_true",
                     help="RFC only: build the array-native "
                          "PackedFoldedClos via the batched "
                          "Steger-Wormald generator and report "
                          "generation time, peak memory and a "
                          "strong-expansion summary")
    gen.add_argument("--terminals", type=int, default=0, metavar="N",
                     help="with --packed: target terminal count; leaf "
                          "count is derived as the smallest even N1 "
                          "with N1 * R/2 >= N (overrides --leaves)")

    ana = sub.add_parser("analyze", help="structural analysis of an RFC")
    ana.add_argument("--radix", type=int, default=12)
    ana.add_argument("--levels", type=int, default=3)
    ana.add_argument("--leaves", type=int, default=0)
    ana.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser("simulate", help="one cycle-level simulation run")
    sim.add_argument("topology", choices=["rfc", "cft"])
    sim.add_argument("--radix", type=int, default=8)
    sim.add_argument("--levels", type=int, default=3)
    sim.add_argument("--leaves", type=int, default=32)
    sim.add_argument("--traffic", default="uniform",
                     choices=["uniform", "random-pairing", "fixed-random"])
    sim.add_argument("--load", type=float, default=0.5)
    sim.add_argument("--cycles", type=int, default=2_000)
    sim.add_argument("--warmup", type=int, default=500)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--engine",
                     choices=["fast", "reference", "vectorized"],
                     default="fast",
                     help="cycle-level engine: 'fast' (precomputed-route "
                          "fast path, default), 'vectorized' "
                          "(struct-of-arrays state with batched "
                          "candidate gathering) or 'reference' (the "
                          "oracle); results are bit-for-bit identical")
    sim.add_argument("--rng-mode",
                     choices=["exact", "relaxed"],
                     default="exact",
                     help="'exact' (default): one shared sequential RNG "
                          "stream, bit-for-bit reproducible across all "
                          "engines; 'relaxed': counter-based per-packet "
                          "RNG on the fully batched engine -- much "
                          "faster, deterministic per seed, but NOT "
                          "bit-for-bit comparable to exact-mode results "
                          "(statistical equivalence only; ignores "
                          "--engine)")
    sim.add_argument("--trace", metavar="PATH", default=None,
                     help="write a JSONL event trace (inject/hop/eject/"
                          "drop) to PATH")
    sim.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write the run's metrics registry (queue/credit "
                          "histograms, per-link loads, latency "
                          "percentiles) as JSON to PATH")

    wl = sub.add_parser(
        "workload", help="one open-loop flow workload run with FCT stats"
    )
    wl.add_argument("--pattern", default="poisson-mix",
                    choices=["poisson-mix", "rpc", "shuffle", "incast"])
    wl.add_argument("--topology", choices=["rfc", "cft"], default="rfc")
    wl.add_argument("--radix", type=int, default=8)
    wl.add_argument("--levels", type=int, default=3)
    wl.add_argument("--leaves", type=int, default=32)
    wl.add_argument("--load", type=float, default=0.5,
                    help="target offered load for Poisson workloads")
    wl.add_argument("--duration", type=int, default=2_000,
                    help="flow arrival window in cycles")
    wl.add_argument("--cycles", type=int, default=4_000,
                    help="measured cycles (horizon = warmup + cycles; "
                         "give completions headroom past --duration)")
    wl.add_argument("--warmup", type=int, default=0,
                    help="warmup cycles (workloads usually measure from "
                         "cycle 0; flows are explicit, not steady-state)")
    wl.add_argument("--seed", type=int, default=0)
    wl.add_argument("--fanin", type=int, default=8,
                    help="incast fan-in (workers per aggregator)")
    wl.add_argument("--rpc-size", type=int, default=4,
                    help="packets per rpc/incast flow")
    wl.add_argument("--engine",
                    choices=["fast", "reference", "vectorized"],
                    default="fast",
                    help="exact engine; the flow_complete stream is "
                         "bit-for-bit identical across all three")
    wl.add_argument("--rng-mode", choices=["exact", "relaxed"],
                    default="exact",
                    help="'relaxed': counter-RNG batched engine, "
                         "statistically equivalent only (ignores "
                         "--engine)")
    wl.add_argument("--trace", metavar="PATH", default=None,
                    help="write flow_complete JSONL records to PATH")

    exp = sub.add_parser("experiment", help="reproduce a paper table/figure")
    exp.add_argument("name", help="experiment id (fig5, tab3, ...) or 'all'")
    exp.add_argument("--full", action="store_true",
                     help="full-scale parameters (slow)")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--csv", metavar="DIR", default=None,
                     help="also write <DIR>/<name>.csv per experiment")
    exp.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes for simulation sweeps "
                          "(default 1 = serial; results are identical "
                          "for any worker count)")
    exp.add_argument("--cache-dir", metavar="DIR", default=None,
                     help="content-addressed result cache directory; "
                          "warm re-runs skip already-simulated points")
    exp.add_argument("--no-cache", action="store_true",
                     help="ignore --cache-dir (recompute everything)")
    exp.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="collect engine metrics on every simulated "
                          "point and write the merged per-scenario "
                          "exports as JSON to PATH")

    sub.add_parser("scenarios", help="print the Section 5 cost scenarios")

    rep = sub.add_parser(
        "report", help="full structural report for a topology file"
    )
    rep.add_argument("path", help="topology JSON from 'export'")
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--fault-trials", type=int, default=5)

    div = sub.add_parser(
        "diversity", help="path-diversity census of an RFC or CFT"
    )
    div.add_argument("topology", choices=["rfc", "cft", "oft"])
    div.add_argument("--radix", type=int, default=12)
    div.add_argument("--levels", type=int, default=3)
    div.add_argument("--leaves", type=int, default=0)
    div.add_argument("--pairs", type=int, default=200)
    div.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint",
        help="run the determinism/reproducibility checkers (repro.lint)",
        add_help=False,
    )
    lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to 'python -m repro.lint' "
             "(paths, --format, --baseline, --changed-only, ...)",
    )

    export = sub.add_parser(
        "export", help="generate a topology and write it to a file"
    )
    export.add_argument("topology", choices=["rfc", "cft", "oft", "rrn"])
    export.add_argument("output", help="output path (.json, .dot or .edges)")
    export.add_argument("--radix", type=int, default=12)
    export.add_argument("--levels", type=int, default=3)
    export.add_argument("--leaves", type=int, default=0)
    export.add_argument("--switches", type=int, default=64)
    export.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from .core.ancestors import has_updown_routing_of
    from .core.rfc import radix_regular_rfc
    from .core.theory import rfc_max_leaves
    from .topologies.fattree import commodity_fat_tree, k_ary_l_tree
    from .topologies.oft import oft_order_for_radix, orthogonal_fat_tree
    from .topologies.rrn import random_regular_network, rrn_degree_for

    if args.topology == "rfc" and args.packed:
        return _cmd_generate_packed(args)
    if args.packed:
        print("--packed is only supported for 'rfc'", file=sys.stderr)
        return 2
    if args.topology == "rfc":
        leaves = args.leaves or rfc_max_leaves(args.radix, args.levels)
        topo = radix_regular_rfc(args.radix, leaves, args.levels, rng=args.seed)
    elif args.topology == "cft":
        topo = commodity_fat_tree(args.radix, args.levels)
    elif args.topology == "kary":
        topo = k_ary_l_tree(args.radix // 2, args.levels)
    elif args.topology == "oft":
        q = args.order or oft_order_for_radix(args.radix)
        topo = orthogonal_fat_tree(q, args.levels)
    else:
        degree, hosts = rrn_degree_for(args.radix, 2 * (args.levels - 1))
        topo = random_regular_network(args.switches, degree, hosts,
                                      rng=args.seed)
        print(f"{topo.name}: T={topo.num_terminals} switches="
              f"{topo.num_switches} links={topo.num_links} "
              f"ports={topo.num_ports}")
        return 0

    print(f"{topo.name}: T={topo.num_terminals} levels={topo.level_sizes} "
          f"links={topo.num_links} ports={topo.num_ports} "
          f"radix-regular={topo.is_radix_regular()}")
    if args.check_updown:
        from .core.ancestors import has_updown_routing_of as check

        print(f"up/down routable: {check(topo)}")
    return 0


def _cmd_generate_packed(args: argparse.Namespace) -> int:
    """``generate rfc --packed``: the extreme-scale array-native path.

    Reproduces the ``extreme_scale`` bench section interactively:
    generation wall time, ancestor-analysis wall time, peak RSS and a
    strong-expansion summary for an RFC sized by ``--terminals`` (or
    ``--leaves`` / the Theorem 4.2 maximum).
    """
    import resource
    import time

    from .core.ancestors import sweeper_of
    from .core.expansion import strong_expansion_limit
    from .core.theory import rfc_max_leaves, threshold_radix, x_for_radix
    from .topologies.packed import packed_radix_regular_rfc

    half = args.radix // 2
    if args.terminals:
        leaves = -(-args.terminals // half)
        leaves += leaves % 2
    else:
        leaves = args.leaves or rfc_max_leaves(args.radix, args.levels)

    start = time.perf_counter()
    topo = packed_radix_regular_rfc(
        args.radix, leaves, args.levels, rng=args.seed
    )
    generation_s = time.perf_counter() - start

    start = time.perf_counter()
    sweeper = sweeper_of(topo)
    fraction = sweeper.reachable_fraction()
    analysis_s = time.perf_counter() - start
    # ru_maxrss is KiB on Linux.
    peak_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024

    max_leaves = strong_expansion_limit(args.radix, args.levels)
    print(f"{topo.name}: T={topo.num_terminals:,} levels={topo.level_sizes} "
          f"links={topo.num_links:,} ports={topo.num_ports:,} "
          f"radix-regular={topo.is_radix_regular()}")
    print(f"  generation:           {generation_s:.3f} s "
          f"(batched Steger-Wormald, packed CSR)")
    print(f"  ancestor analysis:    {analysis_s:.3f} s "
          f"(reachable fraction {fraction:.6f}, "
          f"up/down routable: {fraction >= 1.0})")
    print(f"  peak RSS:             {peak_mib:.0f} MiB")
    print(f"  strong expansion:     N1={leaves:,} of {max_leaves:,} max "
          f"(threshold radix {threshold_radix(leaves, args.levels):.2f}, "
          f"offset x={x_for_radix(args.radix, leaves, args.levels):+.3f})")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .core.rfc import rfc_with_updown
    from .core.theory import (
        rfc_max_leaves,
        threshold_radix,
        updown_probability,
        x_for_radix,
    )
    from .graphs.bisection import rfc_normalized_bisection
    from .graphs.metrics import leaf_diameter

    leaves = args.leaves or rfc_max_leaves(args.radix, args.levels)
    x = x_for_radix(args.radix, leaves, args.levels)
    print(f"RFC(R={args.radix}, N1={leaves}, l={args.levels})")
    print(f"  terminals:          {leaves * (args.radix // 2):,}")
    print(f"  threshold radix:    {threshold_radix(leaves, args.levels):.2f}")
    print(f"  threshold offset x: {x:+.3f}")
    print(f"  P(up/down):         {updown_probability(x):.4f}")
    print(f"  normalized bisection (Bollobas): "
          f"{rfc_normalized_bisection(args.radix, args.levels):.3f}")
    topo, attempts = rfc_with_updown(args.radix, leaves, args.levels,
                                     rng=args.seed)
    leaf_ids = [topo.switch_id(0, i) for i in range(topo.num_leaves)]
    print(f"  generated in {attempts} attempt(s); leaf diameter "
          f"{leaf_diameter(topo.adjacency(), leaf_ids)} "
          f"(bound {2 * (args.levels - 1)})")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .core.rfc import rfc_with_updown
    from .obs import (
        MetricsObserver,
        MultiObserver,
        TraceWriter,
        TracingObserver,
    )
    from .simulation.config import SimulationParams
    from .simulation.engine import simulate
    from .simulation.traffic import make_traffic
    from .topologies.fattree import commodity_fat_tree

    if args.topology == "cft":
        topo = commodity_fat_tree(args.radix, args.levels)
    else:
        topo, _ = rfc_with_updown(args.radix, args.leaves, args.levels,
                                  rng=args.seed)
    relaxed = getattr(args, "rng_mode", "exact") == "relaxed"
    if relaxed:
        # Loud, up-front, and on stderr: numbers produced in this mode
        # are deterministic for the seed but not comparable bit-for-bit
        # with exact-mode runs (or with the paper pins).
        print(
            "WARNING: --rng-mode relaxed is NOT bit-for-bit "
            "reproducible against exact-mode runs; results are only "
            "statistically equivalent (see docs/PERFORMANCE.md). "
            "Publishable numbers should use --rng-mode exact.",
            file=sys.stderr,
        )
    params = SimulationParams(
        measure_cycles=args.cycles,
        warmup_cycles=args.warmup,
        seed=args.seed,
        # Relaxed mode has exactly one engine; the selection knob only
        # applies to the exact engines.
        engine="" if relaxed else args.engine,
        rng_mode="relaxed" if relaxed else "exact",
    )
    traffic = make_traffic(args.traffic, topo.num_terminals,
                           rng=args.seed + 101)

    observers = []
    metrics_obs = writer = None
    if args.metrics_out:
        metrics_obs = MetricsObserver()
        observers.append(metrics_obs)
    if args.trace:
        writer = TraceWriter(args.trace)
        observers.append(TracingObserver(writer))
    observer = None
    if len(observers) == 1:
        observer = observers[0]
    elif observers:
        observer = MultiObserver(observers)

    result = simulate(topo, traffic, args.load, params, observer=observer)
    print(result.row())
    print(f"  delivered {result.delivered_packets:,} packets, "
          f"avg hops {result.avg_hops:.2f}, "
          f"max latency {result.max_latency}")
    if writer is not None:
        writer.close()
        print(f"  trace: {writer.written:,} events -> {args.trace}"
              + (f" ({writer.dropped:,} dropped)" if writer.dropped else ""))
    if metrics_obs is not None:
        export = metrics_obs.export()
        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(export, indent=1, sort_keys=True))
        counters = export["counters"]
        print(f"  metrics: {counters.get('inject.packets', 0):,} injected / "
              f"{counters.get('eject.packets', 0):,} ejected -> "
              f"{args.metrics_out}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from .core.rfc import rfc_with_updown
    from .obs import TraceWriter
    from .simulation.config import SimulationParams
    from .topologies.fattree import commodity_fat_tree
    from .workloads import make_workload, run_workload

    if args.topology == "cft":
        topo = commodity_fat_tree(args.radix, args.levels)
    else:
        topo, _ = rfc_with_updown(args.radix, args.leaves, args.levels,
                                  rng=args.seed)
    relaxed = args.rng_mode == "relaxed"
    if relaxed:
        print(
            "WARNING: --rng-mode relaxed is NOT bit-for-bit "
            "reproducible against exact-mode runs; FCT distributions "
            "are only statistically equivalent.",
            file=sys.stderr,
        )
    params = SimulationParams(
        measure_cycles=args.cycles,
        warmup_cycles=args.warmup,
        seed=args.seed,
        engine="" if relaxed else args.engine,
        rng_mode="relaxed" if relaxed else "exact",
    )
    workload = make_workload(
        args.pattern,
        topo.num_terminals,
        seed=args.seed + 101,
        load=args.load,
        duration=args.duration,
        packet_phits=params.packet_phits,
        fanin=args.fanin,
        rpc_size=args.rpc_size,
    )
    writer = TraceWriter(args.trace) if args.trace else None
    result = run_workload(topo, workload, params, trace_writer=writer)
    if writer is not None:
        writer.close()
    fs = result.flow_stats
    print(f"{topo.name}  workload={args.pattern}  "
          f"engine={params.engine_name}  seed={args.seed}")
    print(f"  flows: {fs['flows_completed']:,}/{fs['flows_total']:,} "
          f"completed ({fs['flows_dropped']} dropped), "
          f"{fs['packets']:,} packets delivered")
    print(f"  accepted load {result.accepted_load:.3f} "
          f"(offered {result.offered_load:.3f})")
    print("  FCT cycles      mean      p50      p99     p999      max")
    print(f"            {fs['fct_mean']:9.1f} {fs['fct_p50']:8.1f} "
          f"{fs['fct_p99']:8.1f} {fs['fct_p999']:8.1f} "
          f"{fs['fct_max']:8.1f}")
    print(f"  slowdown (vs ideal serialization): "
          f"mean {fs['slowdown_mean']:.2f}  p50 {fs['slowdown_p50']:.2f}  "
          f"p99 {fs['slowdown_p99']:.2f}")
    if writer is not None:
        print(f"  trace: {writer.written:,} flow_complete records -> "
              f"{args.trace}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import contextlib
    import json
    from pathlib import Path

    from . import obs
    from .exec import using_executor
    from .experiments import EXPERIMENTS, run_experiment

    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    metrics_scope = (
        obs.using_metrics(True) if args.metrics_out
        else contextlib.nullcontext()
    )
    with metrics_scope, using_executor(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    ):
        for name in names:
            table = run_experiment(name, quick=not args.full, seed=args.seed)
            print(table.render())
            print()
            if args.csv:
                directory = Path(args.csv)
                directory.mkdir(parents=True, exist_ok=True)
                (directory / f"{name}.csv").write_text(table.to_csv())
        if args.metrics_out:
            path = Path(args.metrics_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            exports = obs.collected()
            path.write_text(json.dumps(exports, indent=1, sort_keys=True))
            print(f"metrics: {len(exports)} sweep export(s) -> {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import analyze_network
    from .topologies.io import load

    network = load(args.path)
    report = analyze_network(
        network, rng=args.seed, fault_trials=args.fault_trials
    )
    print(report.render())
    return 0


def _cmd_diversity(args: argparse.Namespace) -> int:
    from .core.rfc import rfc_with_updown
    from .core.theory import rfc_max_leaves
    from .routing.diversity import path_diversity_census
    from .topologies.fattree import commodity_fat_tree
    from .topologies.oft import oft_order_for_radix, orthogonal_fat_tree

    if args.topology == "rfc":
        leaves = args.leaves or min(rfc_max_leaves(args.radix, args.levels),
                                    200)
        topo, _ = rfc_with_updown(args.radix, leaves - leaves % 2,
                                  args.levels, rng=args.seed)
    elif args.topology == "cft":
        topo = commodity_fat_tree(args.radix, args.levels)
    else:
        topo = orthogonal_fat_tree(
            oft_order_for_radix(args.radix), args.levels
        )
    census = path_diversity_census(topo, sample_pairs=args.pairs,
                                   rng=args.seed)
    print(f"{topo.name}: {census.describe()}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .core.rfc import rfc_with_updown
    from .core.theory import rfc_max_leaves
    from .topologies.fattree import commodity_fat_tree
    from .topologies.io import save, to_dot, to_edge_list
    from .topologies.oft import oft_order_for_radix, orthogonal_fat_tree
    from .topologies.rrn import random_regular_network, rrn_degree_for

    if args.topology == "rfc":
        leaves = args.leaves or rfc_max_leaves(args.radix, args.levels)
        topo, _ = rfc_with_updown(args.radix, leaves, args.levels,
                                  rng=args.seed)
    elif args.topology == "cft":
        topo = commodity_fat_tree(args.radix, args.levels)
    elif args.topology == "oft":
        topo = orthogonal_fat_tree(
            oft_order_for_radix(args.radix), args.levels
        )
    else:
        degree, hosts = rrn_degree_for(args.radix, 2 * (args.levels - 1))
        topo = random_regular_network(args.switches, degree, hosts,
                                      rng=args.seed)
    path = Path(args.output)
    if path.suffix == ".json":
        save(topo, path)
    elif path.suffix == ".dot":
        path.write_text(to_dot(topo))
    elif path.suffix == ".edges":
        path.write_text(to_edge_list(topo))
    else:
        print(f"unknown output format {path.suffix!r}; "
              "use .json, .dot or .edges", flush=True)
        return 2
    print(f"wrote {topo.name} ({topo.num_links} links) to {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.runner import main as lint_main

    return lint_main(list(args.lint_args))


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .experiments.sec5_scenarios import run

    print(run(quick=True).render())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "analyze": _cmd_analyze,
        "simulate": _cmd_simulate,
        "workload": _cmd_workload,
        "experiment": _cmd_experiment,
        "scenarios": _cmd_scenarios,
        "lint": _cmd_lint,
        "report": _cmd_report,
        "diversity": _cmd_diversity,
        "export": _cmd_export,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
