"""Replicated simulation runs (the paper averages >= 5 per point).

Each replication re-seeds the engine (and the traffic pattern's random
pairing/targets) deterministically from a base seed, so an aggregate is
itself reproducible.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass

from ..topologies.base import DirectNetwork, FoldedClos
from .config import SimulationParams
from .engine import simulate
from .stats import SimResult
from .traffic import make_traffic

__all__ = ["AggregateResult", "replicated_point"]


@dataclass(frozen=True)
class AggregateResult:
    """Mean and spread of a replicated simulation point."""

    offered_load: float
    replications: int
    accepted_mean: float
    accepted_stdev: float
    latency_mean: float
    latency_stdev: float
    traffic: str
    topology: str
    results: tuple[SimResult, ...]

    def row(self) -> str:
        return (
            f"{self.topology:<28} {self.traffic:<15} "
            f"load={self.offered_load:5.2f} "
            f"accepted={self.accepted_mean:6.3f}+-{self.accepted_stdev:5.3f} "
            f"latency={self.latency_mean:8.1f}+-{self.latency_stdev:6.1f}"
        )


def replicated_point(
    topo: FoldedClos | DirectNetwork,
    traffic_name: str,
    load: float,
    params: SimulationParams | None = None,
    replications: int = 5,
) -> AggregateResult:
    """Average ``replications`` independent runs of one load point."""
    if replications < 1:
        raise ValueError("need at least one replication")
    params = params or SimulationParams()
    results: list[SimResult] = []
    for i in range(replications):
        seed = params.seed + 1_000_003 * i
        traffic = make_traffic(traffic_name, topo.num_terminals, rng=seed + 1)
        results.append(
            simulate(topo, traffic, load, params.scaled(seed=seed))
        )
    accepted = [r.accepted_load for r in results]
    latencies = [r.avg_latency for r in results if not math.isnan(r.avg_latency)]
    return AggregateResult(
        offered_load=load,
        replications=replications,
        accepted_mean=statistics.fmean(accepted),
        accepted_stdev=statistics.stdev(accepted) if len(accepted) > 1 else 0.0,
        latency_mean=statistics.fmean(latencies) if latencies else float("nan"),
        latency_stdev=(
            statistics.stdev(latencies) if len(latencies) > 1 else 0.0
        ),
        traffic=traffic_name,
        topology=getattr(topo, "name", "network"),
        results=tuple(results),
    )
