"""Replicated simulation runs (the paper averages >= 5 per point).

Each replication re-seeds the engine (and the traffic pattern's random
pairing/targets) deterministically from a base seed, so an aggregate is
itself reproducible.  The derivation is the repo-wide contract

* engine seed of replication ``i``:  ``base_seed + 1_000_003 * i``
* traffic seed of replication ``i``: engine seed ``+ 1``

and is preserved bit-for-bit whether the replications run serially,
across a process pool, or are replayed from the on-disk result cache
(see :mod:`repro.exec`): every replication is a self-contained task,
so worker scheduling order cannot leak into any result.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Sequence

from ..topologies.base import DirectNetwork, FoldedClos
from .config import SimulationParams
from .stats import SimResult, pooled_latency_percentile

__all__ = [
    "AggregateResult",
    "aggregate_replications",
    "replication_seed",
    "replicated_point",
]

#: Stride between consecutive replication seeds (a prime far larger
#: than any replication count, so derived seeds never collide).
SEED_STRIDE = 1_000_003


def replication_seed(base_seed: int, i: int) -> int:
    """Engine seed of replication ``i`` (the determinism contract)."""
    return base_seed + SEED_STRIDE * i


@dataclass(frozen=True)
class AggregateResult:
    """Mean and spread of a replicated simulation point."""

    offered_load: float
    replications: int
    accepted_mean: float
    accepted_stdev: float
    latency_mean: float
    latency_stdev: float
    traffic: str
    topology: str
    results: tuple[SimResult, ...]
    #: Pooled latency percentiles over the *combined* measured sample
    #: of every replication.  ``latency_hist`` is a cache-stripped
    #: side channel, so results replayed from the cache pool to NaN;
    #: like their source the percentiles are excluded from equality
    #: (warm and cold aggregates of the same point compare equal).
    latency_p50: float = field(default=float("nan"), compare=False)
    latency_p99: float = field(default=float("nan"), compare=False)
    latency_p999: float = field(default=float("nan"), compare=False)

    def row(self) -> str:
        return (
            f"{self.topology:<28} {self.traffic:<15} "
            f"load={self.offered_load:5.2f} "
            f"accepted={self.accepted_mean:6.3f}+-{self.accepted_stdev:5.3f} "
            f"latency={self.latency_mean:8.1f}+-{self.latency_stdev:6.1f}"
        )


def aggregate_replications(
    results: Sequence[SimResult],
    offered_load: float,
    traffic_name: str,
    topology_name: str,
) -> AggregateResult:
    """Fold per-replication results into one :class:`AggregateResult`.

    Replications that delivered no measured packet report NaN latency
    and are excluded from the latency moments; when *no* replication
    has a valid latency both latency moments are NaN (a saturated or
    degenerate point must not masquerade as zero-variance), and a
    single valid latency yields stdev 0.0, mirroring
    ``accepted_stdev``'s single-sample guard.

    Latency percentiles are **pooled**, not averaged: the exact
    per-replication histograms are merged and the percentile taken
    over the combined sample via
    :func:`~repro.simulation.stats.pooled_latency_percentile`.  A mean
    of per-replication p99s is *not* the p99 of the pooled sample (the
    regression test in ``tests/test_workloads.py`` demonstrates the
    difference), so no such shortcut is taken here.
    """
    if not results:
        raise ValueError("need at least one replication result")
    hists = [r.latency_hist for r in results]
    accepted = [r.accepted_load for r in results]
    latencies = [r.avg_latency for r in results if not math.isnan(r.avg_latency)]
    if latencies:
        latency_mean = statistics.fmean(latencies)
        latency_stdev = (
            statistics.stdev(latencies) if len(latencies) > 1 else 0.0
        )
    else:
        latency_mean = float("nan")
        latency_stdev = float("nan")
    return AggregateResult(
        offered_load=offered_load,
        replications=len(results),
        accepted_mean=statistics.fmean(accepted),
        accepted_stdev=statistics.stdev(accepted) if len(accepted) > 1 else 0.0,
        latency_mean=latency_mean,
        latency_stdev=latency_stdev,
        traffic=traffic_name,
        topology=topology_name,
        results=tuple(results),
        latency_p50=pooled_latency_percentile(hists, 0.50),
        latency_p99=pooled_latency_percentile(hists, 0.99),
        latency_p999=pooled_latency_percentile(hists, 0.999),
    )


def replicated_point(
    topo: FoldedClos | DirectNetwork,
    traffic_name: str,
    load: float,
    params: SimulationParams | None = None,
    replications: int = 5,
    executor=None,
    fast_path: bool | None = None,
) -> AggregateResult:
    """Average ``replications`` independent runs of one load point.

    ``executor`` is a :class:`repro.exec.Executor`; when None the
    ambient executor is used (serial and cacheless unless the caller
    or CLI configured otherwise).  ``fast_path`` overrides
    ``params.fast_path`` for every replication when given; because all
    engines are bit-for-bit identical, the choice affects wall
    time only -- aggregates and cache hits are unchanged.
    """
    from .. import obs
    from ..exec import get_executor
    from ..exec.executor import SimTask

    if replications < 1:
        raise ValueError("need at least one replication")
    params = params or SimulationParams()
    if fast_path is not None and fast_path != params.fast_path:
        params = params.scaled(fast_path=fast_path)
    collect = obs.metrics_enabled()
    tasks = []
    for i in range(replications):
        seed = replication_seed(params.seed, i)
        tasks.append(
            SimTask(
                topo=topo,
                traffic_name=traffic_name,
                load=load,
                params=params.scaled(seed=seed),
                traffic_seed=seed + 1,
                collect_metrics=collect,
            )
        )
    runner = executor if executor is not None else get_executor()
    results, _ = runner.run_sim_tasks(tasks)
    topology_name = getattr(topo, "name", "network")
    if collect:
        from ..exec import merged_metrics

        obs.record(
            f"point:{topology_name}:{traffic_name}",
            merged_metrics(results),
        )
    return aggregate_replications(
        results,
        offered_load=load,
        traffic_name=traffic_name,
        topology_name=topology_name,
    )
