"""Synthetic traffic patterns of the paper's Section 6.

Adapted (as in the paper) from the Blue Gene/Q evaluation suite:

* **uniform** -- every packet draws an independent uniformly random
  destination (excluding the source terminal);
* **random-pairing** -- terminals are matched into fixed pairs at the
  start and only talk to their partner (a random permutation built from
  transpositions, the paper's permutation-style adversarial load);
* **fixed-random** -- every terminal picks one fixed uniformly random
  destination (not itself) at the start; several sources may pick the
  same destination, creating hot spots.

Patterns are deterministic given their RNG seed, so simulator runs are
reproducible and the same pattern instance can be replayed against
different topologies of equal terminal count.
"""

from __future__ import annotations

import random

__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "RandomPairingTraffic",
    "FixedRandomTraffic",
    "LocalityTraffic",
    "ShuffleTraffic",
    "make_traffic",
    "TRAFFIC_NAMES",
    "EXTENDED_TRAFFIC_NAMES",
]

TRAFFIC_NAMES = ("uniform", "random-pairing", "fixed-random")
EXTENDED_TRAFFIC_NAMES = TRAFFIC_NAMES + ("locality", "shuffle")


class TrafficPattern:
    """Destination generator over ``num_terminals`` endpoints."""

    name = "abstract"

    def __init__(self, num_terminals: int) -> None:
        if num_terminals < 2:
            raise ValueError("traffic needs at least two terminals")
        self.num_terminals = num_terminals

    def destination(self, source: int, rng: random.Random) -> int:
        """Destination terminal for the next packet of ``source``."""
        raise NotImplementedError


class UniformTraffic(TrafficPattern):
    """Independent uniformly random destination per packet."""

    name = "uniform"

    def destination(self, source: int, rng: random.Random) -> int:
        dest = rng.randrange(self.num_terminals - 1)
        return dest if dest < source else dest + 1


class RandomPairingTraffic(TrafficPattern):
    """Fixed random pairing: each terminal talks to its partner.

    With an odd terminal count one terminal is left unpaired and stays
    silent (it still receives nothing), matching the usual handling.
    """

    name = "random-pairing"

    def __init__(self, num_terminals: int, rng: random.Random | int | None = None) -> None:
        super().__init__(num_terminals)
        rand = rng if isinstance(rng, random.Random) else random.Random(rng)
        order = list(range(num_terminals))
        rand.shuffle(order)
        self.partner: list[int | None] = [None] * num_terminals
        for i in range(0, num_terminals - 1, 2):
            a, b = order[i], order[i + 1]
            self.partner[a] = b
            self.partner[b] = a

    def destination(self, source: int, rng: random.Random) -> int:
        partner = self.partner[source]
        if partner is None:
            raise LookupError(f"terminal {source} is unpaired and silent")
        return partner

    def is_silent(self, source: int) -> bool:
        return self.partner[source] is None


class FixedRandomTraffic(TrafficPattern):
    """Each source keeps one random destination for the whole run."""

    name = "fixed-random"

    def __init__(self, num_terminals: int, rng: random.Random | int | None = None) -> None:
        super().__init__(num_terminals)
        rand = rng if isinstance(rng, random.Random) else random.Random(rng)
        self.target: list[int] = []
        for source in range(num_terminals):
            dest = rand.randrange(num_terminals - 1)
            self.target.append(dest if dest < source else dest + 1)

    def destination(self, source: int, rng: random.Random) -> int:
        return self.target[source]


class LocalityTraffic(TrafficPattern):
    """Rack-local bias: intra-group with probability ``locality``.

    Models the cross-rack-optimized MapReduce placement the paper's
    introduction cites: a fraction of traffic stays within the source's
    group (rack / leaf switch), the rest is uniform.  ``group_size``
    should normally be the topology's ``hosts_per_leaf``.
    """

    name = "locality"

    def __init__(
        self,
        num_terminals: int,
        group_size: int = 4,
        locality: float = 0.7,
    ) -> None:
        super().__init__(num_terminals)
        if group_size < 1:
            raise ValueError("group_size must be positive")
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be a probability")
        self.group_size = group_size
        self.locality = locality

    def destination(self, source: int, rng: random.Random) -> int:
        group = source // self.group_size
        base = group * self.group_size
        members = min(self.group_size, self.num_terminals - base)
        if members > 1 and rng.random() < self.locality:
            dest = base + rng.randrange(members - 1)
            return dest if dest < source else dest + 1
        dest = rng.randrange(self.num_terminals - 1)
        return dest if dest < source else dest + 1


class ShuffleTraffic(TrafficPattern):
    """All-to-all shuffle in rotating waves (MapReduce shuffle phase).

    Wave ``w`` sends terminal ``i``'s packets to ``(i + w) mod T``;
    successive packets from one source advance its wave pointer, so
    over time every source spreads over every destination while at any
    instant the pattern is a clean permutation.
    """

    name = "shuffle"

    def __init__(self, num_terminals: int) -> None:
        super().__init__(num_terminals)
        self._wave = [1] * num_terminals

    def destination(self, source: int, rng: random.Random) -> int:
        offset = self._wave[source]
        self._wave[source] = offset % (self.num_terminals - 1) + 1
        return (source + offset) % self.num_terminals


def make_traffic(
    name: str,
    num_terminals: int,
    rng: random.Random | int | None = None,
) -> TrafficPattern:
    """Factory by paper name: uniform / random-pairing / fixed-random."""
    key = name.lower().replace("_", "-")
    if key == "uniform":
        return UniformTraffic(num_terminals)
    if key == "random-pairing":
        return RandomPairingTraffic(num_terminals, rng=rng)
    if key == "fixed-random":
        return FixedRandomTraffic(num_terminals, rng=rng)
    if key == "locality":
        return LocalityTraffic(num_terminals)
    if key == "shuffle":
        return ShuffleTraffic(num_terminals)
    raise ValueError(
        f"unknown traffic {name!r}; expected one of "
        f"{EXTENDED_TRAFFIC_NAMES}"
    )
