"""Simulation parameters (paper Table 2).

The defaults reproduce the INSEE configuration the paper simulates
with: virtual cut-through flow control, 4 virtual channels, 4-packet
buffers, 16-phit packets, 1-cycle links, random output arbitration and
random up/down request mode, 10,000 measured cycles after a warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CACHE_KEY_EXCLUDED_FIELDS", "SimulationParams"]

#: Fields excluded from :func:`repro.exec.cache.cache_key`.  All three
#: exact engines are bit-for-bit identical, so *which* engine computed
#: a result must not split the cache key space -- a sweep run with the
#: vectorized engine has to hit entries written by the reference one.
#: ``rng_mode`` is deliberately **not** here: relaxed-mode results are
#: only statistically equivalent to exact ones, so they must never be
#: served from (or poison) an exact-mode cache entry.  Every other
#: field participates in the key; the RPR101/RPR105 lint passes
#: cross-check this declaration against the cache layer's actual
#: exclusions, so policy changes happen here, on the record.
CACHE_KEY_EXCLUDED_FIELDS = frozenset({"fast_path", "engine"})


@dataclass(frozen=True)
class SimulationParams:
    """Knobs of the cycle-driven simulator.

    Attributes
    ----------
    measure_cycles:
        Cycles of the statistics window (paper: 10,000).
    warmup_cycles:
        Cycles simulated before statistics start.
    virtual_channels:
        Input virtual channels per physical link (paper: 4) -- used
        against head-of-line blocking; up/down routing needs none for
        deadlock freedom.
    buffer_packets:
        Capacity of each virtual-channel buffer, in packets (paper: 4).
    packet_phits:
        Packet length in phits (paper: 16); links move 1 phit/cycle so
        one packet occupies a link for ``packet_phits`` cycles.
    link_latency:
        Head phit flight time in cycles (paper: 1).
    arbitration_iterations:
        Request/grant rounds per arbitration pass (paper: 1).  Extra
        iterations let inputs that lost (or requested a busy port)
        retry against the outputs still free in the same cycle,
        recovering some of the matching loss of single-iteration
        separable allocators.
    minimal_routing:
        When True (paper behaviour) up-hops are restricted to ports on
        a shortest up/down route; False permits any up-port that keeps
        the destination reachable (ablation knob).
    arbiter:
        How an output port picks among its requesters: ``"random"``
        (paper Table 2) or ``"rotating"`` -- an iSLIP-style
        round-robin pointer per output, which trades the random
        arbiter's statistical fairness for deterministic fairness.
    up_selection:
        How a head packet picks one output among its viable ECMP
        candidates when requesting arbitration: ``"random"`` (paper
        Table 2's up/down random request mode) or ``"adaptive"``
        (prefer the candidate with the most free downstream buffer
        slots -- a congestion-aware ablation).
    valiant:
        Route every packet through a uniformly random intermediate
        leaf before its destination (Valiant randomization, the
        mechanism dragonflies need for adversarial traffic -- paper
        Section 3 argues RFCs beat its 50% ceiling *without* it; this
        knob exists to demonstrate that).  The two phases use disjoint
        halves of the virtual channels for deadlock freedom, so it
        needs ``virtual_channels >= 2``.  Folded Clos only.
    fast_path:
        Run through the precomputed-route engine
        (:mod:`repro.simulation.fastpath`): per-destination output
        candidates are flattened into CSR index arrays and the event
        heap is replaced by a calendar-queue wheel.  The fast path is
        bit-for-bit identical to the reference engine (same RNG call
        order, same :class:`~repro.simulation.stats.SimResult`, same
        observer callbacks), so this knob trades nothing but wall
        time; ``False`` selects the reference engine, kept as the
        oracle for the differential test suite.  Because results are
        identical, this field is excluded from
        :func:`repro.exec.cache.cache_key`.
    engine:
        Explicit engine selection: ``"reference"``, ``"fast"`` or
        ``"vectorized"`` (:mod:`repro.accel.sim`, struct-of-arrays
        state with batched per-cycle candidate gathering).  The empty
        default defers to ``fast_path`` so configurations predating
        this knob keep their meaning.  All three engines are
        bit-for-bit identical (enforced by the three-way conformance
        matrix in ``tests/test_fastpath_differential.py``), so this
        field is also excluded from the result-cache key.
    rng_mode:
        ``"exact"`` (default) consumes one shared sequential
        ``random.Random`` stream, making every engine bit-for-bit
        reproducible -- publishable numbers use this.  ``"relaxed"``
        switches to the counter-based per-packet RNG
        (:mod:`repro.accel.rng`) and the fully batched relaxed engine
        (:mod:`repro.accel.relaxed`): results are deterministic for a
        given seed but **not** bit-for-bit comparable to exact-mode
        runs -- only statistically equivalent, which
        ``tests/test_relaxed_rng_equivalence.py`` enforces.  Because
        results differ, this field **participates in the result-cache
        key** (unlike ``engine``/``fast_path``); the RPR105 lint pass
        guards that.  Relaxed mode supports only the paper's Table 2
        arbitration defaults (``arbiter="random"``,
        ``up_selection="random"``) and refuses exact-only ``engine``
        selections.
    seed:
        Master RNG seed (traffic, ECMP choices, arbitration).
    """

    measure_cycles: int = 10_000
    warmup_cycles: int = 2_000
    virtual_channels: int = 4
    buffer_packets: int = 4  # repro: allow-RPR101 -- consumed in Simulator.__init__'s buffer construction; the fast/vectorized engines reuse that pre-built state
    packet_phits: int = 16
    link_latency: int = 1
    minimal_routing: bool = True
    arbitration_iterations: int = 1
    arbiter: str = "random"
    up_selection: str = "random"
    valiant: bool = False
    fast_path: bool = True  # repro: allow-RPR101 -- engine-selection knob read by the simulate() dispatcher, never by an engine; excluded from the cache key because results are identical
    engine: str = ""  # repro: allow-RPR101 -- engine-selection knob read by the simulate() dispatcher, never by an engine; excluded from the cache key because results are identical
    rng_mode: str = "exact"  # repro: allow-RPR101 -- mode-selection knob read by the run() dispatcher via engine_name; the exact engines predate it by definition, and unlike engine/fast_path it stays IN the cache key (results are not bit-for-bit)
    seed: int = 0  # repro: allow-RPR101 -- consumed in Simulator.__init__'s RNG construction, shared verbatim by all three engines

    def __post_init__(self) -> None:
        if self.measure_cycles < 1:
            raise ValueError("measure_cycles must be positive")
        if self.warmup_cycles < 0:
            raise ValueError("warmup_cycles cannot be negative")
        if self.virtual_channels < 1:
            raise ValueError("need at least one virtual channel")
        if self.buffer_packets < 1:
            raise ValueError("buffers must hold at least one packet")
        if self.packet_phits < 1:
            raise ValueError("packets must have at least one phit")
        if self.link_latency < 1:
            raise ValueError("link latency must be at least one cycle")
        if self.arbitration_iterations < 1:
            raise ValueError("need at least one arbitration iteration")
        if self.up_selection not in ("random", "adaptive"):
            raise ValueError(
                f"up_selection must be 'random' or 'adaptive', "
                f"got {self.up_selection!r}"
            )
        if self.arbiter not in ("random", "rotating"):
            raise ValueError(
                f"arbiter must be 'random' or 'rotating', "
                f"got {self.arbiter!r}"
            )
        if self.valiant and self.virtual_channels < 2:
            raise ValueError(
                "Valiant routing needs at least 2 virtual channels "
                "(one class per phase)"
            )
        if self.engine not in ("", "reference", "fast", "vectorized"):
            raise ValueError(
                f"engine must be 'reference', 'fast' or 'vectorized', "
                f"got {self.engine!r}"
            )
        if self.rng_mode not in ("exact", "relaxed"):
            raise ValueError(
                f"rng_mode must be 'exact' or 'relaxed', "
                f"got {self.rng_mode!r}"
            )
        if self.rng_mode == "relaxed":
            if self.engine in ("reference", "fast"):
                raise ValueError(
                    "rng_mode='relaxed' runs only on the batched relaxed "
                    f"engine; engine={self.engine!r} is exact-only"
                )
            if self.arbiter != "random" or self.up_selection != "random":
                raise ValueError(
                    "rng_mode='relaxed' supports only the paper's random "
                    "arbitration and random up-selection "
                    f"(got arbiter={self.arbiter!r}, "
                    f"up_selection={self.up_selection!r})"
                )

    @property
    def engine_name(self) -> str:
        """Resolved engine: ``rng_mode`` then ``engine`` then ``fast_path``."""
        if self.rng_mode == "relaxed":
            return "relaxed"
        if self.engine:
            return self.engine
        return "fast" if self.fast_path else "reference"

    @property
    def horizon(self) -> int:
        """Last simulated cycle."""
        return self.warmup_cycles + self.measure_cycles

    def scaled(self, **overrides) -> "SimulationParams":
        """Copy with selected fields replaced (convenience)."""
        from dataclasses import replace

        return replace(self, **overrides)
