"""Measurement collection for simulator runs.

Statistics follow the paper's reporting:

* **accepted load** -- delivered phits per terminal per cycle inside
  the measurement window, normalized so 1.0 means every compute node
  sinks one phit every cycle;
* **average latency** -- generation-to-tail-delivery cycles averaged
  over packets delivered inside the window (includes source queueing,
  so it diverges as the network saturates, as in Figures 8-10);
* auxiliary counters (injected/delivered packets, hop counts) used by
  tests and the experiment harness.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["SimStats", "SimResult", "pooled_latency_percentile"]

#: ``SimResult`` fields that are observations *about* a run rather
#: than the run's measurement identity: excluded from equality and
#: hashing, popped in :meth:`SimResult.core_dict` so cached payloads
#: never carry them.  The RPR101 result-coverage lint pass
#: cross-checks that every ``compare=False`` field is popped there.
_SIDE_CHANNEL_FIELDS = ("metrics", "latency_hist", "flow_stats")


def pooled_latency_percentile(hists, fraction: float) -> float:
    """Percentile over pooled per-replication latency histograms.

    ``hists`` is an iterable of ``SimResult.latency_hist`` payloads
    (sorted ``(latency, count)`` tuples; ``None`` entries -- cached or
    legacy results -- are skipped).  Pooling the exact integer counts
    and walking the merged distribution gives the percentile of the
    *combined* sample, matching
    :meth:`SimStats.latency_percentile`'s nearest-rank convention --
    the correct merge that a mean of per-replication percentiles is
    not (see ``tests/test_workloads.py::TestPercentileMerge``).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    pooled: Counter = Counter()
    for hist in hists:
        if hist:
            for latency, count in hist:
                pooled[latency] += count
    total = sum(pooled.values())
    if total == 0:
        return float("nan")
    target = min(total - 1, int(fraction * (total - 1)))
    seen = 0
    for latency in sorted(pooled):
        seen += pooled[latency]
        if seen > target:
            return float(latency)
    return float("nan")  # pragma: no cover - unreachable


@dataclass
class SimStats:
    """Mutable counters filled in by the engine during a run."""

    warmup: int
    horizon: int
    generated_packets: int = 0
    injected_packets: int = 0
    delivered_packets: int = 0
    measured_packets: int = 0
    measured_phits: int = 0
    measured_latency_sum: int = 0
    measured_hops_sum: int = 0
    max_latency: int = 0
    latencies: list[int] = field(default_factory=list)
    num_batches: int = 10
    batch_phits: list[int] = field(default_factory=list)

    def on_generated(self, time: int) -> None:
        self.generated_packets += 1

    def on_injected(self, time: int) -> None:
        self.injected_packets += 1

    def on_delivered(self, packet, time: int, packet_phits: int) -> None:
        self.delivered_packets += 1
        if time < self.warmup or time > self.horizon:
            return
        if not self.batch_phits:
            self.batch_phits = [0] * self.num_batches
        window = self.horizon - self.warmup
        bucket = min(
            self.num_batches - 1,
            (time - self.warmup) * self.num_batches // max(1, window),
        )
        self.batch_phits[bucket] += packet_phits
        latency = time - packet.created
        self.measured_packets += 1
        self.measured_phits += packet_phits
        self.measured_latency_sum += latency
        self.measured_hops_sum += packet.hops
        self.latencies.append(latency)
        if latency > self.max_latency:
            self.max_latency = latency

    def batch_accepted_loads(self, num_terminals: int) -> list[float]:
        """Per-batch normalized accepted load (batch-means method).

        Splitting the measurement window into equal batches gives a
        crude steady-state confidence signal: wildly differing batches
        mean the warm-up was too short or the run too small.
        """
        if not self.batch_phits:
            return []
        window = self.horizon - self.warmup
        batch_cycles = window / self.num_batches
        denom = num_terminals * batch_cycles
        if denom <= 0:
            # Degenerate window or terminal count: report zero load per
            # batch instead of raising ZeroDivisionError.
            return [0.0] * len(self.batch_phits)
        return [phits / denom for phits in self.batch_phits]

    def latency_percentile(self, fraction: float) -> float:
        """Latency percentile over measured packets (NaN when empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self.latencies:
            return float("nan")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
        return float(ordered[index])


@dataclass(frozen=True)
class SimResult:
    """Immutable summary of one simulation run.

    ``metrics`` optionally carries a :mod:`repro.obs` registry export
    (a plain sorted-key dict) when the run was instrumented; it is
    ``None`` for bare runs, excluded from equality so instrumented and
    bare runs of the same seed compare equal, and stripped before the
    result enters the on-disk cache.  ``latency_hist`` (exact sorted
    ``(latency, count)`` pairs over the measured window, enabling the
    correct pooled-percentile merge in
    :func:`repro.simulation.replication.aggregate_replications`) and
    ``flow_stats`` (the FCT summary a
    :class:`~repro.workloads.tracker.FlowTracker` produced for
    workload runs) follow the same side-channel policy.
    """

    offered_load: float
    accepted_load: float
    avg_latency: float
    avg_hops: float
    generated_packets: int
    delivered_packets: int
    measured_packets: int
    max_latency: int
    p50_latency: float
    p99_latency: float
    traffic: str
    topology: str
    unroutable_packets: int = 0
    metrics: dict | None = field(default=None, compare=False)
    latency_hist: tuple | None = field(default=None, compare=False)
    flow_stats: dict | None = field(default=None, compare=False)

    def __eq__(self, other: object) -> bool:
        # Empty measurement windows carry NaN latency moments; the
        # generated field-wise equality would make such a result
        # unequal to itself (NaN != NaN), breaking the engine
        # conformance contract and cache round-trips.  Compare NaN as
        # equal to NaN, field by field.
        if other.__class__ is not SimResult:
            return NotImplemented
        for name in self.__dataclass_fields__:
            if name in _SIDE_CHANNEL_FIELDS:
                continue
            a = getattr(self, name)
            b = getattr(other, name)
            if a != b and (a == a or b == b):
                return False
        return True

    def __hash__(self) -> int:
        # Defining __eq__ suppresses the frozen dataclass hash; keep
        # the same field-tuple hash (NaN hashes consistently).
        return hash(
            tuple(
                getattr(self, name)
                for name in self.__dataclass_fields__
                if name not in _SIDE_CHANNEL_FIELDS
            )
        )

    def core_dict(self) -> dict:
        """The measurement fields only (no side channels), for hashing,
        golden snapshots and cache serialization."""
        from dataclasses import asdict

        payload = asdict(self)
        payload.pop("metrics", None)
        payload.pop("latency_hist", None)
        payload.pop("flow_stats", None)
        return payload

    @classmethod
    def from_stats(
        cls,
        stats: SimStats,
        offered_load: float,
        num_terminals: int,
        traffic: str,
        topology: str,
        unroutable_packets: int = 0,
    ) -> "SimResult":
        cycles = stats.horizon - stats.warmup
        denom = num_terminals * cycles
        # Zero-cycle windows (horizon == warmup) or zero terminals can
        # only arise from hand-built stats, but must not raise.
        accepted = stats.measured_phits / denom if denom > 0 else 0.0
        if stats.measured_packets:
            latency = stats.measured_latency_sum / stats.measured_packets
            hops = stats.measured_hops_sum / stats.measured_packets
        else:
            latency = float("nan")
            hops = float("nan")
        return cls(
            offered_load=offered_load,
            accepted_load=accepted,
            avg_latency=latency,
            avg_hops=hops,
            generated_packets=stats.generated_packets,
            delivered_packets=stats.delivered_packets,
            measured_packets=stats.measured_packets,
            max_latency=stats.max_latency,
            p50_latency=stats.latency_percentile(0.50),
            p99_latency=stats.latency_percentile(0.99),
            traffic=traffic,
            topology=topology,
            unroutable_packets=unroutable_packets,
            latency_hist=(
                tuple(sorted(Counter(stats.latencies).items()))
                if stats.latencies
                else None
            ),
        )

    def row(self) -> str:
        """One formatted report line (load, accepted, latency)."""
        return (
            f"{self.topology:<28} {self.traffic:<15} "
            f"load={self.offered_load:5.2f} accepted={self.accepted_load:6.3f} "
            f"latency={self.avg_latency:8.1f}"
        )
