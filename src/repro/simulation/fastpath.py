"""Precomputed-route fast path for the cycle-level engine.

:meth:`~repro.simulation.engine.Simulator.run` historically re-derived
every hop decision from router objects (bitmask scans, dict lookups,
per-hop list building) and drove the schedule through a Python
``heapq``.  Profiling shows those two costs dominate a run.  This
module removes both while staying **bit-for-bit identical** to the
reference engine:

* **CSR candidate tables** -- one precomputation pass flattens every
  switch's per-destination output candidates (including the up/down
  direction choice and the Valiant via phase, which shares the same
  table keyed by the intermediate leaf) into
  :class:`~repro.routing.table.CsrTable` ``int32`` offset/value
  arrays.  The hot loop then finds a head packet's candidates with one
  multiply and one list index instead of a router call per hop --
  and, crucially, per *blocked* hop re-evaluation, which the
  arbitration loop performs every cycle a packet waits.
* **Calendar-queue event wheel** -- the fixed-horizon schedule is kept
  in :class:`EventWheel`, one FIFO bucket per cycle.  The reference
  heap orders events by ``(time, seq)`` with ``seq`` increasing on
  every push; because the engine never schedules into the past,
  per-bucket FIFO order *is* ``seq`` order, so the wheel dequeues in
  exactly the heap's order without the log-n tuple churn (proven for
  arbitrary interleavings by ``tests/test_eventwheel_properties.py``).

Equivalence contract (enforced by ``tests/test_fastpath_differential
.py``): same RNG call order and arguments, same
:class:`~repro.simulation.stats.SimResult`, same per-link busy-cycle
counters, same packet traces and the same observer callback stream as
:meth:`Simulator.run_reference`.  Candidate lists are materialized by
calling the *same* router methods the reference engine calls, so the
per-candidate order -- which feeds ``rng.choice`` -- cannot drift.

The run loop itself is one large function with aggressively
locals-bound state and the reference's helper calls inlined; that is
deliberate (CPython attribute lookups and function calls are the
remaining cost once routing and the heap are precomputed).  Any
behavioural change here must be mirrored from/to the reference engine
and will be caught by the differential suite.
"""

from __future__ import annotations

import math

import numpy as np

from ..routing.table import CsrTable
from .packet import Packet
from .stats import SimResult, SimStats

__all__ = ["EventWheel", "build_candidate_table", "run_fast"]

# Mirrors of the engine's channel/event tags (engine.py is imported
# lazily by Simulator.run, so importing them here would be circular in
# spirit even though not in fact; keep the literals in sync).
_LINK, _INJECT, _EJECT = 0, 1, 2
_EV_ARB, _EV_CREDIT, _EV_GEN = 0, 1, 2


class EventWheel:
    """Calendar queue over a fixed horizon: one FIFO bucket per cycle.

    Replaces the reference engine's ``heapq`` for the run schedule.
    The heap's order is ``(time, seq)`` with a globally increasing
    sequence number; since the engine only ever schedules at or after
    the cycle currently being drained, appending to ``buckets[time]``
    preserves sequence order exactly, and events past the horizon --
    which the reference loop would never pop -- are dropped at push
    time (:meth:`push` returns ``False``).

    The engine's run loop drives :attr:`buckets` inline (a method call
    per event is measurable on the hottest path); :meth:`push` /
    :meth:`pop` implement the identical discipline for tests and
    non-critical callers.
    """

    __slots__ = ("horizon", "buckets", "time", "index", "pending")

    def __init__(self, horizon: int) -> None:
        if horizon < 0:
            raise ValueError("horizon cannot be negative")
        self.horizon = horizon
        self.buckets: list[list] = [[] for _ in range(horizon + 1)]
        self.time = 0
        self.index = 0
        self.pending = 0

    def push(self, time: int, item) -> bool:
        """Schedule ``item`` at ``time``; False when past the horizon."""
        if time > self.horizon:
            return False
        if time < self.time:
            raise ValueError(
                f"cannot schedule into the past (t={time} < {self.time})"
            )
        self.buckets[time].append(item)
        self.pending += 1
        return True

    def pop(self):
        """Next ``(time, item)`` in (time, push-order), or ``None``."""
        while self.time <= self.horizon:
            bucket = self.buckets[self.time]
            if self.index < len(bucket):
                item = bucket[self.index]
                self.index += 1
                self.pending -= 1
                return self.time, item
            bucket.clear()  # drained cycles can never be scheduled again
            self.time += 1
            self.index = 0
        return None

    def __len__(self) -> int:
        return self.pending


def build_candidate_table(sim) -> CsrTable:
    """Flatten ``sim``'s routing into a channel-id :class:`CsrTable`.

    Keys are ``switch * num_dests + dest`` where ``dest`` is a
    destination *leaf* on folded Clos networks and a destination
    *switch* on direct ones.  Values are viable output channel ids in
    exactly the order :meth:`Simulator._output_candidates` would build
    them (the tables are materialized by calling the same router
    methods), so downstream ``rng.choice`` calls see identical
    sequences.  The table is cached on the simulator instance.
    """
    table = getattr(sim, "_fast_table", None)
    if table is not None:
        return table
    if sim._direct:
        router_csr = sim.direct_router.csr_table()
        link_channel = sim.link_channel
        sources = router_csr.source_of_value().tolist()
        hops = router_csr.values.tolist()
        channels = np.fromiter(
            (link_channel[(s, t)] for s, t in zip(sources, hops)),
            dtype=np.int32,
            count=len(hops),
        )
        table = CsrTable(
            router_csr.num_sources,
            router_csr.num_dests,
            router_csr.offsets,
            channels,
            router_csr.flags,
        )
    else:
        from ..routing.updown import RoutingError

        topo = sim.topo
        router = sim.router
        link_channel = sim.link_channel
        level_of = sim.level_of
        index_of = sim.index_of
        level_offsets = sim.level_offsets
        minimal = sim.params.minimal_routing

        def entry(switch: int, leaf: int) -> tuple[int, list[int]]:
            level = level_of[switch]
            index = index_of[switch]
            if level == 0 and index == leaf:
                return CsrTable.DELIVER, []
            try:
                direction, nbrs = router.next_hops(
                    level, index, leaf, minimal=minimal
                )
            except RoutingError:
                return CsrTable.UNROUTABLE, []
            offset = level_offsets[
                level + 1 if direction == "up" else level - 1
            ]
            return CsrTable.ROUTE, [
                link_channel[(switch, offset + t)] for t in nbrs
            ]

        table = CsrTable.build(topo.num_switches, topo.num_leaves, entry)
    sim._fast_table = table
    return table


def run_fast(sim) -> SimResult:
    """Execute ``sim`` through the precomputed-route engine.

    Bit-for-bit mirror of :meth:`Simulator.run_reference`; every block
    below is annotated with the reference helper it inlines.  Shares
    the simulator's channel state lists, so post-run inspection
    (``link_utilization`` etc.) works identically.
    """
    params = sim.params
    stats = SimStats(warmup=params.warmup_cycles, horizon=params.horizon)
    sim._stats = stats
    rng = sim.rng
    horizon = params.horizon
    phits = params.packet_phits
    latency = params.link_latency
    warmup = params.warmup_cycles
    vcs = params.virtual_channels
    rate = sim.load / phits  # packets / terminal / cycle
    topo = sim.topo
    traffic = sim.traffic
    obs = sim.observer
    direct = sim._direct
    valiant = params.valiant and not direct
    iterations = params.arbitration_iterations
    adaptive = params.up_selection == "adaptive"
    rotating = params.arbiter == "rotating"
    trace_limit = sim.trace_limit
    traces = sim.traces
    num_terminals = topo.num_terminals

    # ---- precomputation pass -------------------------------------------
    table = build_candidate_table(sim)
    cand_lists = table.to_lists()
    n_dests = table.num_dests
    # A (source switch, dest) pair is routable unless flagged; replaces
    # the reference's per-packet min_ascent / reachable() injection
    # checks with one list index (identical truth table by
    # construction of the flags).
    routable = (table.flags != CsrTable.UNROUTABLE).tolist()

    ch_src = sim.ch_src
    ch_dst = sim.ch_dst
    ch_kind = sim.ch_kind
    ch_peer = sim.ch_peer
    ch_busy = sim.ch_busy
    ch_slots = sim.ch_slots
    ch_queues = sim.ch_queues
    ch_blocked = sim.ch_blocked
    ch_busy_cycles = sim.ch_busy_cycles
    eject_channel = sim.eject_channel
    inject_channel = sim.inject_channel

    # Per-switch input units with queue objects and kinds prebound:
    # (cid, vc, queue, is_inject).
    units: list[list[tuple]] = [
        [
            (cid, vc, ch_queues[cid][vc], ch_kind[cid] == _INJECT)
            for cid, vc in row
        ]
        for row in sim.in_units
    ]

    if direct:
        dest_switch = [
            topo.terminal_switch(t) for t in range(num_terminals)
        ]
        hosts = 0
        leaf_switch: list[int] = []
        dest_leaf: list[int] = []
        vcs_cap = vcs - 1
    else:
        hosts = topo.hosts_per_leaf
        leaf_switch = [topo.switch_id(0, i) for i in range(topo.num_leaves)]
        dest_leaf = [t // hosts for t in range(num_terminals)]
        dest_switch = []
        vcs_cap = 0
    half = vcs // 2
    # VC-class ranges, built once (the reference builds a range object
    # per candidate per scan): full for plain folded Clos, halves for
    # the two Valiant phases.  Direct networks use a width-1 class
    # checked as a single index instead.
    full_range = range(vcs)
    lo_range = range(0, half)
    hi_range = range(half, vcs)

    wheel = EventWheel(horizon)
    buckets = wheel.buckets
    # Pending-arbitration dedup, keyed ``time * num_switches + switch``
    # (ints hash much faster than the reference's (switch, time)
    # tuples; the encoding is injective so the dedup set is the same).
    n_sw = len(units)
    arb_marks: set[int] = set()
    # Reference-loop state mirrors (kept for debugging parity).
    sim._heap = []
    sim._seq = 0
    sim._arb_marks = arb_marks
    arb_pointers: dict[int, int] | None = None
    choice = rng.choice
    next_serial = sim._next_serial

    if obs is not None:
        obs.on_run_start(sim)

    # ---- seed generation events (mirrors Simulator.run) ----------------
    # Flow workloads (duck-typed on ``flow_schedule``) seed one GEN
    # chain per terminal at its first release time and consume no RNG
    # for arrivals or destinations -- bit-for-bit with the reference.
    log1m = math.log1p(-rate) if rate < 1.0 else None
    log = math.log
    flow_schedule = getattr(traffic, "flow_schedule", None)
    if flow_schedule is not None:
        flow_rows = flow_schedule.releases
        flow_cursor = [0] * num_terminals
        for terminal, row in enumerate(flow_rows):
            if row and row[0][0] <= horizon:
                buckets[row[0][0]].append((_EV_GEN, terminal, 0))
    else:
        flow_rows = None
        flow_cursor = None
        silent = getattr(traffic, "is_silent", None)
        for terminal in range(num_terminals):
            if silent is not None and silent(terminal):
                continue
            if log1m is None:
                first = 0
            else:
                u = rng.random()
                first = (int(log(u) / log1m) + 1 if u > 0.0 else 1) - 1
            if first <= horizon:
                buckets[first].append((_EV_GEN, terminal, 0))

    destination = traffic.destination

    # ---- event wheel loop ----------------------------------------------
    t = 0
    while t <= horizon:
        bucket = buckets[t]
        i = 0
        while i < len(bucket):
            kind, a, b = bucket[i]
            i += 1

            if kind == _EV_ARB:
                # ==== mirrors Simulator._arbitrate =======================
                switch = a
                arb_marks.discard(t * n_sw + switch)
                total_requests = 0
                granted: set[int] = set()
                any_grant = False
                switch_units = units[switch]
                for _ in range(iterations):
                    requests: dict[int, list] = {}
                    for unit in switch_units:
                        queue = unit[2]
                        if not queue:
                            continue
                        cid = unit[0]
                        if granted and cid in granted:
                            continue
                        if unit[3] and ch_blocked[cid] > t:
                            continue
                        ready, packet = queue[0]
                        if ready > t:
                            continue
                        # ---- mirrors _output_candidates ----
                        deliver = False
                        cands = None
                        via = packet.via
                        if via is not None:
                            via_leaf = via // hosts
                            if switch == leaf_switch[via_leaf]:
                                packet.via = None
                                via = None
                            else:
                                cands = cand_lists[
                                    switch * n_dests + via_leaf
                                ]
                        if via is None:
                            dst = packet.dst
                            if direct:
                                dsw = dest_switch[dst]
                                if switch == dsw:
                                    deliver = True
                                else:
                                    cands = cand_lists[
                                        switch * n_dests + dsw
                                    ]
                            else:
                                dleaf = dest_leaf[dst]
                                if switch == leaf_switch[dleaf]:
                                    deliver = True
                                else:
                                    cands = cand_lists[
                                        switch * n_dests + dleaf
                                    ]
                        if deliver:
                            # Single eject candidate: busy test only
                            # (eject channels have no VC slots), no
                            # RNG draw -- as in the reference.
                            out = eject_channel[packet.dst]
                            if ch_busy[out] > t:
                                continue
                        else:
                            if cands is None:
                                # Unroutable pair: replay the
                                # reference router so folded Clos
                                # raises the identical RoutingError
                                # (direct networks return [] and the
                                # packet simply waits).
                                cands = sim._output_candidates(
                                    switch, packet
                                )
                            # ---- mirrors _vc_class (prebuilt VC
                            # ranges; direct = width-1 class) ----
                            if direct:
                                h = packet.hops
                                w0 = h if h < vcs_cap else vcs_cap
                                viable = [
                                    out
                                    for out in cands
                                    if ch_busy[out] <= t
                                    and ch_slots[out][w0] > 0
                                ]
                                vc_range = None
                            else:
                                if valiant:
                                    vc_range = (
                                        lo_range
                                        if via is not None
                                        else hi_range
                                    )
                                else:
                                    vc_range = full_range
                                viable = []
                                for out in cands:
                                    if ch_busy[out] > t:
                                        continue
                                    slots = ch_slots[out]
                                    for w in vc_range:
                                        if slots[w] > 0:
                                            viable.append(out)
                                            break
                            if not viable:
                                continue
                            if len(viable) == 1:
                                out = viable[0]
                            elif adaptive:
                                if vc_range is None:
                                    out = sim._most_credited(
                                        viable, w0, w0 + 1, rng
                                    )
                                else:
                                    out = sim._most_credited(
                                        viable,
                                        vc_range.start,
                                        vc_range.stop,
                                        rng,
                                    )
                            else:
                                out = choice(viable)
                        lst = requests.get(out)
                        if lst is None:
                            requests[out] = [(cid, unit[1], packet, queue)]
                        else:
                            lst.append((cid, unit[1], packet, queue))

                    if not requests:
                        break
                    if obs is not None:
                        for contenders in requests.values():
                            total_requests += len(contenders)
                    for out, contenders in requests.items():
                        if len(contenders) == 1:
                            cid, vc, packet, queue = contenders[0]
                        elif rotating:
                            # ---- mirrors _rotate_pick ----
                            if arb_pointers is None:
                                arb_pointers = getattr(
                                    sim, "_arb_pointers", None
                                )
                                if arb_pointers is None:
                                    arb_pointers = {}
                                    sim._arb_pointers = arb_pointers
                            pointer = arb_pointers.get(out, -1)
                            ordered = sorted(
                                contenders, key=lambda c: (c[0], c[1])
                            )
                            chosen = next(
                                (c for c in ordered if c[0] > pointer),
                                ordered[0],
                            )
                            arb_pointers[out] = chosen[0]
                            cid, vc, packet, queue = chosen
                        else:
                            cid, vc, packet, queue = choice(contenders)

                        # ==== mirrors Simulator._grant ===================
                        queue.popleft()
                        busy_until = t + phits
                        ch_busy[out] = busy_until
                        lo = t if t > warmup else warmup
                        hi = busy_until if busy_until < horizon else horizon
                        if hi > lo:
                            ch_busy_cycles[out] += hi - lo
                        # Wake this switch when the output frees.
                        if busy_until <= horizon:
                            mark = busy_until * n_sw + switch
                            if mark not in arb_marks:
                                arb_marks.add(mark)
                                buckets[busy_until].append(
                                    (_EV_ARB, switch, 0)
                                )
                        if trace_limit and -1 < packet.serial < trace_limit:
                            trace = traces.get(packet.serial)
                            if trace is not None:
                                trace.append(
                                    (
                                        t,
                                        "eject"
                                        if ch_kind[out] == _EJECT
                                        else "forward",
                                        ch_peer[out],
                                    )
                                )
                        if ch_kind[out] == _EJECT:
                            delivered = t + latency + phits - 1
                            stats.on_delivered(packet, delivered, phits)
                            if obs is not None:
                                obs.on_eject(
                                    t,
                                    packet,
                                    delivered - packet.created,
                                    phits,
                                )
                        else:
                            slots = ch_slots[out]
                            # ---- mirrors _vc_class (again, as the
                            # reference _grant recomputes it) ----
                            if direct:
                                h = packet.hops
                                w0 = h if h < vcs_cap else vcs_cap
                                free_vcs = (
                                    [w0] if slots[w0] > 0 else []
                                )
                            elif valiant:
                                vcr = (
                                    lo_range
                                    if packet.via is not None
                                    else hi_range
                                )
                                free_vcs = [
                                    wi for wi in vcr if slots[wi] > 0
                                ]
                            else:
                                free_vcs = [
                                    wi
                                    for wi in full_range
                                    if slots[wi] > 0
                                ]
                            w = (
                                free_vcs[0]
                                if len(free_vcs) == 1
                                else choice(free_vcs)
                            )
                            slots[w] -= 1
                            packet.hops += 1
                            down_queue = ch_queues[out][w]
                            down_queue.append((t + latency, packet))
                            if obs is not None:
                                obs.on_hop(
                                    t,
                                    packet,
                                    switch,
                                    ch_dst[out],
                                    w,
                                    slots[w],
                                    len(down_queue),
                                )
                            arrive = t + latency
                            if arrive <= horizon:
                                downstream = ch_dst[out]
                                mark = arrive * n_sw + downstream
                                if mark not in arb_marks:
                                    arb_marks.add(mark)
                                    buckets[arrive].append(
                                        (_EV_ARB, downstream, 0)
                                    )
                        if ch_kind[cid] == _LINK:
                            if busy_until <= horizon:
                                buckets[busy_until].append(
                                    (_EV_CREDIT, cid, vc)
                                )
                        else:
                            # Injection link busy until the tail
                            # leaves the host.
                            ch_blocked[cid] = busy_until
                            if packet.injected is None:
                                packet.injected = t
                            stats.injected_packets += 1
                            if queue and busy_until <= horizon:
                                mark = busy_until * n_sw + switch
                                if mark not in arb_marks:
                                    arb_marks.add(mark)
                                    buckets[busy_until].append(
                                        (_EV_ARB, switch, 0)
                                    )
                        granted.add(cid)
                        any_grant = True
                if obs is not None and total_requests:
                    obs.on_arbitrate(
                        t, switch, total_requests, len(granted)
                    )
                if any_grant:
                    nxt = t + 1
                    if nxt <= horizon:
                        mark = nxt * n_sw + switch
                        if mark not in arb_marks:
                            arb_marks.add(mark)
                            buckets[nxt].append((_EV_ARB, switch, 0))

            elif kind == _EV_CREDIT:
                slots = ch_slots[a]
                slots[b] += 1
                src = ch_src[a]
                if src >= 0:
                    mark = t * n_sw + src
                    if mark not in arb_marks:
                        arb_marks.add(mark)
                        bucket.append((_EV_ARB, src, 0))

            else:  # _EV_GEN -- mirrors Simulator._generate
                terminal = a
                if flow_rows is not None:
                    # ---- mirrors Simulator._release_flows ----
                    row = flow_rows[terminal]
                    j = flow_cursor[terminal]
                    while j < len(row) and row[j][0] == t:
                        _, dst, serial = row[j]
                        j += 1
                        if serial >= next_serial:
                            next_serial = serial + 1
                        packet = Packet(terminal, dst, t, serial=serial)
                        stats.generated_packets += 1
                        if serial < trace_limit:
                            traces[serial] = [(t, "generate", terminal)]
                        if valiant:
                            src_leaf_switch = leaf_switch[terminal // hosts]
                            for _ in range(8):
                                via = rng.randrange(num_terminals)
                                via_leaf = via // hosts
                                if (
                                    routable[
                                        src_leaf_switch * n_dests + via_leaf
                                    ]
                                    and routable[
                                        leaf_switch[via_leaf] * n_dests
                                        + dest_leaf[dst]
                                    ]
                                ):
                                    packet.via = via
                                    break
                            else:
                                packet.via = None
                        if direct:
                            ok = routable[
                                dest_switch[terminal] * n_dests
                                + dest_switch[dst]
                            ]
                        else:
                            ok = routable[
                                leaf_switch[terminal // hosts] * n_dests
                                + dest_leaf[dst]
                            ]
                        if not ok:
                            sim.unroutable_packets += 1
                            if obs is not None:
                                obs.on_drop(t, terminal, packet)
                        else:
                            cid = inject_channel[terminal]
                            queue = ch_queues[cid][0]
                            queue.append((t, packet))
                            qlen = len(queue)
                            if qlen > sim.max_inject_queue:
                                sim.max_inject_queue = qlen
                            if obs is not None:
                                obs.on_inject(t, packet, qlen)
                            if qlen == 1:
                                blocked = ch_blocked[cid]
                                when = blocked if blocked > t else t
                                if when <= horizon:
                                    leaf = ch_dst[cid]
                                    mark = when * n_sw + leaf
                                    if mark not in arb_marks:
                                        arb_marks.add(mark)
                                        buckets[when].append(
                                            (_EV_ARB, leaf, 0)
                                        )
                    flow_cursor[terminal] = j
                    if j < len(row) and row[j][0] <= horizon:
                        buckets[row[j][0]].append((_EV_GEN, terminal, 0))
                    continue
                try:
                    dst = destination(terminal, rng)
                except LookupError:
                    continue
                packet = Packet(terminal, dst, t, serial=next_serial)
                next_serial += 1
                stats.generated_packets += 1
                if packet.serial < trace_limit:
                    traces[packet.serial] = [(t, "generate", terminal)]
                if valiant:
                    # ---- mirrors _assign_valiant_via ----
                    src_leaf_switch = leaf_switch[terminal // hosts]
                    for _ in range(8):
                        via = rng.randrange(num_terminals)
                        via_leaf = via // hosts
                        if (
                            routable[
                                src_leaf_switch * n_dests + via_leaf
                            ]
                            and routable[
                                leaf_switch[via_leaf] * n_dests
                                + dest_leaf[dst]
                            ]
                        ):
                            packet.via = via
                            break
                    else:
                        packet.via = None
                if direct:
                    ok = routable[
                        dest_switch[terminal] * n_dests + dest_switch[dst]
                    ]
                else:
                    ok = routable[
                        leaf_switch[terminal // hosts] * n_dests
                        + dest_leaf[dst]
                    ]
                if not ok:
                    sim.unroutable_packets += 1
                    if obs is not None:
                        obs.on_drop(t, terminal, packet)
                else:
                    cid = inject_channel[terminal]
                    queue = ch_queues[cid][0]
                    queue.append((t, packet))
                    qlen = len(queue)
                    if qlen > sim.max_inject_queue:
                        sim.max_inject_queue = qlen
                    if obs is not None:
                        obs.on_inject(t, packet, qlen)
                    if qlen == 1:
                        blocked = ch_blocked[cid]
                        when = blocked if blocked > t else t
                        if when <= horizon:
                            leaf = ch_dst[cid]
                            mark = when * n_sw + leaf
                            if mark not in arb_marks:
                                arb_marks.add(mark)
                                buckets[when].append((_EV_ARB, leaf, 0))
                if log1m is None:
                    nxt = t + 1
                else:
                    u = rng.random()
                    nxt = t + (int(log(u) / log1m) + 1 if u > 0.0 else 1)
                if nxt <= horizon:
                    buckets[nxt].append((_EV_GEN, terminal, 0))

        bucket.clear()
        t += 1

    sim._next_serial = next_serial
    result = SimResult.from_stats(
        stats,
        offered_load=sim.load,
        num_terminals=num_terminals,
        traffic=traffic.name,
        topology=topo.name,
        unroutable_packets=sim.unroutable_packets,
    )
    if obs is not None:
        obs.on_run_end(sim, result)
    return result
