"""INSEE-like network simulation: cycle-level engine and flow model."""

from .config import SimulationParams
from .engine import Simulator, load_sweep, saturation_throughput, simulate
from .fastpath import EventWheel, build_candidate_table, run_fast
from .flowlevel import flow_level_throughput, max_min_rates
from .packet import Packet
from .replication import (
    AggregateResult,
    aggregate_replications,
    replicated_point,
    replication_seed,
)
from .stats import SimResult, SimStats
from .traffic import (
    EXTENDED_TRAFFIC_NAMES,
    TRAFFIC_NAMES,
    FixedRandomTraffic,
    LocalityTraffic,
    RandomPairingTraffic,
    ShuffleTraffic,
    TrafficPattern,
    UniformTraffic,
    make_traffic,
)

__all__ = [
    "SimulationParams",
    "Simulator",
    "simulate",
    "load_sweep",
    "saturation_throughput",
    "EventWheel",
    "build_candidate_table",
    "run_fast",
    "flow_level_throughput",
    "max_min_rates",
    "Packet",
    "AggregateResult",
    "aggregate_replications",
    "replicated_point",
    "replication_seed",
    "SimResult",
    "SimStats",
    "TrafficPattern",
    "UniformTraffic",
    "RandomPairingTraffic",
    "FixedRandomTraffic",
    "LocalityTraffic",
    "ShuffleTraffic",
    "make_traffic",
    "TRAFFIC_NAMES",
    "EXTENDED_TRAFFIC_NAMES",
]
