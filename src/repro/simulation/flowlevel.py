"""Flow-level max-min-fair throughput model.

The cycle-accurate engine is exact but pure-Python slow; the paper's
100K/200K-terminal scenarios are far beyond it.  This module provides
the standard flow-level abstraction used for such scales: every
(source, destination) pair is a *flow* on a fixed route, every directed
link has unit capacity (1 phit/cycle), and rates are assigned
**max-min fairly** by progressive filling.  The mean per-terminal rate
is then the normalized accepted load, directly comparable to the
engine's saturation throughput (cross-validated in the tests on small
networks, where both agree on ranking and roughly on magnitude).

Injection and ejection links (capacity 1 per terminal) are part of the
model, so a hot-spot destination saturates its ejection link exactly as
in the paper's fixed-random traffic.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Sequence

from ..routing.updown import UpDownRouter
from ..topologies.base import FoldedClos
from .traffic import TrafficPattern, make_traffic

__all__ = [
    "max_min_rates",
    "flow_routes",
    "flow_level_throughput",
]

LinkKey = Hashable


def max_min_rates(
    flows: Sequence[Sequence[LinkKey]],
    capacity: float = 1.0,
) -> list[float]:
    """Progressive-filling max-min fair rates for unit-capacity links.

    ``flows[i]`` is the sequence of link keys flow ``i`` traverses.  A
    flow with an empty route (source = destination switch pairs never
    produce one here, but callers may) gets rate ``capacity``.
    """
    # Multiplicity-aware: a flow traversing a link k times consumes
    # k units of it per unit of rate (up/down routes are simple, but
    # callers may model multi-traversal routes).
    remaining: dict[LinkKey, float] = {}
    users: dict[LinkKey, dict[int, int]] = {}
    for i, route in enumerate(flows):
        for link in route:
            remaining.setdefault(link, capacity)
            counts = users.setdefault(link, {})
            counts[i] = counts.get(i, 0) + 1
    rates = [0.0] * len(flows)
    active: set[int] = {i for i, route in enumerate(flows) if route}
    for i, route in enumerate(flows):
        if not route:
            rates[i] = capacity

    while active:
        increment = None
        for link, counts in users.items():
            weight = sum(counts.values())
            if weight == 0:
                continue
            room = remaining[link] / weight
            if increment is None or room < increment:
                increment = room
        if increment is None:
            break
        saturated: list[LinkKey] = []
        for link, counts in users.items():
            weight = sum(counts.values())
            if weight:
                remaining[link] -= increment * weight
                if remaining[link] <= 1e-12:
                    saturated.append(link)
        for i in active:
            rates[i] += increment
        frozen: set[int] = set()
        for link in saturated:
            frozen |= users[link].keys()
        if not frozen:
            break
        active -= frozen
        for counts in users.values():
            for i in frozen:
                counts.pop(i, None)
    return rates


def flow_routes(
    topo: FoldedClos,
    pairs: Iterable[tuple[int, int]],
    rng: random.Random | int | None = None,
    router: UpDownRouter | None = None,
) -> list[list[LinkKey]]:
    """Routes for terminal pairs over random minimal up/down paths.

    Each route includes the injection link ``("inj", src)``, the
    directed switch links and the ejection link ``("ej", dst)``.
    """
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    router = router or UpDownRouter.for_topology(topo)
    routes: list[list[LinkKey]] = []
    for src, dst in pairs:
        src_leaf = src // topo.hosts_per_leaf
        dst_leaf = dst // topo.hosts_per_leaf
        hops = router.path(src_leaf, dst_leaf, rng=rand)
        route: list[LinkKey] = [("inj", src)]
        for (la, ia), (lb, ib) in zip(hops, hops[1:]):
            route.append(
                (topo.switch_id(la, ia), topo.switch_id(lb, ib))
            )
        route.append(("ej", dst))
        routes.append(route)
    return routes


def flow_level_throughput(
    topo: FoldedClos,
    traffic_name: str,
    flows_per_terminal: int = 1,
    paths_per_flow: int = 4,
    rng: random.Random | int | None = None,
) -> float:
    """Mean normalized per-terminal accepted load under max-min fairness.

    For permutation-like traffic (``random-pairing``, ``fixed-random``)
    one pair per terminal is the exact model; for ``uniform`` each
    terminal contributes ``flows_per_terminal`` random pairs.  Every
    pair is split into ``paths_per_flow`` subflows over independently
    sampled minimal up/down routes, which approximates the per-packet
    ECMP spreading of the cycle-level engine (a single static path per
    pair would badly understate CFT/RFC permutation throughput).

    Shared injection/ejection links cap each terminal's aggregate rate
    at 1, so the returned value is directly comparable to the engine's
    ``accepted_load`` at saturation.
    """
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    traffic: TrafficPattern = make_traffic(
        traffic_name, topo.num_terminals, rng=rand
    )
    pairs: list[tuple[int, int]] = []
    for terminal in range(topo.num_terminals):
        silent = getattr(traffic, "is_silent", None)
        if silent is not None and silent(terminal):
            continue
        count = flows_per_terminal if traffic_name == "uniform" else 1
        for _ in range(count):
            pairs.append((terminal, traffic.destination(terminal, rand)))
    if not pairs:
        return 0.0
    subpairs = [pair for pair in pairs for _ in range(max(1, paths_per_flow))]
    routes = flow_routes(topo, subpairs, rng=rand)
    rates = max_min_rates(routes)
    per_source: dict[int, float] = {}
    for (src, _), rate in zip(subpairs, rates):
        per_source[src] = per_source.get(src, 0.0) + rate
    return sum(min(1.0, r) for r in per_source.values()) / topo.num_terminals
