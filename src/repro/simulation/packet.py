"""Packet record used by the cycle-driven simulator."""

from __future__ import annotations

__all__ = ["Packet"]


class Packet:
    """A fixed-length packet travelling terminal to terminal.

    Identity and bookkeeping only -- payload is irrelevant to network
    performance.  ``hops`` counts switch-to-switch traversals for path
    length statistics.  ``via`` carries the Valiant intermediate
    terminal while the packet is in its randomization phase (``None``
    once past it, or when Valiant routing is off).
    """

    __slots__ = ("src", "dst", "created", "hops", "injected", "via", "serial")

    def __init__(
        self,
        src: int,
        dst: int,
        created: int,
        via: int | None = None,
        serial: int = -1,
    ) -> None:
        self.src = src
        self.dst = dst
        self.created = created
        self.injected: int | None = None
        self.via = via
        self.serial = serial
        self.hops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.src}->{self.dst} t={self.created} "
            f"hops={self.hops})"
        )
