"""Event-driven virtual cut-through network simulator.

An INSEE-like interconnection simulator (paper Section 6, Table 2)
implemented at packet granularity:

* **virtual cut-through** flow control: a packet advances as soon as
  its head can be routed, but only into a virtual channel with buffer
  space for the whole packet; a 16-phit packet occupies each traversed
  link for 16 cycles and its tail frees the upstream buffer slot 16
  cycles after the grant;
* **input-buffered switches** with ``virtual_channels`` VCs per input
  link (``buffer_packets`` packets each) to reduce head-of-line
  blocking -- up/down routing needs no VCs for deadlock freedom;
* **single-iteration random arbitration** (Table 2: random arbiter,
  1 arbitration iteration): each head packet requests one random
  viable output (random up/down request mode), each free output grants
  one random requester;
* **credit-based backpressure**: grants require a free downstream VC
  slot, credits return when tails drain.

The simulation is event-driven rather than cycle-stepped -- switches
only do work when an arrival, credit return or port release can change
their state -- which is what makes pure-Python runs of thousands of
terminals tractable while preserving cycle-exact VCT timing.

Terminals inject Bernoulli traffic at a configured *normalized load*
(1.0 = one phit per terminal per cycle) into unbounded source queues,
drained through a 1 phit/cycle injection link; ejection links model
the symmetric sink.  Statistics follow
:class:`~repro.simulation.stats.SimStats`.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import deque
from typing import Iterable

from ..obs.hooks import SimObserver
from ..routing.table import EcmpTableRouter
from ..routing.updown import UpDownRouter
from ..topologies.base import DirectNetwork, FoldedClos, Link
from .config import SimulationParams
from .packet import Packet
from .stats import SimResult, SimStats
from .traffic import TrafficPattern

__all__ = ["Simulator", "simulate", "load_sweep", "saturation_throughput"]

_LINK, _INJECT, _EJECT = 0, 1, 2
_EV_ARB, _EV_CREDIT, _EV_GEN = 0, 1, 2


class Simulator:
    """One simulation instance: topology + traffic + parameters.

    Build once, call :meth:`run` once.  ``removed_links`` prunes cables
    (both directions) before the run; routing tables are computed on
    the pruned network, and packets whose pair has lost every up/down
    route are dropped and counted in :attr:`unroutable_packets`.

    ``observer`` attaches a :class:`~repro.obs.hooks.SimObserver` whose
    hooks fire on every inject/hop/arbitration/eject/drop.  Observers
    are pure read-only listeners (no RNG, no engine mutation), so an
    instrumented run produces the exact same :class:`SimResult` as a
    bare one; when ``observer`` is None the hooks cost a single pointer
    test per event.
    """

    def __init__(
        self,
        topo: FoldedClos | DirectNetwork,
        traffic: TrafficPattern,
        load: float,
        params: SimulationParams | None = None,
        removed_links: Iterable[Link] | None = None,
        trace_limit: int = 0,
        observer: SimObserver | None = None,
    ) -> None:
        if traffic.num_terminals != topo.num_terminals:
            raise ValueError(
                f"traffic has {traffic.num_terminals} terminals, topology "
                f"has {topo.num_terminals}"
            )
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load must be in (0, 1], got {load}")
        self.topo = topo
        self.traffic = traffic
        self.load = load
        self.params = params or SimulationParams()
        self.rng = random.Random(self.params.seed)
        self.unroutable_packets = 0
        self.observer = observer
        self._direct = isinstance(topo, DirectNetwork)
        # Packet tracing: hop logs for the first `trace_limit` packets.
        self.trace_limit = trace_limit
        self.traces: dict[int, list[tuple[int, str, int]]] = {}
        self._next_serial = 0

        removed = set(removed_links or ())
        if self._direct:
            self._build_direct_router(removed)
        else:
            self._build_router(removed)
        self._build_channels(removed)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_direct_router(self, removed: set[Link]) -> None:
        """ECMP tables over the pruned direct network.

        Direct networks use distance-class virtual channels (packet's
        ``h``-th hop rides VC ``h``) for deadlock freedom; the VC
        budget is validated against the diameter during grants.
        """
        assert isinstance(self.topo, DirectNetwork)
        adjacency = self.topo.adjacency()
        if removed:
            adjacency = [
                [v for v in nbrs if Link(u, v) not in removed]
                for u, nbrs in enumerate(adjacency)
            ]
        self.direct_router = EcmpTableRouter(adjacency)

    def _build_router(self, removed: set[Link]) -> None:
        topo = self.topo
        stages: list[list[list[int]]] = []
        for level in range(topo.num_levels - 1):
            rows = []
            for s in range(topo.level_sizes[level]):
                lo = topo.switch_id(level, s)
                ups = [
                    t
                    for t in topo.up_neighbors(level, s)
                    if Link(lo, topo.switch_id(level + 1, t)) not in removed
                ]
                rows.append(ups)
            stages.append(rows)
        self.router = UpDownRouter(topo.level_sizes, stages)

    def _build_channels(self, removed: set[Link]) -> None:
        topo = self.topo
        params = self.params
        vcs = params.virtual_channels
        slots0 = params.buffer_packets

        self.ch_kind: list[int] = []
        self.ch_src: list[int] = []
        self.ch_dst: list[int] = []
        self.ch_peer: list[int] = []
        self.ch_busy: list[int] = []
        self.ch_queues: list[list | None] = []
        self.ch_slots: list[list[int] | None] = []
        self.ch_blocked: list[int] = []
        self.ch_busy_cycles: list[int] = []
        self.max_inject_queue = 0

        def add_channel(kind: int, src: int, dst: int, peer: int) -> int:
            cid = len(self.ch_kind)
            self.ch_kind.append(kind)
            self.ch_src.append(src)
            self.ch_dst.append(dst)
            self.ch_peer.append(peer)
            self.ch_busy.append(0)
            self.ch_blocked.append(0)
            self.ch_busy_cycles.append(0)
            if kind == _LINK:
                self.ch_queues.append([deque() for _ in range(vcs)])
                self.ch_slots.append([slots0] * vcs)
            elif kind == _INJECT:
                self.ch_queues.append([deque()])
                self.ch_slots.append(None)
            else:
                self.ch_queues.append(None)
                self.ch_slots.append(None)
            return cid

        n_sw = topo.num_switches
        self.in_units: list[list[tuple[int, int]]] = [[] for _ in range(n_sw)]
        self.link_channel: dict[tuple[int, int], int] = {}
        for link in topo.links():
            if link in removed:
                continue
            for a, b in ((link.lo, link.hi), (link.hi, link.lo)):
                cid = add_channel(_LINK, a, b, b)
                self.link_channel[(a, b)] = cid
                for vc in range(vcs):
                    self.in_units[b].append((cid, vc))

        self.inject_channel: list[int] = []
        self.eject_channel: list[int] = []
        for terminal in range(topo.num_terminals):
            leaf = topo.terminal_switch(terminal)
            cid = add_channel(_INJECT, -1, leaf, terminal)
            self.inject_channel.append(cid)
            self.in_units[leaf].append((cid, 0))
            self.eject_channel.append(add_channel(_EJECT, leaf, -1, terminal))

        # Flat-id decomposition caches for folded Clos routing.
        if not self._direct:
            self.level_of = [0] * n_sw
            self.index_of = [0] * n_sw
            for s in range(n_sw):
                level, index = topo.switch_level(s)
                self.level_of[s] = level
                self.index_of[s] = index
            self.level_offsets = [
                topo.switch_id(level, 0) for level in range(topo.num_levels)
            ]

    # ------------------------------------------------------------------
    # Virtual-channel classes
    # ------------------------------------------------------------------
    def _vc_class(self, packet: Packet) -> tuple[int, int]:
        """Half-open VC index range the packet may occupy downstream.

        * direct networks: distance-class VC ``hops`` (deadlock
          avoidance on cyclic graphs);
        * folded Clos with Valiant: lower half during the
          randomization phase, upper half afterwards (each phase's
          up/down sub-route is acyclic; the class jump orders the
          phases);
        * plain folded Clos: all VCs (up/down needs none).
        """
        vcs = self.params.virtual_channels
        if self._direct:
            w = min(packet.hops, vcs - 1)
            return w, w + 1
        if self.params.valiant:
            half = vcs // 2
            return (0, half) if packet.via is not None else (half, vcs)
        return 0, vcs

    # ------------------------------------------------------------------
    # Routing helper
    # ------------------------------------------------------------------
    def _output_candidates(self, switch: int, packet: Packet) -> list[int]:
        """Viable output channel ids for ``packet`` at ``switch``.

        Empty list means the packet must wait (all candidate ports busy
        or out of credit).
        """
        if self._direct:
            dst_switch = self.topo.terminal_switch(packet.dst)
            if switch == dst_switch:
                return [self.eject_channel[packet.dst]]
            return [
                self.link_channel[(switch, t)]
                for t in self.direct_router.next_hops(switch, dst_switch)
            ]
        level = self.level_of[switch]
        index = self.index_of[switch]
        if packet.via is not None:
            via_leaf = packet.via // self.topo.hosts_per_leaf
            if level == 0 and index == via_leaf:
                packet.via = None  # randomization phase complete
            else:
                direction, nbrs = self.router.next_hops(
                    level, index, via_leaf,
                    minimal=self.params.minimal_routing,
                )
                offset = self.level_offsets[
                    level + 1 if direction == "up" else level - 1
                ]
                return [
                    self.link_channel[(switch, offset + t)] for t in nbrs
                ]
        dst_leaf = packet.dst // self.topo.hosts_per_leaf
        direction, nbrs = self.router.next_hops(
            level, index, dst_leaf, minimal=self.params.minimal_routing
        )
        if direction == "deliver":
            return [self.eject_channel[packet.dst]]
        offset = self.level_offsets[level + 1 if direction == "up" else level - 1]
        return [self.link_channel[(switch, offset + t)] for t in nbrs]

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Execute the run through the engine the params select.

        ``params.engine_name`` resolves to one of four engines:

        * ``"fast"`` (the default) -- :func:`repro.simulation.fastpath
          .run_fast`: precomputed CSR candidate tables driving a
          calendar-queue event wheel;
        * ``"vectorized"`` -- :func:`repro.accel.sim.run_vectorized`:
          struct-of-arrays packet/channel state in numpy arrays with
          batched per-cycle candidate gathering and viability masks;
        * ``"reference"`` -- :meth:`run_reference`;
        * ``"relaxed"`` (selected by ``rng_mode="relaxed"``) --
          :func:`repro.accel.relaxed.run_relaxed`: counter-based
          per-packet RNG and fully batched arbitration, deterministic
          per seed but only *statistically* equivalent to the exact
          engines (``tests/test_relaxed_rng_equivalence.py``).

        The three exact engines are bit-for-bit identical (same RNG
        stream, same :class:`SimResult`, same observer callbacks, same
        post-run channel state) -- the reference engine is kept as the
        oracle for the three-way conformance matrix in
        ``tests/test_fastpath_differential.py``.
        """
        engine = self.params.engine_name
        if engine == "relaxed":
            from ..accel.relaxed import run_relaxed

            return run_relaxed(self)
        if engine == "vectorized":
            from ..accel.sim import run_vectorized

            return run_vectorized(self)
        if engine == "fast":
            from .fastpath import run_fast

            return run_fast(self)
        return self.run_reference()

    def run_reference(self) -> SimResult:
        params = self.params
        stats = SimStats(warmup=params.warmup_cycles, horizon=params.horizon)
        self._stats = stats
        rng = self.rng
        horizon = params.horizon
        packet_phits = params.packet_phits
        rate = self.load / packet_phits  # packets / terminal / cycle

        self._heap: list[tuple[int, int, int, int, int]] = []
        self._seq = 0
        self._arb_marks: set[tuple[int, int]] = set()
        if self.observer is not None:
            self.observer.on_run_start(self)

        # Seed generation events.  Flow workloads (duck-typed on the
        # traffic's ``flow_schedule``) release pre-scheduled packets
        # and consume no RNG here, keeping the exact engines
        # bit-for-bit identical in flow mode too.
        log1m = math.log1p(-rate) if rate < 1.0 else None
        schedule = getattr(self.traffic, "flow_schedule", None)
        self._flow_schedule = schedule
        if schedule is not None:
            self._flow_cursor = [0] * self.topo.num_terminals
            for terminal, row in enumerate(schedule.releases):
                if row and row[0][0] <= horizon:
                    self._push(row[0][0], _EV_GEN, terminal, 0)
        else:
            for terminal in range(self.topo.num_terminals):
                silent = getattr(self.traffic, "is_silent", None)
                if silent is not None and silent(terminal):
                    continue
                first = self._next_gap(rng, rate, log1m) - 1
                if first <= horizon:
                    self._push(first, _EV_GEN, terminal, 0)

        heap = self._heap
        while heap:
            time, _, kind, a, b = heapq.heappop(heap)
            if time > horizon:
                break
            if kind == _EV_ARB:
                self._arb_marks.discard((a, time))
                self._arbitrate(a, time)
            elif kind == _EV_CREDIT:
                slots = self.ch_slots[a]
                assert slots is not None
                slots[b] += 1
                src = self.ch_src[a]
                if src >= 0:
                    self._schedule_arb(src, time)
            else:  # _EV_GEN
                if self._flow_schedule is not None:
                    self._release_flows(a, time, horizon)
                else:
                    self._generate(a, time, rate, log1m, horizon)

        result = SimResult.from_stats(
            stats,
            offered_load=self.load,
            num_terminals=self.topo.num_terminals,
            traffic=self.traffic.name,
            topology=self.topo.name,
            unroutable_packets=self.unroutable_packets,
        )
        if self.observer is not None:
            self.observer.on_run_end(self, result)
        return result

    # ------------------------------------------------------------------
    # Post-run inspection
    # ------------------------------------------------------------------
    def link_utilization(self) -> dict[str, float]:
        """Switch-link utilization summary over the measurement window.

        Returns ``{"mean": ..., "max": ..., "p95": ...}`` as fractions
        of a link's phit capacity.  Call after :meth:`run`.  A
        degenerate window (``measure_cycles <= 0``) reports zeros
        rather than dividing by it.
        """
        window = self.params.measure_cycles
        if window <= 0:
            return {"mean": 0.0, "max": 0.0, "p95": 0.0}
        fractions = sorted(
            self.ch_busy_cycles[cid] / window
            for cid in range(len(self.ch_kind))
            if self.ch_kind[cid] == _LINK
        )
        if not fractions:
            return {"mean": 0.0, "max": 0.0, "p95": 0.0}
        return {
            "mean": sum(fractions) / len(fractions),
            "max": fractions[-1],
            "p95": fractions[int(0.95 * (len(fractions) - 1))],
        }

    def stage_utilization(self) -> dict[str, float]:
        """Mean link utilization per inter-level stage and direction.

        Folded Clos only.  Keys look like ``"0->1 up"`` / ``"1->0
        down"``; useful for spotting which stage saturates first (on an
        RFC under uniform traffic the stages should load evenly).
        """
        if self._direct:
            raise ValueError("stage utilization needs a folded Clos")
        window = self.params.measure_cycles
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for cid in range(len(self.ch_kind)):
            if self.ch_kind[cid] != _LINK:
                continue
            src_level = self.level_of[self.ch_src[cid]]
            dst_level = self.level_of[self.ch_dst[cid]]
            direction = "up" if dst_level > src_level else "down"
            key = f"{src_level}->{dst_level} {direction}"
            used = self.ch_busy_cycles[cid] / window if window > 0 else 0.0
            sums[key] = sums.get(key, 0.0) + used
            counts[key] = counts.get(key, 0) + 1
        # Sorted keys: exported metrics must not depend on dict
        # insertion order (repro.lint RPR003 discipline).
        return {key: sums[key] / counts[key] for key in sorted(sums)}

    def link_loads(self) -> dict[str, float]:
        """Per-directed-link utilization, keyed ``"src->dst"``.

        Keys are sorted, so serializing the dict is deterministic.
        This is the link-load distribution Jellyfish-style analyses
        attribute throughput with; call after :meth:`run`.
        """
        window = self.params.measure_cycles
        loads = {
            f"{self.ch_src[cid]}->{self.ch_dst[cid]}":
                self.ch_busy_cycles[cid] / window if window > 0 else 0.0
            for cid in range(len(self.ch_kind))
            if self.ch_kind[cid] == _LINK
        }
        return {key: loads[key] for key in sorted(loads)}

    def batch_accepted_loads(self) -> list[float]:
        """Per-batch accepted loads (batch-means steady-state check)."""
        return self._stats.batch_accepted_loads(self.topo.num_terminals)

    def ejection_utilization(self) -> list[float]:
        """Per-terminal sink occupancy -- 1.0 marks a saturated hot spot.

        Zeros when the measurement window is degenerate
        (``measure_cycles <= 0``).
        """
        window = self.params.measure_cycles
        if window <= 0:
            return [0.0] * len(self.eject_channel)
        return [
            self.ch_busy_cycles[cid] / window for cid in self.eject_channel
        ]

    # ------------------------------------------------------------------
    # Event helpers
    # ------------------------------------------------------------------
    def _push(self, time: int, kind: int, a: int, b: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, a, b))

    def _schedule_arb(self, switch: int, time: int) -> None:
        mark = (switch, time)
        if mark in self._arb_marks:
            return
        self._arb_marks.add(mark)
        self._push(time, _EV_ARB, switch, 0)

    @staticmethod
    def _next_gap(rng: random.Random, rate: float, log1m: float | None) -> int:
        if log1m is None:
            return 1
        u = rng.random()
        return int(math.log(u) / log1m) + 1 if u > 0.0 else 1

    def _generate(
        self,
        terminal: int,
        time: int,
        rate: float,
        log1m: float | None,
        horizon: int,
    ) -> None:
        try:
            dst = self.traffic.destination(terminal, self.rng)
        except LookupError:
            return
        packet = Packet(terminal, dst, time, serial=self._next_serial)
        self._next_serial += 1
        self._admit(packet, time)
        nxt = time + self._next_gap(self.rng, rate, log1m)
        if nxt <= horizon:
            self._push(nxt, _EV_GEN, terminal, 0)

    def _release_flows(self, terminal: int, time: int, horizon: int) -> None:
        """Release every scheduled packet of ``terminal`` due now.

        Flow mode replaces Bernoulli generation with per-terminal GEN
        chains walking :attr:`FlowSchedule.releases`: each GEN event
        releases all packets whose start equals ``time`` (serials are
        pre-assigned by the schedule, so the serial->flow mapping is
        engine-independent) and re-arms at the next distinct release
        time.  No RNG is consumed for arrivals or destinations.
        """
        row = self._flow_schedule.releases[terminal]
        i = self._flow_cursor[terminal]
        while i < len(row) and row[i][0] == time:
            _, dst, serial = row[i]
            if serial >= self._next_serial:
                self._next_serial = serial + 1
            self._admit(Packet(terminal, dst, time, serial=serial), time)
            i += 1
        self._flow_cursor[terminal] = i
        if i < len(row) and row[i][0] <= horizon:
            self._push(row[i][0], _EV_GEN, terminal, 0)

    def _admit(self, packet: Packet, time: int) -> None:
        """Count, (maybe) detour, and inject-or-drop one new packet."""
        terminal = packet.src
        dst = packet.dst
        if packet.serial < self.trace_limit:
            self.traces[packet.serial] = [(time, "generate", terminal)]
        self._stats.on_generated(time)
        if self.params.valiant and not self._direct:
            self._assign_valiant_via(packet)
        if self._direct:
            unroutable = not self.direct_router.reachable(
                self.topo.terminal_switch(terminal),
                self.topo.terminal_switch(dst),
            )
        else:
            unroutable = (
                self.router.min_ascent(
                    0,
                    terminal // self.topo.hosts_per_leaf,
                    dst // self.topo.hosts_per_leaf,
                )
                < 0
            )
        if unroutable:
            self.unroutable_packets += 1
            if self.observer is not None:
                self.observer.on_drop(time, terminal, packet)
        else:
            cid = self.inject_channel[terminal]
            queue = self.ch_queues[cid][0]
            queue.append((time, packet))
            if len(queue) > self.max_inject_queue:
                self.max_inject_queue = len(queue)
            if self.observer is not None:
                self.observer.on_inject(time, packet, len(queue))
            if len(queue) == 1:
                self._schedule_arb(self.ch_dst[cid], max(time, self.ch_blocked[cid]))

    def _assign_valiant_via(self, packet: Packet) -> None:
        """Pick a random intermediate with both phases routable."""
        hosts = self.topo.hosts_per_leaf
        src_leaf = packet.src // hosts
        dst_leaf = packet.dst // hosts
        for _ in range(8):
            via = self.rng.randrange(self.topo.num_terminals)
            via_leaf = via // hosts
            if (
                self.router.min_ascent(0, src_leaf, via_leaf) >= 0
                and self.router.min_ascent(0, via_leaf, dst_leaf) >= 0
            ):
                packet.via = via
                return
        # No routable intermediate found; fall back to direct routing
        # (the injection-time reachability check still applies).
        packet.via = None

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------
    def _arbitrate(self, switch: int, time: int) -> None:
        """Separable request/grant allocation for one switch-cycle.

        Runs ``arbitration_iterations`` rounds (Table 2 uses 1): each
        round, every eligible head packet requests one viable output
        (random or adaptive per config) and each output grants one
        random requester.  An input *channel* moves at most one packet
        per cycle regardless of how many VCs it holds (crossbar input
        bandwidth), and granted outputs turn busy, so later rounds only
        match the leftovers.
        """
        rng = self.rng
        ch_busy = self.ch_busy
        ch_slots = self.ch_slots
        obs = self.observer
        total_requests = 0
        granted_inputs: set[int] = set()
        any_grant = False
        for _ in range(self.params.arbitration_iterations):
            requests: dict[int, list[tuple[int, int, Packet]]] = {}
            for cid, vc in self.in_units[switch]:
                if cid in granted_inputs:
                    continue
                if self.ch_kind[cid] == _INJECT and self.ch_blocked[cid] > time:
                    continue
                queue = self.ch_queues[cid][vc]
                if not queue:
                    continue
                ready, packet = queue[0]
                if ready > time:
                    continue
                candidates = self._output_candidates(switch, packet)
                viable = []
                vc_lo, vc_hi = self._vc_class(packet)
                for out in candidates:
                    if ch_busy[out] > time:
                        continue
                    slots = ch_slots[out]
                    if slots is not None and not any(
                        slots[w] > 0 for w in range(vc_lo, vc_hi)
                    ):
                        continue
                    viable.append(out)
                if not viable:
                    continue
                if len(viable) == 1:
                    out = viable[0]
                elif self.params.up_selection == "adaptive":
                    out = self._most_credited(viable, vc_lo, vc_hi, rng)
                else:
                    out = rng.choice(viable)
                requests.setdefault(out, []).append((cid, vc, packet))

            if not requests:
                break
            if obs is not None:
                total_requests += sum(len(c) for c in requests.values())
            rotating = self.params.arbiter == "rotating"
            for out, contenders in requests.items():
                if len(contenders) == 1:
                    cid, vc, packet = contenders[0]
                elif rotating:
                    cid, vc, packet = self._rotate_pick(out, contenders)
                else:
                    cid, vc, packet = rng.choice(contenders)
                self._grant(switch, cid, vc, packet, out, time)
                granted_inputs.add(cid)
                any_grant = True
        if obs is not None and total_requests:
            # Each granted input cid is unique within a pass, so the
            # set size is the grant count -- no per-grant accounting on
            # the disabled path.
            obs.on_arbitrate(time, switch, total_requests, len(granted_inputs))
        if any_grant:
            self._schedule_arb(switch, time + 1)

    def _rotate_pick(
        self, out: int, contenders: list[tuple[int, int, "Packet"]]
    ) -> tuple[int, int, "Packet"]:
        """Round-robin grant: lowest contender above the output's pointer."""
        pointers = getattr(self, "_arb_pointers", None)
        if pointers is None:
            pointers = self._arb_pointers = {}
        pointer = pointers.get(out, -1)
        ordered = sorted(contenders, key=lambda c: (c[0], c[1]))
        chosen = next(
            (c for c in ordered if c[0] > pointer), ordered[0]
        )
        pointers[out] = chosen[0]
        return chosen

    def _most_credited(
        self,
        viable: list[int],
        vc_lo: int,
        vc_hi: int,
        rng: random.Random,
    ) -> int:
        """Adaptive selection: candidate with most free downstream slots."""
        best: list[int] = []
        best_credit = -1
        for out in viable:
            slots = self.ch_slots[out]
            credit = (
                sum(slots[vc_lo:vc_hi])
                if slots is not None
                else self.params.buffer_packets * (vc_hi - vc_lo)
            )
            if credit > best_credit:
                best_credit = credit
                best = [out]
            elif credit == best_credit:
                best.append(out)
        return best[0] if len(best) == 1 else rng.choice(best)

    def _grant(
        self,
        switch: int,
        in_cid: int,
        in_vc: int,
        packet: Packet,
        out: int,
        time: int,
    ) -> None:
        params = self.params
        phits = params.packet_phits
        latency = params.link_latency
        rng = self.rng

        self.ch_queues[in_cid][in_vc].popleft()
        self.ch_busy[out] = time + phits
        # Utilization accounting: busy cycles within the measurement
        # window (clipped at both ends).
        lo = max(time, params.warmup_cycles)
        hi = min(time + phits, params.horizon)
        if hi > lo:
            self.ch_busy_cycles[out] += hi - lo
        # Wake this switch when the output port frees again.
        self._schedule_arb(switch, time + phits)

        if packet.serial < self.trace_limit and packet.serial >= 0:
            trace = self.traces.get(packet.serial)
            if trace is not None:
                peer = self.ch_peer[out]
                kind_name = (
                    "eject" if self.ch_kind[out] == _EJECT else "forward"
                )
                trace.append((time, kind_name, peer))

        kind = self.ch_kind[out]
        if kind == _EJECT:
            delivered = time + latency + phits - 1
            self._stats.on_delivered(packet, delivered, phits)
            if self.observer is not None:
                self.observer.on_eject(
                    time, packet, delivered - packet.created, phits
                )
        else:
            slots = self.ch_slots[out]
            assert slots is not None
            vc_lo, vc_hi = self._vc_class(packet)
            free_vcs = [
                wi for wi in range(vc_lo, vc_hi) if slots[wi] > 0
            ]
            w = free_vcs[0] if len(free_vcs) == 1 else rng.choice(free_vcs)
            slots[w] -= 1
            packet.hops += 1
            self.ch_queues[out][w].append((time + latency, packet))
            if self.observer is not None:
                self.observer.on_hop(
                    time,
                    packet,
                    switch,
                    self.ch_dst[out],
                    w,
                    slots[w],
                    len(self.ch_queues[out][w]),
                )
            self._schedule_arb(self.ch_dst[out], time + latency)

        if self.ch_kind[in_cid] == _LINK:
            self._push(time + phits, _EV_CREDIT, in_cid, in_vc)
        else:  # injection link is busy until the tail leaves the host
            self.ch_blocked[in_cid] = time + phits
            if packet.injected is None:
                packet.injected = time
            self._stats.on_injected(time)
            if self.ch_queues[in_cid][0]:
                self._schedule_arb(switch, time + phits)


def simulate(
    topo: FoldedClos | DirectNetwork,
    traffic: TrafficPattern,
    load: float,
    params: SimulationParams | None = None,
    removed_links: Iterable[Link] | None = None,
    observer: SimObserver | None = None,
) -> SimResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(
        topo, traffic, load, params, removed_links, observer=observer
    ).run()


def load_sweep(
    topo: FoldedClos,
    traffic_name: str,
    loads: Iterable[float],
    params: SimulationParams | None = None,
    removed_links: Iterable[Link] | None = None,
) -> list[SimResult]:
    """Simulate a list of offered loads with a shared traffic pattern.

    The pattern is re-instantiated per run with a seed derived from the
    simulation seed, so random-pairing/fixed-random keep identical
    pairings across the sweep (the paper averages over several seeds;
    callers can loop over ``params.scaled(seed=...)``).
    """
    from .traffic import make_traffic

    params = params or SimulationParams()
    results = []
    for load in loads:
        traffic = make_traffic(
            traffic_name, topo.num_terminals, rng=params.seed + 7_919
        )
        results.append(simulate(topo, traffic, load, params, removed_links))
    return results


def saturation_throughput(
    topo: FoldedClos,
    traffic_name: str,
    params: SimulationParams | None = None,
    removed_links: Iterable[Link] | None = None,
) -> float:
    """Accepted load at offered load 1.0 (the paper's max throughput)."""
    from .traffic import make_traffic

    params = params or SimulationParams()
    traffic = make_traffic(
        traffic_name, topo.num_terminals, rng=params.seed + 7_919
    )
    return simulate(topo, traffic, 1.0, params, removed_links).accepted_load
