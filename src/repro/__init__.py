"""repro -- Random Folded Clos datacenter network topologies.

A reproduction of *"Random Folded Clos Topologies for Datacenter
Networks"* (Camarero, Martinez, Beivide; HPCA 2017): topology
generators (RFC, CFT, k-ary trees, OFT, RRN/Jellyfish), up/down ECMP
routing, a cycle-driven virtual cut-through network simulator, fault
and cost models, and an experiment harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import rfc_with_updown, UpDownRouter

    topo, attempts = rfc_with_updown(radix=12, n1=24, levels=3, rng=1)
    router = UpDownRouter.for_topology(topo)
    print(router.path(0, 17, rng=1))

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the
full system inventory.
"""

from .analysis import NetworkReport, analyze_network
from .core import (
    ExpansionError,
    RewiringReport,
    UpDownNotFound,
    common_ancestors_of,
    expand_rfc,
    expand_rrn,
    has_updown_routing_of,
    radix_regular_rfc,
    random_folded_clos,
    rfc_max_leaves,
    rfc_max_terminals,
    rfc_with_updown,
    strong_expansion_limit,
    threshold_radix,
    threshold_radix_simplified,
    updown_probability,
    weak_expand_rfc,
    x_for_radix,
)
from .routing import RoutingError, UpDownRouter, k_shortest_paths
from .topologies import (
    DirectNetwork,
    FoldedClos,
    GenerationError,
    Link,
    NetworkError,
    commodity_fat_tree,
    k_ary_l_tree,
    orthogonal_fat_tree,
    random_regular_network,
    xgft,
)

__version__ = "1.10.0"

__all__ = [
    "__version__",
    # Topologies
    "FoldedClos",
    "DirectNetwork",
    "Link",
    "NetworkError",
    "GenerationError",
    "commodity_fat_tree",
    "k_ary_l_tree",
    "xgft",
    "orthogonal_fat_tree",
    "random_regular_network",
    # Core (RFC)
    "radix_regular_rfc",
    "random_folded_clos",
    "rfc_with_updown",
    "UpDownNotFound",
    "has_updown_routing_of",
    "common_ancestors_of",
    "threshold_radix",
    "threshold_radix_simplified",
    "updown_probability",
    "x_for_radix",
    "rfc_max_leaves",
    "rfc_max_terminals",
    "expand_rfc",
    "expand_rrn",
    "weak_expand_rfc",
    "strong_expansion_limit",
    "RewiringReport",
    "ExpansionError",
    # Routing
    "UpDownRouter",
    "RoutingError",
    "k_shortest_paths",
    # Analysis
    "NetworkReport",
    "analyze_network",
]
