"""Packed uint64 bitset helpers shared by the numpy kernels.

The pure-Python analyses represent leaf sets as Python big-ints (bit
``i`` = leaf ``i``).  The accelerated kernels store the same sets as
``uint64[rows, ceil(nbits / 64)]`` arrays -- word ``w`` of a row holds
bits ``64 * w .. 64 * w + 63``, matching the little-endian byte order
of the big-int so the two representations convert losslessly and the
differential tests can demand exact integer equality.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "words_for",
    "pack_singletons",
    "full_row",
    "masks_to_ints",
    "ints_to_masks",
    "popcount",
]

_WORD = 64


def words_for(nbits: int) -> int:
    """Words needed to hold ``nbits`` bits (0 bits -> 0 words)."""
    return (nbits + _WORD - 1) // _WORD


def pack_singletons(n: int) -> NDArray[np.uint64]:
    """``(n, words_for(n))`` array with row ``i`` holding only bit ``i``."""
    out = np.zeros((n, words_for(n)), dtype=np.uint64)
    idx = np.arange(n)
    out[idx, idx >> 6] = np.uint64(1) << (idx & 63).astype(np.uint64)
    return out


def full_row(nbits: int) -> NDArray[np.uint64]:
    """One row with the low ``nbits`` bits set (trailing bits zero)."""
    out = np.zeros(words_for(nbits), dtype=np.uint64)
    out[: nbits // _WORD] = np.uint64(0xFFFFFFFFFFFFFFFF)
    rem = nbits % _WORD
    if rem:
        out[nbits // _WORD] = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
    return out


def masks_to_ints(masks: NDArray[np.uint64]) -> list[int]:
    """Rows of packed words -> Python big-ints (bit-for-bit)."""
    le = np.ascontiguousarray(masks, dtype="<u8")
    width = le.shape[1] * 8
    raw = le.tobytes()
    return [
        int.from_bytes(raw[i * width : (i + 1) * width], "little")
        for i in range(le.shape[0])
    ]


def ints_to_masks(values: list[int], nbits: int) -> NDArray[np.uint64]:
    """Python big-ints -> packed rows (test/round-trip helper)."""
    w = words_for(nbits)
    out = np.zeros((len(values), w), dtype="<u8")
    for i, v in enumerate(values):
        row = v.to_bytes(w * 8, "little")
        out[i] = np.frombuffer(row, dtype="<u8")
    return out.astype(np.uint64, copy=False)


def popcount(masks: NDArray[np.uint64]) -> NDArray[np.int64]:
    """Per-row set-bit counts."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(masks).sum(axis=1).astype(np.int64)
    as_bytes = np.ascontiguousarray(masks, dtype="<u8").view(np.uint8)
    return np.unpackbits(as_bytes, axis=1).sum(axis=1).astype(np.int64)
