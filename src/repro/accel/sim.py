"""Vectorized cycle engine: struct-of-arrays state + batched gathering.

Third engine of the simulator (``engine="vectorized"``), alongside the
reference engine (:meth:`~repro.simulation.engine.Simulator
.run_reference`) and the precomputed-route fast path
(:mod:`repro.simulation.fastpath`).  Like the fast path it is
**bit-for-bit identical** to the reference -- same RNG call order and
arguments, same :class:`~repro.simulation.stats.SimResult`, same
observer callback stream, same post-run channel state -- which the
three-way conformance matrix in ``tests/test_fastpath_differential.py``
enforces.  What it changes is *how the per-cycle work is found*.

The reference (and the fast path) rediscover eligible packet heads by
scanning every input unit of a switch on every arbitration event, and
then re-derive each head's output viability; at moderate load ~90% of
those unit scans hit empty or not-yet-ready queues, and over half of
all arbitration events find *no viable head at all* -- they consume no
randomness and emit no observable effect, yet the reference pays a
full scan to discover that.  This engine precomputes both facts:

* **Struct-of-arrays head state** -- every input unit (a ``(channel,
  virtual channel)`` input queue) mirrors its head packet, at the
  moment the head changes, into flat per-unit state: ``ready`` (the
  head's effective eligibility time, folding the injection-link
  blocked-until time in; a sentinel when empty), ``key`` (the CSR
  candidate-table key of the head's routing decision, ``-1`` for
  local delivery) and ``cls`` (its virtual-channel class row).  On
  batched runs the same state lives in ``array('q')`` buffers shared
  zero-copy with ``int64`` numpy views, so the sequential grant loop
  writes scalars at list speed while the batched phase reads vectors.
* **Incremental eligibility masks** -- each switch keeps a bitmask of
  its currently-eligible units, updated at head-exposure and grant
  time (a head becoming ready at a future cycle parks in a per-cycle
  activation list).  An arbitration event iterates set bits -- in
  exactly the reference's unit scan order -- instead of scanning the
  switch's whole input array.
* **Batched per-cycle candidate gathering** -- once per cycle, one
  vectorized pass gathers every eligible head's candidate row (the
  CSR rows padded into a rectangular ``int64`` matrix, padding
  pointing at a permanently-blocked dummy channel), tests viability
  against a fused per-(class, channel) **gate** vector -- the
  channel's busy-until time while the class has downstream credits,
  a never-passes sentinel while it does not, so ``gate <= t`` answers
  the reference's two-part test in one comparison -- and reduces the
  result to a per-switch bitmask of units-with-a-viable-output
  (``vmask``).  Arbitration
  events then AND their eligibility mask with the vmask: an event
  whose intersection is empty is skipped outright (it is exactly the
  reference's invisible no-op), and within granting events,
  provably-blocked heads are never visited.  Delivery and unroutable
  heads are mapped to an always-viable dummy row so they can never be
  suppressed (local ejection tests the eject channel live; unroutable
  heads must replay the reference router to reproduce its
  :class:`RoutingError` exactly).
* **Stable grant resolution** -- per-switch input units are
  constructed in strictly increasing ``(channel, vc)`` order, so the
  request lists the mask iteration produces are *already* in the
  order the reference arbiter's ``sorted()`` would yield; the
  rotating arbiter therefore skips the sort (checked once at setup,
  falling back to sorting if a topology ever breaks the invariant),
  and the random arbiter sees contender sequences in the identical
  order the reference built them.

RNG parity is the load-bearing constraint.  The engine cannot batch
*random* decisions across switches -- the reference consumes one
shared ``random.Random`` stream in event order -- so every draw stays
scalar and in order, but the two Python-level frames per draw
(``choice`` -> ``_randbelow``) are inlined to direct ``getrandbits``
calls, which consume the exact same underlying bits
(``random.Random._randbelow_with_getrandbits`` draws
``getrandbits(n.bit_length())`` until the value is below ``n``).  The
inlining is only applied when the simulator's RNG is a plain
``random.Random``; subclasses fall back to the genuine methods.

Why the suppression is exact.  The eligibility masks are maintained
*live*, so they are correct at any point of the cycle.  The vmask is
a snapshot taken at the cycle's first arbitration; for a switch it
can only go stale in the *conservative* direction -- a candidate
channel becoming busy or a buffer filling (the switch's own grants)
never turns a no-viable-output head viable -- with three exceptions,
each of which patches the snapshot in place (a spuriously-set bit is
harmless: it merely re-admits a unit to the scan the reference would
have performed anyway):

* a credit return frees a buffer slot on the crediting switch's
  output, possibly unblocking heads the snapshot wrote off -- the
  switch's vmask word is set to all-ones (unfiltered) for the rest of
  the cycle;
* a generation event exposes a new injection head the snapshot never
  saw -- its unit bit is OR-ed in;
* a grant exposes a successor head -- its unit bit is OR-ed in
  (relevant to multi-iteration arbitration within the same event).

Arrivals from other switches land ``link_latency >= 1`` cycles later
and cannot affect the current cycle; a switch's busy/credit state is
touched by no one else.  Below ``_BATCH_MIN_UNITS`` units the fixed
numpy call overhead of the per-cycle pass exceeds the scan work it
saves, so small runs keep the incremental masks only -- the
conformance tests pin the threshold to 0 to prove both regimes on
every topology.
"""

from __future__ import annotations

import math
import random
from array import array

import numpy as np

from ..simulation.packet import Packet
from ..simulation.stats import SimResult, SimStats

__all__ = ["run_vectorized", "build_padded_candidates", "EMPTY_READY"]

# Channel/event tags, kept in sync with repro.simulation.engine.
_LINK, _INJECT, _EJECT = 0, 1, 2
_EV_ARB, _EV_CREDIT, _EV_GEN = 0, 1, 2

#: Sentinel "effective ready time" for a unit with no head packet.
EMPTY_READY = 1 << 60

#: Minimum unit count before the batched numpy viability phase pays
#: for its per-cycle call overhead (measured crossover: the per-cycle
#: pass costs ~30-60us regardless of size, and only the visits it
#: saves scale with the network).  Tests pin this to 0 to force the
#: batched regime on small topologies.
_BATCH_MIN_UNITS = 4096

#: The per-switch viability bitmasks are int64; switches with a wider
#: fan-in fall back to the unbatched regime (still exact).
_MAX_FANIN = 63


def build_padded_candidates(sim):
    """Rectangular candidate matrix for ``sim``'s CSR route table.

    Returns ``(cand_pad, full_bits, maxdeg)``:

    * ``cand_pad`` -- ``(num_keys, maxdeg) int64``; row ``k`` holds the
      output-channel candidates of CSR key ``k``, padded with the dummy
      channel id ``len(sim.ch_kind)`` (whose ``busy`` mirror is pinned
      past any horizon, so padding can never look viable);
    * ``full_bits`` -- per-key ``(1 << row_length) - 1`` as a Python
      list: the bitmask value meaning "every candidate of the row",
      useful to batch consumers and invariant tests;
    * ``maxdeg`` -- the widest row (0 for degenerate tables).

    Cached on the simulator, next to the CSR table itself.
    """
    cached = getattr(sim, "_vec_pad", None)
    if cached is not None:
        return cached
    from ..simulation.fastpath import build_candidate_table

    table = build_candidate_table(sim)
    offsets = table.offsets.astype(np.int64)
    lens = np.diff(offsets)
    n_keys = len(table.flags)
    maxdeg = int(lens.max()) if n_keys and len(table.values) else 0
    dummy = len(sim.ch_kind)
    cand_pad = np.full((n_keys, maxdeg), dummy, dtype=np.int64)
    if maxdeg:
        rows = np.repeat(np.arange(n_keys, dtype=np.int64), lens)
        pos = np.arange(len(table.values), dtype=np.int64) - np.repeat(
            offsets[:-1], lens
        )
        cand_pad[rows, pos] = table.values
    full_bits = ((1 << lens.astype(object)) - 1).tolist() if n_keys else []
    sim._vec_pad = (cand_pad, full_bits, maxdeg)
    return sim._vec_pad


def run_vectorized(sim) -> SimResult:
    """Execute ``sim`` through the vectorized cycle engine.

    Bit-for-bit mirror of :meth:`Simulator.run_reference` (see the
    module docstring for the argument).  Shares the simulator's channel
    state lists, so post-run inspection (``link_utilization`` etc.)
    works identically.
    """
    params = sim.params
    stats = SimStats(warmup=params.warmup_cycles, horizon=params.horizon)
    sim._stats = stats
    rng = sim.rng
    horizon = params.horizon
    phits = params.packet_phits
    latency = params.link_latency
    warmup = params.warmup_cycles
    vcs = params.virtual_channels
    rate = sim.load / phits  # packets / terminal / cycle
    topo = sim.topo
    traffic = sim.traffic
    obs = sim.observer
    direct = sim._direct
    valiant = params.valiant and not direct
    iterations = params.arbitration_iterations
    adaptive = params.up_selection == "adaptive"
    rotating = params.arbiter == "rotating"
    trace_limit = sim.trace_limit
    traces = sim.traces
    num_terminals = topo.num_terminals
    on_delivered = stats.on_delivered

    # ---- routing tables (shared with the fast path) --------------------
    from ..simulation.fastpath import build_candidate_table

    table = build_candidate_table(sim)
    cand_lists = table.to_lists()
    n_dests = table.num_dests
    n_keys = len(cand_lists)
    routable = (table.flags != table.UNROUTABLE).tolist()

    ch_src = sim.ch_src
    ch_dst = sim.ch_dst
    ch_kind = sim.ch_kind
    ch_peer = sim.ch_peer
    ch_busy = sim.ch_busy
    ch_slots = sim.ch_slots
    ch_queues = sim.ch_queues
    ch_blocked = sim.ch_blocked
    ch_busy_cycles = sim.ch_busy_cycles
    eject_channel = sim.eject_channel
    inject_channel = sim.inject_channel
    n_ch = len(ch_kind)
    n_sw = len(sim.in_units)

    # ---- destination decomposition (mirrors the fast path) -------------
    if direct:
        dest_switch = [topo.terminal_switch(t) for t in range(num_terminals)]
        hosts = 0
        leaf_switch: list[int] = []
        dest_leaf: list[int] = []
        vcs_cap = vcs - 1
        n_classes = vcs
    else:
        hosts = topo.hosts_per_leaf
        leaf_switch = [topo.switch_id(0, i) for i in range(topo.num_leaves)]
        dest_leaf = [t // hosts for t in range(num_terminals)]
        dest_switch = []
        vcs_cap = 0
        n_classes = 3  # rows: 0 = all VCs, 1 = Valiant lower, 2 = upper
    half = vcs // 2
    # Class row -> half-open VC index range (reference _vc_class).
    if direct:
        class_range = [(w, w + 1) for w in range(vcs)]
    else:
        class_range = [(0, vcs), (0, half), (half, vcs)]

    # ---- struct-of-arrays unit state -----------------------------------
    # One "unit" per (channel, vc) input queue, grouped contiguously by
    # switch in exactly the reference scan order.
    u_off = [0] * (n_sw + 1)
    unit_cid: list[int] = []
    unit_vc: list[int] = []
    unit_queue: list = []
    unit_inject: list[bool] = []
    unit_switch: list[int] = []
    unit_bit: list[int] = []
    units_sorted = True
    for s, row in enumerate(sim.in_units):
        prev = (-1, -1)
        for cid, vc in row:
            if (cid, vc) <= prev:
                units_sorted = False
            prev = (cid, vc)
            unit_bit.append(1 << (len(unit_cid) - u_off[s]))
            unit_cid.append(cid)
            unit_vc.append(vc)
            unit_queue.append(ch_queues[cid][vc])
            unit_inject.append(ch_kind[cid] == _INJECT)
            unit_switch.append(s)
        u_off[s + 1] = len(unit_cid)
    n_units = len(unit_cid)
    # (channel, vc) -> unit index, for head exposure on downstream
    # push.  Indexed by the vc itself, not construction order: scan
    # order is a topology/caller choice the mapping must not assume.
    unit_of: list[list[int] | None] = [None] * n_ch
    for u in range(n_units):
        row_ids = unit_of[unit_cid[u]]
        if row_ids is None:
            row_ids = unit_of[unit_cid[u]] = [-1] * vcs
        row_ids[unit_vc[u]] = u
    inject_unit = [unit_of[inject_channel[t]][0] for t in range(num_terminals)]

    # Per-unit head mirrors (plain lists: the scalar paths read them at
    # list-index speed) and per-switch eligibility masks.
    ready_l = [EMPTY_READY] * n_units
    key_l = [-1] * n_units
    cls_l = [0] * n_units
    elig_mask = [0] * n_sw
    ready_buckets: list[list[int]] = [[] for _ in range(horizon + 1)]
    # Fused viability gates: ``gate[cls * stride + c]`` is the cycle
    # from which class ``cls`` may take channel ``c`` -- the channel's
    # busy-until time while the class has free downstream slots, the
    # EMPTY_READY sentinel while it does not.  One lookup answers the
    # reference's two-part test (``busy <= t and slots free``).  Two
    # dummy channels close the table: ``n_ch`` is permanently blocked
    # (candidate-row padding), ``n_ch + 1`` is permanently viable
    # (delivery / unroutable heads, which must never be suppressed).
    stride = n_ch + 2
    gate_l = [EMPTY_READY] * (n_classes * stride)

    # Batched phase, engaged only when the run is large enough to
    # amortize the per-cycle numpy overhead (see module docstring).
    cand_pad, _full_bits, maxdeg = build_padded_candidates(sim)
    max_fanin = max((u_off[s + 1] - u_off[s] for s in range(n_sw)), default=0)
    batching = _BATCH_MIN_UNITS <= n_units and max_fanin <= _MAX_FANIN
    if batching:
        # Candidate matrix with the extra always-viable row (index
        # ``n_keys``) that delivery and unroutable heads key to.
        cand_pad_x = np.full(
            (n_keys + 1, max(maxdeg, 1)), n_ch, dtype=np.int64
        )
        if maxdeg:
            cand_pad_x[:n_keys, :maxdeg] = cand_pad
        cand_pad_x[n_keys, 0] = n_ch + 1
        # Typed mirrors of the plain-list state, shared zero-copy with
        # numpy views.
        ready_a = array("q", ready_l)
        vkey_a = array("q", [n_keys] * n_units)
        cls_a = array("q", cls_l)
        ready_np = np.frombuffer(ready_a, dtype=np.int64)
        vkey_np = np.frombuffer(vkey_a, dtype=np.int64)
        cls_np = np.frombuffer(cls_a, dtype=np.int64)
        sw_np = np.array(unit_switch, dtype=np.int64)
        base_np = np.array(
            [u_off[s] for s in unit_switch], dtype=np.int64
        )
        one64 = np.int64(1)
        vmask_buf = np.zeros(n_sw, dtype=np.int64)
        # Folded Clos without Valiant uses a single class row for
        # every head, so the batched pass can skip the class gather.
        uniform_cls = not direct and not valiant
    else:
        ready_a = vkey_a = cls_a = None
        uniform_cls = False

    # Initial gates: every link channel starts idle (busy 0) and fully
    # credited, and the always-viable dummy column is open in every
    # class row.
    for cid in range(n_ch):
        if ch_kind[cid] != _LINK:
            continue
        slots = ch_slots[cid]
        if direct:
            for w in range(vcs):
                if slots[w] > 0:
                    gate_l[w * stride + cid] = 0
        else:
            gate_l[cid] = 0
            if any(slots[:half]):
                gate_l[stride + cid] = 0
            if any(slots[half:]):
                gate_l[2 * stride + cid] = 0
    for c in range(n_classes):
        gate_l[c * stride + n_ch + 1] = -1
    if batching:
        gate_a = array("q", gate_l)
        gate_np = np.frombuffer(gate_a, dtype=np.int64)
    else:
        gate_a = None

    # ---- RNG inlining ---------------------------------------------------
    inline_rng = type(rng) is random.Random
    grb = rng.getrandbits
    choice = rng.choice
    bitlen = [0] + [
        i.bit_length() for i in range(1, max(maxdeg, max_fanin, vcs) + 2)
    ]
    kt = num_terminals.bit_length()
    # Uniform traffic is one randrange(n - 1) + shift per packet;
    # inline it on the exact class (subclasses keep their own logic).
    from ..simulation.traffic import UniformTraffic

    uniform_dst = inline_rng and type(traffic) is UniformTraffic
    nt1 = num_terminals - 1
    ku = nt1.bit_length()

    # ---- head exposure --------------------------------------------------
    def expose(u: int, switch: int, now: int) -> None:
        """Mirror a unit's new head packet into the SoA state.

        Also performs the Valiant phase switch the reference does
        lazily at scan time (clearing ``via`` once the packet sits at
        its intermediate leaf) -- hoisting it to exposure time is
        observationally identical because nothing reads ``via``
        between arrival and the next scan.
        """
        queue = unit_queue[u]
        ready, packet = queue[0]
        if unit_inject[u]:
            blocked = ch_blocked[unit_cid[u]]
            if blocked > ready:
                ready = blocked
        ready_l[u] = ready
        if ready <= now:
            elig_mask[switch] |= unit_bit[u]
        elif ready <= horizon:
            ready_buckets[ready].append(u)
        if direct:
            dsw = dest_switch[packet.dst]
            key = -1 if switch == dsw else switch * n_dests + dsw
            h = packet.hops
            cls = h if h < vcs_cap else vcs_cap
        else:
            via = packet.via
            key = None
            if via is not None:
                via_leaf = via // hosts
                if switch == leaf_switch[via_leaf]:
                    packet.via = None  # randomization phase complete
                else:
                    key = switch * n_dests + via_leaf
                    cls = 1 if valiant else 0
            if key is None:
                dleaf = dest_leaf[packet.dst]
                key = (
                    -1
                    if switch == leaf_switch[dleaf]
                    else switch * n_dests + dleaf
                )
                cls = 2 if valiant else 0
        key_l[u] = key
        cls_l[u] = cls
        if batching:
            ready_a[u] = ready
            cls_a[u] = cls
            # Delivery and unroutable heads key to the always-viable
            # row so the vmask can never suppress them.
            vkey_a[u] = (
                key
                if key >= 0 and cand_lists[key] is not None
                else n_keys
            )

    # ---- schedule -------------------------------------------------------
    # Events are single ints: (payload << 2) | kind, with payload a
    # switch (ARB), channel * vcs + vc (CREDIT) or terminal (GEN) --
    # one append per schedule instead of a tuple allocation.
    buckets: list[list[int]] = [[] for _ in range(horizon + 1)]
    # Arbitration-mark dedup (at most one pending arb event per
    # (cycle, switch)): every mark targets a cycle within
    # ``max(phits, latency)`` of now, so a ring of per-cycle byte rows
    # replaces the reference's set.  Rows self-clean -- each marked
    # event zeroes its flag when it fires.
    n_ring = max(phits, latency) + 1
    mark_ring = [bytearray(n_sw) for _ in range(n_ring)]
    # Reference-loop state mirrors (kept for debugging parity).
    sim._heap = []
    sim._seq = 0
    sim._arb_marks = set()
    arb_pointers: dict[int, int] | None = None
    next_serial = sim._next_serial

    if obs is not None:
        obs.on_run_start(sim)

    # ---- seed generation events (mirrors Simulator.run) ----------------
    # Flow workloads (duck-typed on ``flow_schedule``) seed one GEN
    # chain per terminal at its first release time; no RNG is consumed
    # for arrivals or destinations, so flow mode stays bit-for-bit
    # with the reference and fast engines.
    log1m = math.log1p(-rate) if rate < 1.0 else None
    log = math.log
    flow_schedule = getattr(traffic, "flow_schedule", None)
    if flow_schedule is not None:
        flow_rows = flow_schedule.releases
        flow_cursor = [0] * num_terminals
        for terminal, row in enumerate(flow_rows):
            if row and row[0][0] <= horizon:
                buckets[row[0][0]].append((terminal << 2) | _EV_GEN)
    else:
        flow_rows = None
        flow_cursor = None
        silent = getattr(traffic, "is_silent", None)
        for terminal in range(num_terminals):
            if silent is not None and silent(terminal):
                continue
            if log1m is None:
                first = 0
            else:
                u = rng.random()
                first = (int(log(u) / log1m) + 1 if u > 0.0 else 1) - 1
            if first <= horizon:
                buckets[first].append((terminal << 2) | _EV_GEN)

    destination = traffic.destination

    # ---- cycle loop -----------------------------------------------------
    t = 0
    while t <= horizon:
        acts = ready_buckets[t]
        if acts:
            # Heads parked for this cycle become eligible before any
            # event fires (eligibility is ``ready <= t``, constant
            # within the cycle).
            for u in acts:
                elig_mask[unit_switch[u]] |= unit_bit[u]
            acts.clear()
        bucket = buckets[t]
        if not bucket:
            t += 1
            continue
        vmask = None
        mrow = mark_ring[t % n_ring]
        i = 0
        while i < len(bucket):
            ev = bucket[i]
            i += 1
            kind = ev & 3

            if kind == _EV_ARB:
                switch = ev >> 2
                mrow[switch] = 0
                mask = elig_mask[switch]
                if not mask:
                    # Nothing queued and ready: the reference would
                    # scan every input unit to conclude the same.
                    continue
                if batching:
                    if vmask is None:
                        # One vectorized pass serves the whole cycle:
                        # gather every eligible head's candidate rows
                        # and reduce gate viability to per-switch unit
                        # masks.  Later intra-cycle state changes
                        # patch the masks in place (conservatively)
                        # instead of invalidating them.
                        elig_idx = np.flatnonzero(ready_np <= t)
                        if elig_idx.size:
                            cand = cand_pad_x[vkey_np[elig_idx]]
                            if not uniform_cls:
                                cand = (
                                    cand
                                    + cls_np[elig_idx][:, None] * stride
                                )
                            viable_any = (gate_np[cand] <= t).any(axis=1)
                            vu = elig_idx[viable_any]
                            vmask_buf[:] = 0
                            if vu.size:
                                contrib = np.left_shift(
                                    one64, vu - base_np[vu]
                                )
                                sw = sw_np[vu]
                                seg = np.flatnonzero(
                                    np.diff(sw, prepend=-1)
                                )
                                np.add.reduceat(
                                    contrib, seg, out=contrib[: len(seg)]
                                )
                                vmask_buf[sw[seg]] = contrib[: len(seg)]
                            vmask = vmask_buf.tolist()
                        else:
                            vmask = [0] * n_sw
                    mask &= vmask[switch]
                    if not mask:
                        # Every eligible head is provably blocked for
                        # now: the event is the reference's invisible
                        # no-op (no request, no RNG, no observable).
                        continue
                ustart = u_off[switch]

                total_requests = 0
                granted: set[int] = set()
                any_grant = False
                for it in range(iterations):
                    requests: dict[int, list] = {}
                    m = elig_mask[switch]
                    if vmask is not None:
                        m &= vmask[switch]
                    while m:
                        lsb = m & -m
                        m ^= lsb
                        u = ustart + lsb.bit_length() - 1
                        cid = unit_cid[u]
                        if granted and cid in granted:
                            continue
                        queue = unit_queue[u]
                        packet = queue[0][1]
                        key = key_l[u]
                        if key < 0:
                            # Local delivery: single eject candidate,
                            # busy test only, no RNG.
                            out = eject_channel[packet.dst]
                            if ch_busy[out] > t:
                                continue
                        else:
                            cands = cand_lists[key]
                            if cands is None:
                                # Unroutable pair: replay the
                                # reference router (raises the
                                # identical RoutingError on folded
                                # Clos; empty list on direct).
                                cands = sim._output_candidates(
                                    switch, packet
                                )
                            base = cls_l[u] * stride
                            viable = []
                            for out in cands:
                                if gate_l[base + out] <= t:
                                    viable.append(out)
                            n = len(viable)
                            if n == 0:
                                continue
                            if n == 1:
                                out = viable[0]
                            elif adaptive:
                                lo_hi = class_range[cls_l[u]]
                                out = sim._most_credited(
                                    viable, lo_hi[0], lo_hi[1], rng
                                )
                            elif inline_rng:
                                k = bitlen[n]
                                r = grb(k)
                                while r >= n:
                                    r = grb(k)
                                out = viable[r]
                            else:
                                out = choice(viable)
                        entry = (u, cid, unit_vc[u], packet, queue)
                        lst = requests.get(out)
                        if lst is None:
                            requests[out] = [entry]
                        else:
                            lst.append(entry)

                    if not requests:
                        break
                    if obs is not None:
                        for contenders in requests.values():
                            total_requests += len(contenders)
                    for out, contenders in requests.items():
                        if len(contenders) == 1:
                            u, cid, vc, packet, queue = contenders[0]
                        elif rotating:
                            # Scan order is (cid, vc)-sorted by unit
                            # construction, so the reference arbiter's
                            # sorted() is the identity here.
                            if not units_sorted:
                                contenders = sorted(
                                    contenders, key=lambda c: (c[1], c[2])
                                )
                            if arb_pointers is None:
                                arb_pointers = getattr(
                                    sim, "_arb_pointers", None
                                )
                                if arb_pointers is None:
                                    arb_pointers = {}
                                    sim._arb_pointers = arb_pointers
                            pointer = arb_pointers.get(out, -1)
                            chosen = None
                            for c in contenders:
                                if c[1] > pointer:
                                    chosen = c
                                    break
                            if chosen is None:
                                chosen = contenders[0]
                            arb_pointers[out] = chosen[1]
                            u, cid, vc, packet, queue = chosen
                        elif inline_rng:
                            n = len(contenders)
                            k = bitlen[n]
                            r = grb(k)
                            while r >= n:
                                r = grb(k)
                            u, cid, vc, packet, queue = contenders[r]
                        else:
                            u, cid, vc, packet, queue = choice(contenders)

                        # ==== grant (mirrors Simulator._grant) ==========
                        queue.popleft()
                        elig_mask[switch] &= ~unit_bit[u]
                        busy_until = t + phits
                        ch_busy[out] = busy_until
                        # Propagate the busy time through every class
                        # gate that is currently credited (exhausted
                        # rows stay at the sentinel until a credit
                        # reopens them).
                        gi = out
                        for _ in range(n_classes):
                            if gate_l[gi] != EMPTY_READY:
                                gate_l[gi] = busy_until
                                if batching:
                                    gate_a[gi] = busy_until
                            gi += stride
                        lo_c = t if t > warmup else warmup
                        hi_c = busy_until if busy_until < horizon else horizon
                        if hi_c > lo_c:
                            ch_busy_cycles[out] += hi_c - lo_c
                        if busy_until <= horizon:
                            row = mark_ring[busy_until % n_ring]
                            if not row[switch]:
                                row[switch] = 1
                                buckets[busy_until].append(switch << 2)
                        if trace_limit and -1 < packet.serial < trace_limit:
                            trace = traces.get(packet.serial)
                            if trace is not None:
                                trace.append(
                                    (
                                        t,
                                        "eject"
                                        if ch_kind[out] == _EJECT
                                        else "forward",
                                        ch_peer[out],
                                    )
                                )
                        if ch_kind[out] == _EJECT:
                            delivered = t + latency + phits - 1
                            on_delivered(packet, delivered, phits)
                            if obs is not None:
                                obs.on_eject(
                                    t,
                                    packet,
                                    delivered - packet.created,
                                    phits,
                                )
                        else:
                            slots = ch_slots[out]
                            lo_w, hi_w = class_range[cls_l[u]]
                            free_vcs = []
                            for wi in range(lo_w, hi_w):
                                if slots[wi] > 0:
                                    free_vcs.append(wi)
                            n = len(free_vcs)
                            if n == 1:
                                w = free_vcs[0]
                            elif inline_rng:
                                k = bitlen[n]
                                r = grb(k)
                                while r >= n:
                                    r = grb(k)
                                w = free_vcs[r]
                            else:
                                w = choice(free_vcs)
                            slots[w] -= 1
                            if slots[w] == 0:
                                # Close the class gates this drain may
                                # have exhausted.
                                if direct:
                                    gi = w * stride + out
                                    gate_l[gi] = EMPTY_READY
                                    if batching:
                                        gate_a[gi] = EMPTY_READY
                                else:
                                    if not any(slots):
                                        gate_l[out] = EMPTY_READY
                                        if batching:
                                            gate_a[out] = EMPTY_READY
                                    if w < half:
                                        if not any(slots[:half]):
                                            gi = stride + out
                                            gate_l[gi] = EMPTY_READY
                                            if batching:
                                                gate_a[gi] = EMPTY_READY
                                    elif not any(slots[half:]):
                                        gi = 2 * stride + out
                                        gate_l[gi] = EMPTY_READY
                                        if batching:
                                            gate_a[gi] = EMPTY_READY
                            packet.hops += 1
                            down_queue = ch_queues[out][w]
                            down_queue.append((t + latency, packet))
                            if obs is not None:
                                obs.on_hop(
                                    t,
                                    packet,
                                    switch,
                                    ch_dst[out],
                                    w,
                                    slots[w],
                                    len(down_queue),
                                )
                            downstream = ch_dst[out]
                            if len(down_queue) == 1:
                                expose(unit_of[out][w], downstream, t)
                            arrive = t + latency
                            if arrive <= horizon:
                                row = mark_ring[arrive % n_ring]
                                if not row[downstream]:
                                    row[downstream] = 1
                                    buckets[arrive].append(downstream << 2)
                        if ch_kind[cid] == _LINK:
                            if busy_until <= horizon:
                                buckets[busy_until].append(
                                    ((cid * vcs + vc) << 2) | _EV_CREDIT
                                )
                        else:
                            # Injection link busy until the tail
                            # leaves the host.
                            ch_blocked[cid] = busy_until
                            if packet.injected is None:
                                packet.injected = t
                            stats.injected_packets += 1
                            if queue and busy_until <= horizon:
                                row = mark_ring[busy_until % n_ring]
                                if not row[switch]:
                                    row[switch] = 1
                                    buckets[busy_until].append(switch << 2)
                        # Mirror the granted unit's new head (after
                        # the injection blocked-until update).  The
                        # viability snapshot never saw a successor
                        # head, so patch its bit in (a stale set bit
                        # merely re-admits the reference's scan).
                        if queue:
                            expose(u, switch, t)
                            if vmask is not None:
                                vmask[switch] |= unit_bit[u]
                        else:
                            ready_l[u] = EMPTY_READY
                            if batching:
                                ready_a[u] = EMPTY_READY
                        granted.add(cid)
                        any_grant = True
                if obs is not None and total_requests:
                    obs.on_arbitrate(
                        t, switch, total_requests, len(granted)
                    )
                if any_grant:
                    nxt = t + 1
                    if nxt <= horizon:
                        row = mark_ring[nxt % n_ring]
                        if not row[switch]:
                            row[switch] = 1
                            buckets[nxt].append(switch << 2)

            elif kind == _EV_CREDIT:
                p = ev >> 2
                a = p // vcs
                b = p - a * vcs
                slots = ch_slots[a]
                was = slots[b]
                slots[b] = was + 1
                if was == 0:
                    # A zero slot coming back can only open gates; an
                    # opening gate adopts the channel's current busy
                    # time (already-open gates hold it by invariant).
                    busy = ch_busy[a]
                    if direct:
                        gi = b * stride + a
                        if gate_l[gi] == EMPTY_READY:
                            gate_l[gi] = busy
                            if batching:
                                gate_a[gi] = busy
                    else:
                        if gate_l[a] == EMPTY_READY:
                            gate_l[a] = busy
                            if batching:
                                gate_a[a] = busy
                        gi = (stride if b < half else 2 * stride) + a
                        if gate_l[gi] == EMPTY_READY:
                            gate_l[gi] = busy
                            if batching:
                                gate_a[gi] = busy
                src = ch_src[a]
                if src >= 0:
                    if vmask is not None:
                        # The freed slot may unblock heads the
                        # viability snapshot wrote off: unfilter the
                        # switch for the rest of the cycle.
                        vmask[src] = -1
                    if not mrow[src]:
                        mrow[src] = 1
                        bucket.append(src << 2)

            else:  # _EV_GEN -- mirrors Simulator._generate
                terminal = ev >> 2
                if flow_rows is not None:
                    # ---- mirrors Simulator._release_flows ----
                    row = flow_rows[terminal]
                    j = flow_cursor[terminal]
                    while j < len(row) and row[j][0] == t:
                        _, dst, serial = row[j]
                        j += 1
                        if serial >= next_serial:
                            next_serial = serial + 1
                        packet = Packet(terminal, dst, t, serial=serial)
                        stats.generated_packets += 1
                        if serial < trace_limit:
                            traces[serial] = [(t, "generate", terminal)]
                        if valiant:
                            src_leaf_switch = leaf_switch[terminal // hosts]
                            for _ in range(8):
                                if inline_rng:
                                    via = grb(kt)
                                    while via >= num_terminals:
                                        via = grb(kt)
                                else:
                                    via = rng.randrange(num_terminals)
                                via_leaf = via // hosts
                                if (
                                    routable[
                                        src_leaf_switch * n_dests + via_leaf
                                    ]
                                    and routable[
                                        leaf_switch[via_leaf] * n_dests
                                        + dest_leaf[dst]
                                    ]
                                ):
                                    packet.via = via
                                    break
                            else:
                                packet.via = None
                        if direct:
                            ok = routable[
                                dest_switch[terminal] * n_dests
                                + dest_switch[dst]
                            ]
                        else:
                            ok = routable[
                                leaf_switch[terminal // hosts] * n_dests
                                + dest_leaf[dst]
                            ]
                        if not ok:
                            sim.unroutable_packets += 1
                            if obs is not None:
                                obs.on_drop(t, terminal, packet)
                        else:
                            cid = inject_channel[terminal]
                            queue = ch_queues[cid][0]
                            queue.append((t, packet))
                            qlen = len(queue)
                            if qlen > sim.max_inject_queue:
                                sim.max_inject_queue = qlen
                            if obs is not None:
                                obs.on_inject(t, packet, qlen)
                            if qlen == 1:
                                leaf = ch_dst[cid]
                                iu = inject_unit[terminal]
                                expose(iu, leaf, t)
                                if vmask is not None:
                                    # The snapshot never saw this head.
                                    vmask[leaf] |= unit_bit[iu]
                                blocked = ch_blocked[cid]
                                when = blocked if blocked > t else t
                                if when <= horizon:
                                    row_m = mark_ring[when % n_ring]
                                    if not row_m[leaf]:
                                        row_m[leaf] = 1
                                        buckets[when].append(leaf << 2)
                    flow_cursor[terminal] = j
                    if j < len(row) and row[j][0] <= horizon:
                        buckets[row[j][0]].append(
                            (terminal << 2) | _EV_GEN
                        )
                    continue
                if uniform_dst:
                    r = grb(ku)
                    while r >= nt1:
                        r = grb(ku)
                    dst = r if r < terminal else r + 1
                else:
                    try:
                        dst = destination(terminal, rng)
                    except LookupError:
                        continue
                packet = Packet(terminal, dst, t, serial=next_serial)
                next_serial += 1
                stats.generated_packets += 1
                if packet.serial < trace_limit:
                    traces[packet.serial] = [(t, "generate", terminal)]
                if valiant:
                    # ---- mirrors _assign_valiant_via ----
                    src_leaf_switch = leaf_switch[terminal // hosts]
                    for _ in range(8):
                        if inline_rng:
                            via = grb(kt)
                            while via >= num_terminals:
                                via = grb(kt)
                        else:
                            via = rng.randrange(num_terminals)
                        via_leaf = via // hosts
                        if (
                            routable[src_leaf_switch * n_dests + via_leaf]
                            and routable[
                                leaf_switch[via_leaf] * n_dests
                                + dest_leaf[dst]
                            ]
                        ):
                            packet.via = via
                            break
                    else:
                        packet.via = None
                if direct:
                    ok = routable[
                        dest_switch[terminal] * n_dests + dest_switch[dst]
                    ]
                else:
                    ok = routable[
                        leaf_switch[terminal // hosts] * n_dests
                        + dest_leaf[dst]
                    ]
                if not ok:
                    sim.unroutable_packets += 1
                    if obs is not None:
                        obs.on_drop(t, terminal, packet)
                else:
                    cid = inject_channel[terminal]
                    queue = ch_queues[cid][0]
                    queue.append((t, packet))
                    qlen = len(queue)
                    if qlen > sim.max_inject_queue:
                        sim.max_inject_queue = qlen
                    if obs is not None:
                        obs.on_inject(t, packet, qlen)
                    if qlen == 1:
                        leaf = ch_dst[cid]
                        iu = inject_unit[terminal]
                        expose(iu, leaf, t)
                        if vmask is not None:
                            # The snapshot never saw this head.
                            vmask[leaf] |= unit_bit[iu]
                        blocked = ch_blocked[cid]
                        when = blocked if blocked > t else t
                        if when <= horizon:
                            row = mark_ring[when % n_ring]
                            if not row[leaf]:
                                row[leaf] = 1
                                buckets[when].append(leaf << 2)
                if log1m is None:
                    nxt = t + 1
                else:
                    u = rng.random()
                    nxt = t + (int(log(u) / log1m) + 1 if u > 0.0 else 1)
                if nxt <= horizon:
                    buckets[nxt].append((terminal << 2) | _EV_GEN)

        bucket.clear()
        t += 1

    sim._next_serial = next_serial
    result = SimResult.from_stats(
        stats,
        offered_load=sim.load,
        num_terminals=num_terminals,
        traffic=traffic.name,
        topology=topo.name,
        unroutable_packets=sim.unroutable_packets,
    )
    if obs is not None:
        obs.on_run_end(sim, result)
    return result
