"""Counter-based per-packet RNG for the relaxed engine.

The exact engines share one sequential ``random.Random`` stream, so a
draw's value depends on every draw before it -- the property that
serializes arbitration (docs/PERFORMANCE.md) and caps the vectorized
engine near fast-path parity.  This module replaces the stream with a
**stateless keyed hash**: every draw is a pure function of

``(seed, packet_id, cycle, draw_site)``

so any set of draws can be evaluated in any order -- or all at once as
a numpy batch -- and still be deterministic for a given seed.  That is
the Philox/counter-based design (Salmon et al., "Parallel random
numbers: as easy as 1, 2, 3"), realized here with the SplitMix64
finalizer (Stafford's mix13) instead of Philox rounds: two chained
finalizer applications over 64-bit lanes are cheap in numpy (shifts,
xors and wrapping multiplies) and pass the statistical bar this engine
needs -- the equivalence harness in
``tests/test_relaxed_rng_equivalence.py`` checks the *simulation
outputs*, and ``tests/test_counter_rng.py`` checks the generator
itself (uniformity, stream independence, golden-vector stability).

Key derivation::

    hseed = mix64(seed ^ GOLDEN_GAMMA)          # once per run
    ckey  = (cycle << SITE_BITS) | site         # counter word
    value = mix64(mix64(hseed ^ packet_id) ^ ckey)

The scalar (Python int) and vectorized (``np.uint64``) forms are
bit-for-bit identical -- pinned by golden vectors in
``tests/data/counter_rng_golden.json`` so a platform or numpy change
that altered the outputs would fail loudly.

``randbelow`` reduces by modulo rather than rejection: the bias is
below ``n / 2**64`` (draw bounds here are single-digit fan-outs), and
unlike rejection it is branch-free and batchable.  ``uniform01`` uses
the top 53 bits, the same construction as ``random.Random.random``.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

__all__ = [
    "GOLDEN_GAMMA",
    "KeyedStream",
    "SITE_BITS",
    "SITE_DEST",
    "SITE_GAP",
    "SITE_GRANT",
    "SITE_REQUEST",
    "SITE_TRAFFIC",
    "SITE_VC",
    "SITE_VIA",
    "counter_key",
    "draw64",
    "draw64_array",
    "key_seed",
    "mix64",
    "mix64_array",
    "randbelow",
    "uniform01",
    "uniform01_array",
]

_MASK64 = (1 << 64) - 1

#: Weyl-sequence increment of SplitMix64 (2**64 / golden ratio).
GOLDEN_GAMMA = 0x9E3779B97F4A7C15

_MUL1 = 0xBF58476D1CE4E5B9
_MUL2 = 0x94D049BB133111EB

#: Draw-site tags: two draws in the same cycle for the same packet get
#: distinct counters by construction.  Three bits leave room to grow.
SITE_BITS = 3
SITE_REQUEST = 0  #: output-candidate pick when requesting arbitration
SITE_GRANT = 1  #: per-output grant priority among contenders
SITE_VC = 2  #: downstream virtual-channel pick at grant time
SITE_GAP = 3  #: Bernoulli inter-arrival gap (keyed by terminal)
SITE_DEST = 4  #: uniform destination draw (keyed by terminal)
SITE_VIA = 5  #: Valiant intermediate-terminal retry (keyed by serial)
SITE_TRAFFIC = 6  #: stateful traffic-pattern stream (keyed by terminal)

_U64 = np.uint64
_S30 = _U64(30)
_S27 = _U64(27)
_S31 = _U64(31)
_S11 = _U64(11)
_NPMUL1 = _U64(_MUL1)
_NPMUL2 = _U64(_MUL2)
_INV53 = 2.0**-53


def mix64(x: int) -> int:
    """SplitMix64 finalizer (Stafford mix13) on a 64-bit lane."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MUL1) & _MASK64
    x ^= x >> 27
    x = (x * _MUL2) & _MASK64
    return x ^ (x >> 31)


def key_seed(seed: int) -> int:
    """Pre-mixed run key for ``seed`` (compute once per run)."""
    return mix64((seed & _MASK64) ^ GOLDEN_GAMMA)


def counter_key(cycle: int, site: int) -> int:
    """Pack ``(cycle, draw_site)`` into one counter word."""
    return (cycle << SITE_BITS) | site


def draw64(hseed: int, packet_id: int, ckey: int) -> int:
    """One keyed 64-bit draw: ``mix64(mix64(hseed ^ id) ^ ckey)``."""
    x = (hseed ^ (packet_id & _MASK64)) & _MASK64
    x ^= x >> 30
    x = (x * _MUL1) & _MASK64
    x ^= x >> 27
    x = (x * _MUL2) & _MASK64
    x ^= x >> 31
    x ^= ckey & _MASK64
    x ^= x >> 30
    x = (x * _MUL1) & _MASK64
    x ^= x >> 27
    x = (x * _MUL2) & _MASK64
    return x ^ (x >> 31)


def randbelow(hseed: int, packet_id: int, ckey: int, n: int) -> int:
    """Keyed draw in ``[0, n)`` (modulo reduction, bias < n / 2**64)."""
    return draw64(hseed, packet_id, ckey) % n


def uniform01(hseed: int, packet_id: int, ckey: int) -> float:
    """Keyed draw in ``[0, 1)`` with 53 random bits."""
    return (draw64(hseed, packet_id, ckey) >> 11) * _INV53


def mix64_array(x: NDArray[np.uint64]) -> NDArray[np.uint64]:
    """Vectorized :func:`mix64`; wrapping uint64 arithmetic."""
    x = x ^ (x >> _S30)
    x = x * _NPMUL1
    x = x ^ (x >> _S27)
    x = x * _NPMUL2
    return x ^ (x >> _S31)


def draw64_array(
    hseed: int,
    packet_ids: NDArray[np.uint64],
    ckeys: int | NDArray[np.uint64],
) -> NDArray[np.uint64]:
    """Vectorized :func:`draw64` over packet-id / counter lanes.

    ``ckeys`` may be a scalar (one cycle/site for the whole batch) or
    an array broadcastable against ``packet_ids``.  Bit-for-bit equal
    to the scalar form, which the golden-vector suite pins.
    """
    ck = ckeys if isinstance(ckeys, np.ndarray) else _U64(ckeys)
    return mix64_array(mix64_array(_U64(hseed) ^ packet_ids) ^ ck)


def uniform01_array(
    hseed: int,
    packet_ids: NDArray[np.uint64],
    ckeys: int | NDArray[np.uint64],
) -> NDArray[np.float64]:
    """Vectorized :func:`uniform01`."""
    out: NDArray[np.float64] = (
        draw64_array(hseed, packet_ids, ckeys) >> _S11
    ).astype(np.float64)
    out *= _INV53
    return out


class KeyedStream:
    """Sequential sub-draws under one ``(packet, cycle, site)`` key.

    Stateful traffic patterns (locality, shuffle, ...) consume a
    variable number of draws per destination; handing them one keyed
    counter would collapse those draws onto the same value.  This
    adapter seeds a tiny SplitMix64 walk from the keyed draw and
    duck-types the ``random.Random`` surface the patterns use, so a
    ``destination(source, rng)`` call sees an independent stream per
    ``(seed, terminal, cycle)`` while staying a pure function of the
    key.
    """

    __slots__ = ("_x",)

    def __init__(self, hseed: int, packet_id: int, ckey: int) -> None:
        self._x = draw64(hseed, packet_id, ckey)

    def _next(self) -> int:
        self._x = (self._x + GOLDEN_GAMMA) & _MASK64
        return mix64(self._x)

    def random(self) -> float:
        """Uniform in ``[0, 1)`` (53 bits)."""
        return (self._next() >> 11) * _INV53

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``."""
        return self._next() % n

    def randint(self, a: int, b: int) -> int:
        """Uniform integer in ``[a, b]`` (inclusive, stdlib semantics)."""
        return a + self._next() % (b - a + 1)

    def choice(self, seq):  # type: ignore[no-untyped-def]
        """Uniform element of a non-empty sequence."""
        return seq[self._next() % len(seq)]

    def getrandbits(self, k: int) -> int:
        """``k`` random bits (top bits of the next word)."""
        return self._next() >> (64 - k)

    def shuffle(self, seq) -> None:  # type: ignore[no-untyped-def]
        """Fisher-Yates in place, mirroring ``random.shuffle``."""
        for i in range(len(seq) - 1, 0, -1):
            j = self._next() % (i + 1)
            seq[i], seq[j] = seq[j], seq[i]
