"""Packed-bitset ancestor sweeps over ``(level_sizes, up_stages)``.

Vectorized twins of the big-int sweeps in :mod:`repro.core.ancestors`
and of the ``U_j`` table construction in
:class:`repro.routing.updown.UpDownRouter`:

* the **descendant sweep** walks stages upward, OR-ing each upper
  switch's down-neighbor leaf sets (grouped by upper endpoint);
* the **coverage sweep** walks stages downward, OR-ing each lower
  switch's up-neighbor root-coverage sets (grouped by lower endpoint);
* the **reach tables** iterate the coverage recurrence once per ascent
  budget ``j``, exactly like the router's reference construction.

Each stage's edges are laid out flat once (:class:`StageSweeper`), with
both groupings precomputed, so a sweep is one gather plus one
``reduceat`` per stage.  Two layout decisions carry the performance:

* mask arrays are held **transposed** -- ``(W, N)`` words-by-switches
  -- because ``np.bitwise_or.reduceat`` along the last (contiguous)
  axis is an order of magnitude faster than reducing axis 0 of the
  natural ``(N, W)`` layout (the reduction then strides across rows);
* every internal array carries one trailing always-zero **null
  column**, and pruned edges are redirected there by index instead of
  zeroing their gathered rows -- zero is the OR identity, so a masked
  edge contributes nothing, and the mask costs one ``np.where`` over
  edge indices rather than a scatter write into the gather buffer.

Fault analyses therefore pass per-stage boolean *keep* masks instead
of rebuilding pruned stage lists, which is what makes
:func:`repro.faults.updown_survival.order_threshold`'s binary search
incremental (one mask comparison per probe, no Python list rebuilds).
Public methods return masks in the natural ``(N, W)`` layout expected
by :mod:`repro.accel.bitset`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from .bitset import full_row, popcount, words_for

__all__ = ["StageSweeper"]

StageAdjacency = Sequence[Sequence[Sequence[int]]]


def _singletons_t(n: int) -> NDArray[np.uint64]:
    """Transposed singleton masks: ``(W, n + 1)`` with a null column."""
    out = np.zeros((words_for(n), n + 1), dtype=np.uint64)
    idx = np.arange(n, dtype=np.intp)
    out[idx >> 6, idx] = np.uint64(1) << (idx & 63).astype(np.uint64)
    return out


def _natural(masks_t: NDArray[np.uint64]) -> NDArray[np.uint64]:
    """Back to the natural ``(N, W)`` layout, null column stripped."""
    return np.ascontiguousarray(masks_t[:, :-1].T)


class _StageEdges:
    """One inter-level stage flattened for both reduction directions."""

    __slots__ = (
        "n_lo", "n_hi", "src", "dst", "down_src",
        "up_starts", "up_rows", "down_perm", "down_starts", "down_rows",
    )

    def __init__(self, n_lo: int, n_hi: int, rows: Sequence[Sequence[int]]):
        self.n_lo = n_lo
        self.n_hi = n_hi
        counts = np.fromiter(
            (len(row) for row in rows), dtype=np.intp, count=n_lo
        )
        offsets = np.zeros(n_lo + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        edges = int(offsets[-1])
        self.src = np.repeat(np.arange(n_lo, dtype=np.intp), counts)
        self.dst = np.fromiter(
            (t for row in rows for t in row), dtype=np.intp, count=edges
        )
        # Group by lower endpoint: edges are already in row order.
        self.up_rows = np.nonzero(counts)[0]
        self.up_starts = offsets[self.up_rows]
        # Group by upper endpoint: stable sort keeps per-switch edge
        # order deterministic.
        self.down_perm = np.argsort(self.dst, kind="stable")
        self.down_src = self.src[self.down_perm]
        dst_counts = np.bincount(self.dst, minlength=n_hi).astype(np.intp)
        down_offsets = np.zeros(n_hi + 1, dtype=np.intp)
        np.cumsum(dst_counts, out=down_offsets[1:])
        self.down_rows = np.nonzero(dst_counts)[0]
        self.down_starts = down_offsets[self.down_rows]

    def _reduce(
        self,
        masks_t: NDArray[np.uint64],
        idx: NDArray[np.intp],
        null: int,
        keep: NDArray[np.bool_] | None,
        starts: NDArray[np.intp],
        rows: NDArray[np.intp],
        n_out: int,
    ) -> NDArray[np.uint64]:
        out = np.zeros((masks_t.shape[0], n_out + 1), dtype=np.uint64)
        if rows.size == 0:
            return out
        if keep is not None:
            idx = np.where(keep, idx, null)
        gathered = np.take(masks_t, idx, axis=1)
        out[:, rows] = np.bitwise_or.reduceat(gathered, starts, axis=1)
        return out

    def or_up(
        self,
        lower_t: NDArray[np.uint64],
        keep: NDArray[np.bool_] | None,
    ) -> NDArray[np.uint64]:
        """``out[t] = OR lower[s]`` over surviving edges ``s -> t``."""
        return self._reduce(
            lower_t,
            self.down_src,
            self.n_lo,
            keep[self.down_perm] if keep is not None else None,
            self.down_starts,
            self.down_rows,
            self.n_hi,
        )

    def or_down(
        self,
        upper_t: NDArray[np.uint64],
        keep: NDArray[np.bool_] | None,
    ) -> NDArray[np.uint64]:
        """``out[s] = OR upper[t]`` over surviving edges ``s -> t``."""
        return self._reduce(
            upper_t, self.dst, self.n_hi, keep,
            self.up_starts, self.up_rows, self.n_lo,
        )


class StageSweeper:
    """Reusable packed-sweep engine for one ``(level_sizes, up_stages)``.

    Construction cost is one pass over the stage lists; every sweep
    afterwards is pure numpy.  ``keep_masks`` arguments, when given,
    hold one boolean array per stage aligned with that stage's flat
    edge order (row-major over ``up_stages[stage]``) -- ``False``
    removes the edge from the sweep.
    """

    def __init__(
        self, level_sizes: Sequence[int], up_stages: StageAdjacency
    ) -> None:
        if len(up_stages) != len(level_sizes) - 1:
            raise ValueError("up_stages must have one entry per stage")
        self.level_sizes = [int(n) for n in level_sizes]
        self.n1 = self.level_sizes[0]
        self.stages = [
            _StageEdges(self.level_sizes[i], self.level_sizes[i + 1], rows)
            for i, rows in enumerate(up_stages)
        ]

    # ------------------------------------------------------------------
    # Core sweeps (internal: transposed layout with null column)
    # ------------------------------------------------------------------
    def _descend_t(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None
    ) -> list[NDArray[np.uint64]]:
        masks = [_singletons_t(self.n1)]
        for i, stage in enumerate(self.stages):
            keep = keep_masks[i] if keep_masks is not None else None
            masks.append(stage.or_up(masks[i], keep))
        return masks

    def _cover_t(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None
    ) -> NDArray[np.uint64]:
        cover = self._descend_t(keep_masks)[-1]
        for i in range(len(self.stages) - 1, -1, -1):
            keep = keep_masks[i] if keep_masks is not None else None
            cover = self.stages[i].or_down(cover, keep)
        return cover | _singletons_t(self.n1)

    # ------------------------------------------------------------------
    # Public sweeps (natural ``(N, W)`` layout)
    # ------------------------------------------------------------------
    def descendant_masks(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None = None
    ) -> list[NDArray[np.uint64]]:
        """Per-level ``(N_level, W)`` packed descendant-leaf sets."""
        return [_natural(m) for m in self._descend_t(keep_masks)]

    def coverage_masks(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None = None
    ) -> NDArray[np.uint64]:
        """Per-leaf packed up*/down* coverage (own bit included)."""
        return _natural(self._cover_t(keep_masks))

    def has_updown(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None = None
    ) -> bool:
        """Whether every leaf pair keeps a common ancestor."""
        if self.n1 == 0:
            return True
        cover = self._cover_t(keep_masks)
        return bool(np.all(cover[:, :-1] == full_row(self.n1)[:, None]))

    def reachable_fraction(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None = None
    ) -> float:
        """Fraction of ordered leaf pairs joined by an up*/down* path."""
        if self.n1 < 2:
            return 1.0
        cover = self._cover_t(keep_masks)
        covered = int(popcount(cover).sum()) - self.n1
        return covered / (self.n1 * (self.n1 - 1))

    def root_ancestor_masks(self) -> NDArray[np.uint64]:
        """Per-leaf packed set of reachable root switches."""
        masks = _singletons_t(self.level_sizes[-1])
        for stage in reversed(self.stages):
            masks = stage.or_down(masks, None)
        return _natural(masks)

    # ------------------------------------------------------------------
    # Router tables
    # ------------------------------------------------------------------
    def reach_tables(self) -> list[list[NDArray[np.uint64]]]:
        """``tables[level][j]`` = packed ``U_j`` masks, one row per switch.

        ``U_0`` is the descendant sweep; ``U_j`` at a level is the OR of
        ``U_{j-1}`` over up-neighbors -- the exact recurrence of
        :meth:`UpDownRouter._build_tables`, so converting these rows to
        big-ints reproduces the reference ``_reach`` bit for bit.
        Level ``L`` has entries for ``j = 0 .. levels - 1 - L``.
        """
        levels = len(self.level_sizes)
        descend = self._descend_t(None)
        tables_t: list[list[NDArray[np.uint64]]] = [
            [descend[level]] for level in range(levels)
        ]
        for j in range(1, levels):
            for level in range(levels - j):
                tables_t[level].append(
                    self.stages[level].or_down(tables_t[level + 1][j - 1], None)
                )
        return [[_natural(t) for t in per_level] for per_level in tables_t]

    # ------------------------------------------------------------------
    # Incremental pruning
    # ------------------------------------------------------------------
    def keep_masks_for_positions(
        self,
        positions: Sequence[NDArray[np.int64]],
        threshold: int,
    ) -> list[NDArray[np.bool_]]:
        """Keep masks for "first ``threshold`` failures applied".

        ``positions[stage][e]`` is the failure-order index of stage
        edge ``e`` (``len(order)`` and beyond = never fails); an edge
        survives while its position is ``>= threshold``.  Binary
        searches re-derive the masks per probe with one comparison per
        edge -- no stage lists are rebuilt.
        """
        return [pos >= threshold for pos in positions]

    def edge_keys(self) -> list[tuple[NDArray[np.intp], NDArray[np.intp]]]:
        """Per-stage ``(src, dst)`` level-local endpoint arrays.

        Aligned with the flat edge order used by ``keep`` masks; used
        to map failure orders (flat :class:`Link` ids) onto stage
        edges.
        """
        return [(stage.src, stage.dst) for stage in self.stages]
