"""Packed-bitset ancestor sweeps over ``(level_sizes, up_stages)``.

Vectorized twins of the big-int sweeps in :mod:`repro.core.ancestors`
and of the ``U_j`` table construction in
:class:`repro.routing.updown.UpDownRouter`:

* the **descendant sweep** walks stages upward, OR-ing each upper
  switch's down-neighbor leaf sets (grouped by upper endpoint);
* the **coverage sweep** walks stages downward, OR-ing each lower
  switch's up-neighbor root-coverage sets (grouped by lower endpoint);
* the **reach tables** iterate the coverage recurrence once per ascent
  budget ``j``, exactly like the router's reference construction.

Each stage's edges are laid out flat once (:class:`StageSweeper`), with
both groupings precomputed, so a sweep is one gather plus one
``reduceat`` per stage.  Two layout decisions carry the performance:

* mask arrays are held **transposed** -- ``(W, N)`` words-by-switches
  -- because ``np.bitwise_or.reduceat`` along the last (contiguous)
  axis is an order of magnitude faster than reducing axis 0 of the
  natural ``(N, W)`` layout (the reduction then strides across rows);
* every internal array carries one trailing always-zero **null
  column**, and pruned edges are redirected there by index instead of
  zeroing their gathered rows -- zero is the OR identity, so a masked
  edge contributes nothing, and the mask costs one ``np.where`` over
  edge indices rather than a scatter write into the gather buffer.

Fault analyses therefore pass per-stage boolean *keep* masks instead
of rebuilding pruned stage lists, which is what makes
:func:`repro.faults.updown_survival.order_threshold`'s binary search
incremental (one mask comparison per probe, no Python list rebuilds).
Public methods return masks in the natural ``(N, W)`` layout expected
by :mod:`repro.accel.bitset`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from .bitset import full_row, popcount, words_for

__all__ = ["StageSweeper", "IncrementalSweeper"]

StageAdjacency = Sequence[Sequence[Sequence[int]]]


def _singletons_t(n: int) -> NDArray[np.uint64]:
    """Transposed singleton masks: ``(W, n + 1)`` with a null column."""
    out = np.zeros((words_for(n), n + 1), dtype=np.uint64)
    idx = np.arange(n, dtype=np.intp)
    out[idx >> 6, idx] = np.uint64(1) << (idx & 63).astype(np.uint64)
    return out


def _natural(masks_t: NDArray[np.uint64]) -> NDArray[np.uint64]:
    """Back to the natural ``(N, W)`` layout, null column stripped."""
    return np.ascontiguousarray(masks_t[:, :-1].T)


class _StageEdges:
    """One inter-level stage flattened for both reduction directions."""

    __slots__ = (
        "n_lo", "n_hi", "src", "dst", "down_src", "down_offsets",
        "up_starts", "up_rows", "down_perm", "down_starts", "down_rows",
    )

    def __init__(self, n_lo: int, n_hi: int, rows: Sequence[Sequence[int]]):
        counts = np.fromiter(
            (len(row) for row in rows), dtype=np.intp, count=n_lo
        )
        offsets = np.zeros(n_lo + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        edges = int(offsets[-1])
        dst = np.fromiter(
            (t for row in rows for t in row), dtype=np.intp, count=edges
        )
        self._index(n_lo, n_hi, counts, offsets, dst)

    @classmethod
    def from_csr(
        cls,
        n_lo: int,
        n_hi: int,
        offsets: NDArray[np.int64],
        indices: NDArray[np.int32],
    ) -> "_StageEdges":
        """Array-native constructor: no Python row iteration.

        ``offsets``/``indices`` are a per-row-sorted CSR as built by
        :class:`repro.topologies.packed.PackedFoldedClos`; sorted rows
        make the flat edge order identical to the list-of-rows
        constructor's, so ``keep`` masks are interchangeable between
        the two build paths.
        """
        self = cls.__new__(cls)
        off = offsets.astype(np.intp, copy=False)
        self._index(
            n_lo, n_hi, np.diff(off), off, indices.astype(np.intp, copy=False)
        )
        return self

    def _index(
        self,
        n_lo: int,
        n_hi: int,
        counts: NDArray[np.intp],
        offsets: NDArray[np.intp],
        dst: NDArray[np.intp],
    ) -> None:
        self.n_lo = n_lo
        self.n_hi = n_hi
        self.src = np.repeat(np.arange(n_lo, dtype=np.intp), counts)
        self.dst = dst
        # Group by lower endpoint: edges are already in row order.
        self.up_rows = np.nonzero(counts)[0]
        self.up_starts = offsets[self.up_rows]
        # Group by upper endpoint: stable sort keeps per-switch edge
        # order deterministic.
        self.down_perm = np.argsort(self.dst, kind="stable")
        self.down_src = self.src[self.down_perm]
        dst_counts = np.bincount(self.dst, minlength=n_hi).astype(np.intp)
        self.down_offsets = np.zeros(n_hi + 1, dtype=np.intp)
        np.cumsum(dst_counts, out=self.down_offsets[1:])
        self.down_rows = np.nonzero(dst_counts)[0]
        self.down_starts = self.down_offsets[self.down_rows]

    def _reduce(
        self,
        masks_t: NDArray[np.uint64],
        idx: NDArray[np.intp],
        null: int,
        keep: NDArray[np.bool_] | None,
        starts: NDArray[np.intp],
        rows: NDArray[np.intp],
        n_out: int,
    ) -> NDArray[np.uint64]:
        out = np.zeros((masks_t.shape[0], n_out + 1), dtype=np.uint64)
        if rows.size == 0:
            return out
        if keep is not None:
            idx = np.where(keep, idx, null)
        gathered = np.take(masks_t, idx, axis=1)
        out[:, rows] = np.bitwise_or.reduceat(gathered, starts, axis=1)
        return out

    def or_up(
        self,
        lower_t: NDArray[np.uint64],
        keep: NDArray[np.bool_] | None,
    ) -> NDArray[np.uint64]:
        """``out[t] = OR lower[s]`` over surviving edges ``s -> t``."""
        return self._reduce(
            lower_t,
            self.down_src,
            self.n_lo,
            keep[self.down_perm] if keep is not None else None,
            self.down_starts,
            self.down_rows,
            self.n_hi,
        )

    def or_down(
        self,
        upper_t: NDArray[np.uint64],
        keep: NDArray[np.bool_] | None,
    ) -> NDArray[np.uint64]:
        """``out[s] = OR upper[t]`` over surviving edges ``s -> t``."""
        return self._reduce(
            upper_t, self.dst, self.n_hi, keep,
            self.up_starts, self.up_rows, self.n_lo,
        )

    def or_up_rows(
        self,
        lower_t: NDArray[np.uint64],
        out_t: NDArray[np.uint64],
        rows: NDArray[np.intp],
    ) -> None:
        """Recompute only ``rows`` of the up-reduction, in place.

        ``out_t`` is a transposed ``(W, n_hi + 1)`` mask array whose
        other columns are assumed current; the selected rows are fully
        re-reduced from ``lower_t`` (rows with no down-neighbors become
        zero).  This is the incremental-sweep workhorse: cost scales
        with the edges *of the dirty rows*, not the stage.
        """
        if rows.size == 0:
            return
        out_t[:, rows] = 0
        starts = self.down_offsets[rows]
        lens = self.down_offsets[rows + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return
        # Concatenated [start, start + len) ranges for every dirty row.
        ends = np.cumsum(lens)
        pos = np.arange(total, dtype=np.intp)
        pos += np.repeat(starts - (ends - lens), lens)
        gathered = np.take(lower_t, self.down_src[pos], axis=1)
        nonempty = lens > 0
        reduced = np.bitwise_or.reduceat(
            gathered, (ends - lens)[nonempty], axis=1
        )
        out_t[:, rows[nonempty]] = reduced


class StageSweeper:
    """Reusable packed-sweep engine for one ``(level_sizes, up_stages)``.

    Construction cost is one pass over the stage lists; every sweep
    afterwards is pure numpy.  ``keep_masks`` arguments, when given,
    hold one boolean array per stage aligned with that stage's flat
    edge order (row-major over ``up_stages[stage]``) -- ``False``
    removes the edge from the sweep.
    """

    def __init__(
        self, level_sizes: Sequence[int], up_stages: StageAdjacency
    ) -> None:
        if len(up_stages) != len(level_sizes) - 1:
            raise ValueError("up_stages must have one entry per stage")
        self.level_sizes = [int(n) for n in level_sizes]
        self.n1 = self.level_sizes[0]
        self.stages = [
            _StageEdges(self.level_sizes[i], self.level_sizes[i + 1], rows)
            for i, rows in enumerate(up_stages)
        ]

    @classmethod
    def from_arrays(
        cls,
        level_sizes: Sequence[int],
        stage_arrays: Sequence[
            tuple[NDArray[np.int64], NDArray[np.int32]]
        ],
    ) -> "StageSweeper":
        """Build from per-stage sorted-row CSR ``(offsets, indices)`` pairs.

        The array-native twin of ``__init__`` for
        :class:`repro.topologies.packed.PackedFoldedClos` stage arrays
        (see :meth:`~repro.topologies.packed.PackedFoldedClos.up_stage_arrays`):
        no Python row lists are materialized, and the flat edge order
        matches the list constructor's exactly, so sweeps and ``keep``
        masks agree bit for bit across both build paths.
        """
        if len(stage_arrays) != len(level_sizes) - 1:
            raise ValueError("stage_arrays must have one entry per stage")
        self = cls.__new__(cls)
        self.level_sizes = [int(n) for n in level_sizes]
        self.n1 = self.level_sizes[0]
        self.stages = [
            _StageEdges.from_csr(
                self.level_sizes[i], self.level_sizes[i + 1], off, idx
            )
            for i, (off, idx) in enumerate(stage_arrays)
        ]
        return self

    # ------------------------------------------------------------------
    # Core sweeps (internal: transposed layout with null column)
    # ------------------------------------------------------------------
    def _descend_t(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None
    ) -> list[NDArray[np.uint64]]:
        masks = [_singletons_t(self.n1)]
        for i, stage in enumerate(self.stages):
            keep = keep_masks[i] if keep_masks is not None else None
            masks.append(stage.or_up(masks[i], keep))
        return masks

    def _cover_t(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None
    ) -> NDArray[np.uint64]:
        cover = self._descend_t(keep_masks)[-1]
        for i in range(len(self.stages) - 1, -1, -1):
            keep = keep_masks[i] if keep_masks is not None else None
            cover = self.stages[i].or_down(cover, keep)
        return cover | _singletons_t(self.n1)

    # ------------------------------------------------------------------
    # Public sweeps (natural ``(N, W)`` layout)
    # ------------------------------------------------------------------
    def descendant_masks(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None = None
    ) -> list[NDArray[np.uint64]]:
        """Per-level ``(N_level, W)`` packed descendant-leaf sets."""
        return [_natural(m) for m in self._descend_t(keep_masks)]

    def coverage_masks(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None = None
    ) -> NDArray[np.uint64]:
        """Per-leaf packed up*/down* coverage (own bit included)."""
        return _natural(self._cover_t(keep_masks))

    def has_updown(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None = None
    ) -> bool:
        """Whether every leaf pair keeps a common ancestor."""
        if self.n1 == 0:
            return True
        cover = self._cover_t(keep_masks)
        return bool(np.all(cover[:, :-1] == full_row(self.n1)[:, None]))

    def reachable_fraction(
        self, keep_masks: Sequence[NDArray[np.bool_]] | None = None
    ) -> float:
        """Fraction of ordered leaf pairs joined by an up*/down* path."""
        if self.n1 < 2:
            return 1.0
        cover = self._cover_t(keep_masks)
        covered = int(popcount(cover).sum()) - self.n1
        return covered / (self.n1 * (self.n1 - 1))

    def root_ancestor_masks(self) -> NDArray[np.uint64]:
        """Per-leaf packed set of reachable root switches."""
        masks = _singletons_t(self.level_sizes[-1])
        for stage in reversed(self.stages):
            masks = stage.or_down(masks, None)
        return _natural(masks)

    # ------------------------------------------------------------------
    # Router tables
    # ------------------------------------------------------------------
    def reach_tables(self) -> list[list[NDArray[np.uint64]]]:
        """``tables[level][j]`` = packed ``U_j`` masks, one row per switch.

        ``U_0`` is the descendant sweep; ``U_j`` at a level is the OR of
        ``U_{j-1}`` over up-neighbors -- the exact recurrence of
        :meth:`UpDownRouter._build_tables`, so converting these rows to
        big-ints reproduces the reference ``_reach`` bit for bit.
        Level ``L`` has entries for ``j = 0 .. levels - 1 - L``.
        """
        levels = len(self.level_sizes)
        descend = self._descend_t(None)
        tables_t: list[list[NDArray[np.uint64]]] = [
            [descend[level]] for level in range(levels)
        ]
        for j in range(1, levels):
            for level in range(levels - j):
                tables_t[level].append(
                    self.stages[level].or_down(tables_t[level + 1][j - 1], None)
                )
        return [[_natural(t) for t in per_level] for per_level in tables_t]

    # ------------------------------------------------------------------
    # Incremental pruning
    # ------------------------------------------------------------------
    def keep_masks_for_positions(
        self,
        positions: Sequence[NDArray[np.int64]],
        threshold: int,
    ) -> list[NDArray[np.bool_]]:
        """Keep masks for "first ``threshold`` failures applied".

        ``positions[stage][e]`` is the failure-order index of stage
        edge ``e`` (``len(order)`` and beyond = never fails); an edge
        survives while its position is ``>= threshold``.  Binary
        searches re-derive the masks per probe with one comparison per
        edge -- no stage lists are rebuilt.
        """
        return [pos >= threshold for pos in positions]

    def edge_keys(self) -> list[tuple[NDArray[np.intp], NDArray[np.intp]]]:
        """Per-stage ``(src, dst)`` level-local endpoint arrays.

        Aligned with the flat edge order used by ``keep`` masks; used
        to map failure orders (flat :class:`Link` ids) onto stage
        edges.
        """
        return [(stage.src, stage.dst) for stage in self.stages]


class IncrementalSweeper:
    """Descendant sweeps that survive topology growth.

    Strong-expansion analysis (paper Section 4.4 / Figure 7) evaluates
    the *same* RFC at a ladder of sizes: each step adds a few switches
    per level and rewires O(R) links, leaving the vast majority of
    stage edges -- and therefore of descendant-leaf masks -- untouched.
    This sweeper keeps the transposed descendant masks of the previous
    size and, on :meth:`update`, recomputes only the **dirty** rows:

    * upper endpoints of stage edges added or removed since the last
      size (diffed as sorted int64 ``src * n_hi + dst`` keys);
    * up-neighbors of rows already dirty one level below (a changed
      descendant set propagates along every surviving up-link);
    * switches that did not exist at the previous size.

    Dirtiness only ever propagates *upward*; the downward coverage
    sweep is re-run in full from the cached root masks (a single dirty
    root would dirty nearly every leaf, so there is nothing to save in
    that direction -- and the upward half is where the stage-edge
    indexing cost lives).  Levels may only grow: sizes must be
    monotonically non-decreasing with an unchanged level count.

    Equality with a from-scratch :class:`StageSweeper` at every step is
    asserted by ``tests/test_incremental_ancestors.py``.
    """

    def __init__(
        self,
        level_sizes: Sequence[int],
        stage_arrays: Sequence[
            tuple[NDArray[np.int64], NDArray[np.int32]]
        ],
    ) -> None:
        self._sweeper = StageSweeper.from_arrays(level_sizes, stage_arrays)
        self._descend_t = self._sweeper._descend_t(None)
        self._cover_cache: NDArray[np.uint64] | None = None
        self.last_update_stats: dict[str, int] = {
            "dirty_rows": sum(self.level_sizes[1:]),
            "total_rows": sum(self.level_sizes[1:]),
        }

    @property
    def level_sizes(self) -> list[int]:
        return self._sweeper.level_sizes

    @property
    def n1(self) -> int:
        return self._sweeper.n1

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def update(
        self,
        level_sizes: Sequence[int],
        stage_arrays: Sequence[
            tuple[NDArray[np.int64], NDArray[np.int32]]
        ],
    ) -> dict[str, int]:
        """Adopt a grown topology, recomputing only dirty mask rows.

        Returns (and stores as :attr:`last_update_stats`) the dirty /
        total row counts above level 0 -- the incremental saving is
        ``1 - dirty / total`` of the upward sweep.
        """
        old_sizes = self.level_sizes
        new_sizes = [int(n) for n in level_sizes]
        if len(new_sizes) != len(old_sizes):
            raise ValueError(
                f"level count changed ({len(old_sizes)} -> {len(new_sizes)}); "
                "incremental update needs a fixed level structure"
            )
        if any(n < o for n, o in zip(new_sizes, old_sizes)):
            raise ValueError("levels may only grow under incremental update")
        new_sweeper = StageSweeper.from_arrays(new_sizes, stage_arrays)
        masks = [_singletons_t(new_sizes[0])]
        dirty = np.arange(old_sizes[0], new_sizes[0], dtype=np.intp)
        dirty_rows = 0
        for i, stage in enumerate(new_sweeper.stages):
            old_stage = self._sweeper.stages[i]
            n_hi_new = np.int64(new_sizes[i + 1])
            new_keys = stage.src * n_hi_new + stage.dst
            old_keys = old_stage.src * n_hi_new + old_stage.dst
            changed = np.concatenate(
                [
                    np.setdiff1d(new_keys, old_keys, assume_unique=True),
                    np.setdiff1d(old_keys, new_keys, assume_unique=True),
                ]
            )
            parts = [
                (changed % n_hi_new).astype(np.intp),
                np.arange(old_sizes[i + 1], new_sizes[i + 1], dtype=np.intp),
            ]
            if dirty.size:
                below = np.zeros(new_sizes[i], dtype=bool)
                below[dirty] = True
                parts.append(stage.dst[below[stage.src]])
            dirty = np.unique(np.concatenate(parts))
            upper = np.zeros(
                (words_for(new_sizes[0]), new_sizes[i + 1] + 1),
                dtype=np.uint64,
            )
            old_upper = self._descend_t[i + 1]
            upper[: old_upper.shape[0], : old_sizes[i + 1]] = old_upper[:, :-1]
            stage.or_up_rows(masks[i], upper, dirty)
            masks.append(upper)
            dirty_rows += int(dirty.size)
        self._sweeper = new_sweeper
        self._descend_t = masks
        self._cover_cache = None
        self.last_update_stats = {
            "dirty_rows": dirty_rows,
            "total_rows": sum(new_sizes[1:]),
        }
        return self.last_update_stats

    # ------------------------------------------------------------------
    # Queries (natural layout, matching StageSweeper semantics)
    # ------------------------------------------------------------------
    def _cover_t(self) -> NDArray[np.uint64]:
        if self._cover_cache is None:
            cover = self._descend_t[-1]
            for stage in reversed(self._sweeper.stages):
                cover = stage.or_down(cover, None)
            self._cover_cache = cover | _singletons_t(self.n1)
        return self._cover_cache

    def descendant_masks(self) -> list[NDArray[np.uint64]]:
        """Per-level ``(N_level, W)`` packed descendant-leaf sets."""
        return [_natural(m) for m in self._descend_t]

    def coverage_masks(self) -> NDArray[np.uint64]:
        """Per-leaf packed up*/down* coverage (own bit included)."""
        return _natural(self._cover_t())

    def has_updown(self) -> bool:
        """Whether every leaf pair has a common ancestor."""
        if self.n1 == 0:
            return True
        cover = self._cover_t()
        return bool(np.all(cover[:, :-1] == full_row(self.n1)[:, None]))

    def reachable_fraction(self) -> float:
        """Fraction of ordered leaf pairs joined by an up*/down* path."""
        if self.n1 < 2:
            return 1.0
        covered = int(popcount(self._cover_t()).sum()) - self.n1
        return covered / (self.n1 * (self.n1 - 1))
