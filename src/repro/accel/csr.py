"""Compressed-sparse-row adjacency for the numpy kernel layer.

Every vectorized analysis in :mod:`repro.accel` reduces to one
primitive: *for each vertex, OR (or MIN) a row-vector over its
neighbors*.  :class:`CsrAdjacency` stores the neighbor lists once as
two flat int32 arrays (``offsets``/``indices``) so that primitive can
run as a single ``np.ufunc.reduceat`` call instead of a Python loop
over edges.

The representation is built once per graph -- from the plain
``list[list[int]]`` adjacency produced by
:meth:`FoldedClos.adjacency` / :meth:`DirectNetwork.adjacency` -- and
is immutable; fault analyses express pruning as per-edge *keep* masks
(see :func:`gather_or`) rather than by rebuilding the arrays.

A ``reduceat`` subtlety this module hides: a segment whose start index
equals the next start (an empty neighbor list) does not reduce to the
identity element, it returns the operand row at the start index.  The
kernels therefore reduce only the non-empty rows -- consecutive
non-empty starts still delimit exactly one row's neighbors because the
empty rows in between contribute no operand rows -- and scatter the
results into a zero-initialized output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from numpy.typing import NDArray

__all__ = ["CsrAdjacency", "gather_or", "gather_min"]


@dataclass(frozen=True)
class CsrAdjacency:
    """Immutable CSR view of an undirected adjacency-list graph.

    ``indices[offsets[v]:offsets[v + 1]]`` are the neighbors of vertex
    ``v`` in the same order as the source adjacency lists.  ``offsets``
    has ``num_vertices + 1`` entries; both arrays use fixed dtypes
    (``intp`` offsets for ``reduceat``, int32 indices) so kernels never
    re-cast per call.
    """

    num_vertices: int
    offsets: NDArray[np.intp]
    indices: NDArray[np.int32]
    #: Vertices with at least one neighbor (reduceat operates on these).
    nonempty: NDArray[np.intp] = field(repr=False)

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "CsrAdjacency":
        """Build from ``list``-of-``list`` adjacency (both directions listed)."""
        n = len(adjacency)
        degrees = np.fromiter(
            (len(row) for row in adjacency), dtype=np.intp, count=n
        )
        offsets = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(degrees, out=offsets[1:])
        indices = np.fromiter(
            (t for row in adjacency for t in row),
            dtype=np.int32,
            count=int(offsets[-1]),
        )
        return cls(
            num_vertices=n,
            offsets=offsets,
            indices=indices,
            nonempty=np.nonzero(degrees)[0],
        )

    @property
    def num_edges(self) -> int:
        """Directed edge count (twice the cables for undirected graphs)."""
        return int(self.offsets[-1])


def gather_or(
    csr: CsrAdjacency,
    rows: NDArray[np.uint64],
    keep: NDArray[np.bool_] | None = None,
) -> NDArray[np.uint64]:
    """Per-vertex OR of neighbor rows: ``out[v] = OR rows[u] for u adj v``.

    ``rows`` is ``(num_vertices, W)`` packed-bitset words; vertices with
    no neighbors get all-zero rows.  ``keep`` (aligned with
    ``csr.indices``) zeroes the contribution of masked-out edges, which
    is how fault analyses prune links without rebuilding the CSR --
    OR-ing zero is the identity.
    """
    out = np.zeros((csr.num_vertices, rows.shape[1]), dtype=np.uint64)
    if csr.nonempty.size == 0:
        return out
    gathered = rows[csr.indices]
    if keep is not None:
        gathered[~keep] = 0
    out[csr.nonempty] = np.bitwise_or.reduceat(
        gathered, csr.offsets[csr.nonempty], axis=0
    )
    return out


def gather_min(
    csr: CsrAdjacency, values: NDArray[np.int32]
) -> NDArray[np.int32]:
    """Per-vertex MIN over neighbor values (label-propagation primitive).

    Vertices with no neighbors keep ``numpy.iinfo(int32).max`` so the
    caller's ``minimum(self, neighbors)`` leaves isolated labels alone.
    """
    out = np.full(csr.num_vertices, np.iinfo(np.int32).max, dtype=np.int32)
    if csr.nonempty.size == 0:
        return out
    out[csr.nonempty] = np.minimum.reduceat(
        values[csr.indices], csr.offsets[csr.nonempty]
    )
    return out
