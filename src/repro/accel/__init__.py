"""Vectorized graph-analysis kernels (numpy).

This package accelerates the *analysis* layer -- distance metrics,
connectivity, ancestor/coverage sweeps and up/down routing tables --
with the same philosophy as the simulator's precomputed-route fast
path (:mod:`repro.simulation.fastpath`): every accelerated entry point
keeps its pure-Python implementation as the reference oracle, defaults
to the numpy kernel (``accel=True``), silently falls back where the
kernels do not apply (empty graphs, numpy unavailable), and is proven
**bit-for-bit equal** to the reference by the differential harness in
``tests/test_accel_differential.py`` plus the Hypothesis suites in
``tests/test_accel_properties.py``.

Three kernel families:

* :class:`CsrAdjacency` -- int32 ``offsets``/``indices`` built once
  from adjacency lists; the per-vertex neighbor reduction then runs as
  a single ``np.bitwise_or.reduceat`` (:func:`gather_or`).
* Batched level-synchronous BFS (:func:`bfs_distances_batch`) -- up to
  64 sources advance per frontier word, backing
  :mod:`repro.graphs.metrics` and :mod:`repro.graphs.connectivity`.
* Packed ``uint64[switches, ceil(N1/64)]`` bitset sweeps
  (:class:`StageSweeper`) -- descendant/coverage sweeps for
  :mod:`repro.core.ancestors`, ``U_j`` reach tables for
  :class:`repro.routing.updown.UpDownRouter`, and masked (pruned)
  sweeps for the fault binary searches.

See ``docs/PERFORMANCE.md`` ("Analysis kernels") for design notes and
measured speedups (``scripts/bench_regression.py`` ->
``BENCH_graphs.json``).
"""

from __future__ import annotations

__all__ = [
    "AVAILABLE",
    "is_available",
    "CsrAdjacency",
    "gather_or",
    "gather_min",
    "bfs_distances",
    "bfs_distances_batch",
    "iter_distance_batches",
    "DEFAULT_BATCH",
    "StageSweeper",
    "IncrementalSweeper",
    "random_bipartite_csr",
    "random_regular_csr",
    "csr_rows_sorted",
    "words_for",
    "pack_singletons",
    "full_row",
    "masks_to_ints",
    "ints_to_masks",
    "popcount",
    "run_vectorized",
    "build_padded_candidates",
    "run_relaxed",
    "build_relaxed_candidates",
    "KeyedStream",
    "counter_key",
    "draw64",
    "draw64_array",
    "key_seed",
    "mix64",
    "mix64_array",
    "randbelow",
    "uniform01",
    "uniform01_array",
]

try:  # pragma: no cover - numpy is a hard dependency, but stay import-safe
    import numpy  # noqa: F401

    AVAILABLE = True
except ImportError:  # pragma: no cover
    AVAILABLE = False

if AVAILABLE:
    from .bfs import (
        DEFAULT_BATCH,
        bfs_distances,
        bfs_distances_batch,
        iter_distance_batches,
    )
    from .bitset import (
        full_row,
        ints_to_masks,
        masks_to_ints,
        pack_singletons,
        popcount,
        words_for,
    )
    from .csr import CsrAdjacency, gather_min, gather_or
    from .relaxed import build_relaxed_candidates, run_relaxed
    from .rng import (
        KeyedStream,
        counter_key,
        draw64,
        draw64_array,
        key_seed,
        mix64,
        mix64_array,
        randbelow,
        uniform01,
        uniform01_array,
    )
    from .generate import (
        csr_rows_sorted,
        random_bipartite_csr,
        random_regular_csr,
    )
    from .sim import build_padded_candidates, run_vectorized
    from .sweeps import IncrementalSweeper, StageSweeper


def is_available() -> bool:
    """Whether the numpy kernel layer can be used in this process."""
    return AVAILABLE
