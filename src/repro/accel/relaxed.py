"""Relaxed-RNG cycle engine: fully batched arbitration.

Fourth engine of the simulator, selected by
``SimulationParams(rng_mode="relaxed")``.  The three exact engines are
bit-for-bit identical to each other because they consume one shared
sequential ``random.Random`` stream in event order -- which is also
why they cap near fast-path parity: every arbitration draw depends on
every draw before it, so random decisions cannot batch
(docs/PERFORMANCE.md).  This engine drops stream equality.  Every
random decision becomes a pure function of ``(seed, packet_id, cycle,
draw_site)`` through the counter-based generator in
:mod:`repro.accel.rng`, draws decouple, and the whole per-cycle
request/grant phase collapses into a handful of numpy passes:

* **request** -- one gather of every ready head's candidate row
  against the fused ``(class, channel)`` gate vector (same
  representation as the vectorized engine), then one keyed draw per
  head picks among its viable outputs (``randbelow`` by modulo);
* **grant** -- contenders for the same output race by keyed 64-bit
  priority: a single ``lexsort`` over ``(output, priority)`` and a
  segment-boundary scan yield the per-output winners, which is exactly
  a uniform pick among each output's contenders;
* **traffic** -- Bernoulli inter-arrival gaps and uniform destinations
  are pregenerated for the whole horizon as one ``(terminals, draws)``
  keyed matrix (stateful patterns keep a per-arrival
  :class:`~repro.accel.rng.KeyedStream`).

Only the grant *bookkeeping* (queue pops, credit scheduling, head
exposure) stays scalar, and it is proportional to actual grants, not
to scans.

What "relaxed" changes observably
---------------------------------

Results are still **deterministic for a given seed** -- same topology,
params and seed always produce the same :class:`SimResult` -- but they
are *not* bit-for-bit comparable to exact-mode results, for two
reasons beyond the generator itself:

* the reference interleaves arbitration events of different switches
  through one event heap and its RNG stream threads through that
  order; here every switch arbitrates simultaneously each cycle.  The
  per-cycle outcome distribution is unchanged -- each output channel
  is owned by exactly one switch, so grants never conflict across
  switches -- but individual coin flips differ;
* the reference re-fires an arbitration event inside a cycle when a
  credit returns mid-cycle; here credits are applied at the top of the
  cycle (the dominant reference ordering, since credits carry smaller
  heap sequence numbers than same-cycle arbitration marks) and each
  cycle runs its arbitration rounds once.

The equivalence that *is* guaranteed -- matching saturation
throughput, accepted-load curves and latency distributions within
confidence intervals -- is enforced statistically by
``tests/statcheck.py`` / ``tests/test_relaxed_rng_equivalence.py``
against paired exact-mode replication sweeps.  Because results differ
bit-for-bit, ``rng_mode`` **participates in the result cache key**
(see ``CACHE_KEY_EXCLUDED_FIELDS`` policy in
:mod:`repro.simulation.config`; lint pass RPR105 guards it).

Restrictions: ``arbiter="random"`` and ``up_selection="random"`` only
(the paper's Table 2 configuration; rotating pointers and adaptive
credit comparisons are inherently sequential), enforced at
:class:`SimulationParams` construction.
"""

from __future__ import annotations

import math

import numpy as np

from ..simulation.packet import Packet
from ..simulation.stats import SimResult, SimStats
from array import array

from .rng import (
    SITE_BITS,
    SITE_DEST,
    SITE_GAP,
    SITE_REQUEST,
    SITE_TRAFFIC,
    SITE_VIA,
    KeyedStream,
    draw64,
    draw64_array,
    key_seed,
    mix64_array,
    uniform01_array,
)
from .sim import EMPTY_READY, build_padded_candidates

__all__ = ["run_relaxed", "build_relaxed_candidates"]

# Channel tags, kept in sync with repro.simulation.engine.
_LINK, _INJECT, _EJECT = 0, 1, 2

#: Salts deriving the grant-priority and VC-pick lanes from the
#: request draw (one extra finalizer application each instead of a
#: second full keyed draw; sites stay distinct through the salt).
_GRANT_SALT = np.uint64(0xD1B54A32D192ED03)
_VC_SALT = np.uint64(0x8CB92BA72F3D8DD7)

_U64 = np.uint64


def build_relaxed_candidates(sim):
    """Extended candidate matrix covering delivery heads.

    Returns ``(cand_ext, width)`` where ``cand_ext`` is ``(n_keys + 1 +
    num_terminals, width) int64``: rows ``0..n_keys-1`` are the CSR
    candidate rows (padded with the permanently-blocked dummy channel
    ``n_ch``), row ``n_keys`` is fully blocked (empty units and
    unroutable heads key here so the batched pass can never grant
    them), and row ``n_keys + 1 + dst`` holds destination ``dst``'s
    single eject channel.  Unlike the vectorized engine -- whose
    batched phase only *filters* and must keep delivery heads
    always-viable for the scalar scan -- this engine grants straight
    from the batch, so eject channels get real viability gates and a
    real candidate row.  Cached on the simulator.
    """
    cached = getattr(sim, "_relaxed_pad", None)
    if cached is not None:
        return cached
    cand_pad, _full_bits, maxdeg = build_padded_candidates(sim)
    n_keys = cand_pad.shape[0]
    n_ch = len(sim.ch_kind)
    num_terminals = sim.topo.num_terminals
    width = max(maxdeg, 1)
    cand_ext = np.full(
        (n_keys + 1 + num_terminals, width), n_ch, dtype=np.int64
    )
    if maxdeg:
        cand_ext[:n_keys, :maxdeg] = cand_pad
    for dst in range(num_terminals):
        cand_ext[n_keys + 1 + dst, 0] = sim.eject_channel[dst]
    sim._relaxed_pad = (cand_ext, width)
    return sim._relaxed_pad


def run_relaxed(sim) -> SimResult:
    """Execute ``sim`` through the relaxed counter-RNG engine.

    Deterministic per ``(topology, params, seed)``; statistically --
    not bit-for-bit -- equivalent to the exact engines (module
    docstring).  Shares the simulator's channel state lists, so
    post-run inspection (``link_utilization`` etc.) works identically.
    """
    params = sim.params
    stats = SimStats(warmup=params.warmup_cycles, horizon=params.horizon)
    sim._stats = stats
    horizon = params.horizon
    phits = params.packet_phits
    latency = params.link_latency
    warmup = params.warmup_cycles
    vcs = params.virtual_channels
    rate = sim.load / phits  # packets / terminal / cycle
    topo = sim.topo
    traffic = sim.traffic
    obs = sim.observer
    direct = sim._direct
    valiant = params.valiant and not direct
    iterations = params.arbitration_iterations
    trace_limit = sim.trace_limit
    traces = sim.traces
    num_terminals = topo.num_terminals
    hseed = key_seed(params.seed)

    # Delivery statistics accumulate in locals (flushed into ``stats``
    # at run end): the eject branch is hot enough that the
    # ``SimStats.on_delivered`` method call shows up in profiles.
    nb = stats.num_batches
    window = horizon - warmup
    delivered_total = 0
    m_packets = 0
    m_latsum = 0
    m_hopsum = 0
    m_maxlat = 0
    batch_local = [0] * nb
    lat_append = stats.latencies.append
    generated_local = 0
    injected_local = 0
    unroutable_local = 0
    max_injectq = sim.max_inject_queue

    # ---- routing tables (shared with the fast/vectorized engines) ------
    from ..simulation.fastpath import build_candidate_table

    table = build_candidate_table(sim)
    cand_lists = table.to_lists()
    n_dests = table.num_dests
    n_keys = len(cand_lists)
    routable = (table.flags != table.UNROUTABLE).tolist()

    ch_src = sim.ch_src
    ch_dst = sim.ch_dst
    ch_kind = sim.ch_kind
    ch_peer = sim.ch_peer
    ch_slots = sim.ch_slots
    ch_queues = sim.ch_queues
    ch_blocked = sim.ch_blocked
    eject_channel = sim.eject_channel
    inject_channel = sim.inject_channel
    n_ch = len(ch_kind)
    n_sw = len(sim.in_units)
    # Byte flags beat list-index-plus-compare in the per-grant loop.
    is_eject = bytearray(1 if k == _EJECT else 0 for k in ch_kind)
    is_link = bytearray(1 if k == _LINK else 0 for k in ch_kind)
    # Busy times and busy-cycle accounting move to numpy mirrors so a
    # round's winners update in one fancy-indexed write; the
    # simulator's lists are refreshed at run end (post-run inspection
    # like ``link_utilization`` reads them).
    busy_np = np.array(sim.ch_busy, dtype=np.int64)
    busycyc_np = np.array(sim.ch_busy_cycles, dtype=np.int64)

    # ---- destination decomposition (mirrors the fast path) -------------
    if direct:
        dest_switch = [topo.terminal_switch(t) for t in range(num_terminals)]
        hosts = 0
        leaf_switch: list[int] = []
        dest_leaf: list[int] = []
        vcs_cap = vcs - 1
        n_classes = vcs
    else:
        hosts = topo.hosts_per_leaf
        leaf_switch = [topo.switch_id(0, i) for i in range(topo.num_leaves)]
        dest_leaf = [t // hosts for t in range(num_terminals)]
        dest_switch = []
        vcs_cap = 0
        n_classes = 3  # rows: 0 = all VCs, 1 = Valiant lower, 2 = upper
    half = vcs // 2
    if direct:
        class_range = [(w, w + 1) for w in range(vcs)]
    else:
        class_range = [(0, vcs), (0, half), (half, vcs)]

    # ---- struct-of-arrays unit state -----------------------------------
    # One unit per (channel, vc) input queue, same construction order as
    # the vectorized engine (grant-apply order follows output-channel
    # ids, so unit order only has to be deterministic, which it is).
    unit_cid: list[int] = []
    unit_vc: list[int] = []
    unit_queue: list = []
    unit_inject: list[bool] = []
    unit_switch: list[int] = []
    for s, row in enumerate(sim.in_units):
        for cid, vc in row:
            unit_cid.append(cid)
            unit_vc.append(vc)
            unit_queue.append(ch_queues[cid][vc])
            unit_inject.append(ch_kind[cid] == _INJECT)
            unit_switch.append(s)
    n_units = len(unit_cid)
    unit_of: list[list[int] | None] = [None] * n_ch
    for u in range(n_units):
        row_ids = unit_of[unit_cid[u]]
        if row_ids is None:
            row_ids = unit_of[unit_cid[u]] = [-1] * vcs
        row_ids[unit_vc[u]] = u
    inject_unit = [unit_of[inject_channel[t]][0] for t in range(num_terminals)]

    # Typed head mirrors, shared zero-copy with numpy views: the scalar
    # grant loop writes single slots, the batched request phase reads
    # whole vectors.  ``serial`` feeds the keyed draws (uint64 lanes).
    ready_a = array("q", [EMPTY_READY] * n_units)
    vkey_a = array("q", [n_keys] * n_units)
    cls_a = array("q", [0] * n_units)
    serial_a = array("Q", [0] * n_units)
    ready_np = np.frombuffer(ready_a, dtype=np.int64)
    vkey_np = np.frombuffer(vkey_a, dtype=np.int64)
    cls_np = np.frombuffer(cls_a, dtype=np.int64)
    serial_np = np.frombuffer(serial_a, dtype=np.uint64)
    sw_np = np.array(unit_switch, dtype=np.int64)
    cid_np = np.array(unit_cid, dtype=np.int64)

    cand_ext, width = build_relaxed_candidates(sim)
    blocked_row = n_keys
    deliver_base = n_keys + 1

    # Fused viability gates, one dummy column: ``gate[cls * stride + c]``
    # is the cycle from which class ``cls`` may take channel ``c``
    # (EMPTY_READY while the class has no downstream credit); column
    # ``n_ch`` is the permanently-blocked candidate padding.  Eject
    # channels carry real gates (busy time only -- delivery consumes no
    # buffer credit), open in every class row.
    stride = n_ch + 1
    gate_a = array("q", [EMPTY_READY] * (n_classes * stride))
    gate_np = np.frombuffer(gate_a, dtype=np.int64)
    for cid in range(n_ch):
        kind = ch_kind[cid]
        if kind == _EJECT:
            for c in range(n_classes):
                gate_a[c * stride + cid] = 0
            continue
        if kind != _LINK:
            continue
        slots = ch_slots[cid]
        if direct:
            for w in range(vcs):
                if slots[w] > 0:
                    gate_a[w * stride + cid] = 0
        else:
            gate_a[cid] = 0
            if any(slots[:half]):
                gate_a[stride + cid] = 0
            if any(slots[half:]):
                gate_a[2 * stride + cid] = 0
    uniform_cls = not direct and not valiant

    # Per-channel bitmask of virtual channels with free downstream
    # slots: the grant loop picks the k-th set bit through a
    # precomputed table instead of re-scanning the slot list.  Falls
    # back to the scan for implausibly wide VC counts.
    use_mask = vcs <= 12
    if use_mask:
        free_mask = [0] * n_ch
        for cid in range(n_ch):
            if ch_kind[cid] == _LINK:
                slots = ch_slots[cid]
                free_mask[cid] = sum(
                    1 << w for w in range(vcs) if slots[w] > 0
                )
        bit_table = [
            [w for w in range(vcs) if (m >> w) & 1] for m in range(1 << vcs)
        ]
        full_vc_mask = (1 << vcs) - 1
    else:
        free_mask = []
        bit_table = []
        full_vc_mask = 0

    # ---- head exposure --------------------------------------------------
    def expose_general(u: int, switch: int, now: int) -> None:
        """Mirror a unit's new head packet into the typed state."""
        queue = unit_queue[u]
        ready, packet = queue[0]
        if unit_inject[u]:
            blocked = ch_blocked[unit_cid[u]]
            if blocked > ready:
                ready = blocked
        ready_a[u] = ready
        serial_a[u] = packet.serial
        if direct:
            dsw = dest_switch[packet.dst]
            key = -1 if switch == dsw else switch * n_dests + dsw
            h = packet.hops
            cls = h if h < vcs_cap else vcs_cap
        else:
            via = packet.via
            key = None
            if via is not None:
                via_leaf = via // hosts
                if switch == leaf_switch[via_leaf]:
                    packet.via = None  # randomization phase complete
                else:
                    key = switch * n_dests + via_leaf
                    cls = 1 if valiant else 0
            if key is None:
                dleaf = dest_leaf[packet.dst]
                key = (
                    -1
                    if switch == leaf_switch[dleaf]
                    else switch * n_dests + dleaf
                )
                cls = 2 if valiant else 0
        cls_a[u] = cls
        if key < 0:
            vkey_a[u] = deliver_base + packet.dst
        elif cand_lists[key] is not None:
            vkey_a[u] = key
        else:
            if not direct:
                # Unroutable head on folded Clos: replay the reference
                # router so the identical RoutingError surfaces (cannot
                # happen for generated traffic -- injection filters by
                # the routability table -- but keeps the engines'
                # failure behavior aligned).
                sim._output_candidates(switch, packet)
            vkey_a[u] = blocked_row

    # The dominant configuration (folded Clos, no Valiant: single class
    # row, no ``via`` phase, ``cls`` stays 0) gets its exposure logic
    # inlined at the three hot call sites below, resolved through a
    # per-(switch, destination) key table; every other configuration
    # -- and any topology too large for the table -- goes through the
    # general closure.  -1 marks an unroutable pair whose reference
    # RoutingError replay must stay lazy.
    expose = expose_general
    uniform_tab = uniform_cls and n_sw * num_terminals <= 2_000_000
    if uniform_tab:
        vkey_of = []
        for s in range(n_sw):
            row = []
            for d in range(num_terminals):
                dleaf = dest_leaf[d]
                if s == leaf_switch[dleaf]:
                    row.append(deliver_base + d)
                else:
                    k = s * n_dests + dleaf
                    row.append(k if cand_lists[k] is not None else -1)
            vkey_of.append(row)
    else:
        vkey_of = []

    # ---- pregenerated traffic ------------------------------------------
    # One keyed (terminal, draw-index) matrix of Bernoulli gaps covers
    # the whole horizon; chunks extend until every active terminal's
    # schedule passes it.  Mirrors the reference's per-terminal walk
    # ``next = t + floor(log(u)/log1p(-rate)) + 1`` with the first
    # arrival at ``gap - 1``.
    silent = getattr(traffic, "is_silent", None)
    active = [
        term
        for term in range(num_terminals)
        if silent is None or not silent(term)
    ]
    log1m = math.log1p(-rate) if rate < 1.0 else None
    # Flow workloads (duck-typed on ``flow_schedule``) replace the
    # Bernoulli pregeneration entirely: the schedule's flattened
    # per-packet arrival arrays come pre-sorted by (time, terminal,
    # serial) -- the same time-major order the lexsort below produces
    # -- with destinations and serials pinned by the schedule, so no
    # counter-RNG is consumed for arrivals or destinations.
    flow_schedule = getattr(traffic, "flow_schedule", None)
    flow_mode = flow_schedule is not None
    if flow_mode:
        arr_time_l, arr_term_l, arr_dst_l, arr_serial_l = (
            flow_schedule.arrival_lists(horizon)
        )
        arr_k_l: list[int] = []
    elif active:
        act_np = np.array(active, dtype=np.int64)
        act_u64 = act_np.astype(np.uint64)[:, None]
        chunks: list[np.ndarray] = []
        offs = np.zeros(len(active), dtype=np.int64)
        k0 = 0
        kchunk = (
            horizon + 1
            if log1m is None
            else int(horizon * rate + 6.0 * math.sqrt(horizon * rate) + 16.0)
        )
        while True:
            ks = np.arange(k0, k0 + kchunk, dtype=np.uint64)[None, :]
            if log1m is None:
                gaps = np.ones((len(active), kchunk), dtype=np.int64)
            else:
                u = uniform01_array(
                    hseed, act_u64, (ks << _U64(SITE_BITS)) | _U64(SITE_GAP)
                )
                safe = np.where(u > 0.0, u, 0.5)
                gaps = (np.log(safe) / log1m).astype(np.int64) + 1
                gaps[u == 0.0] = 1
            csum = np.cumsum(gaps, axis=1)
            csum += offs[:, None]
            chunks.append(csum)
            offs = csum[:, -1].copy()
            k0 += kchunk
            if int(offs.min()) > horizon:
                break
            kchunk = max(64, kchunk // 4)
        times = np.concatenate(chunks, axis=1) - 1
        rows, cols = np.nonzero(times <= horizon)
        arr_time = times[rows, cols]
        arr_term = act_np[rows]
        arr_k = cols.astype(np.int64)
        order = np.lexsort((arr_term, arr_time))
        arr_time_l = arr_time[order].tolist()
        arr_term_l = arr_term[order].tolist()
        arr_k_l = arr_k[order].tolist()
    else:
        arr_time_l = []
        arr_term_l = []
        arr_k_l = []
    n_arr = len(arr_time_l)

    from ..simulation.traffic import UniformTraffic

    uniform_dst = (
        not flow_mode
        and type(traffic) is UniformTraffic
        and num_terminals > 1
    )
    if uniform_dst and n_arr:
        term_u = np.array(arr_term_l, dtype=np.uint64)
        k_u = np.array(arr_k_l, dtype=np.uint64)
        r = draw64_array(
            hseed, term_u, (k_u << _U64(SITE_BITS)) | _U64(SITE_DEST)
        ) % _U64(num_terminals - 1)
        arr_dst_l = (
            r.astype(np.int64) + (r >= term_u).astype(np.int64)
        ).tolist()
    elif not flow_mode:
        arr_dst_l = []
    destination = traffic.destination
    dead = bytearray(num_terminals)

    # ---- credit calendar ------------------------------------------------
    credit_buckets: list[list[int]] = [[] for _ in range(horizon + 1)]

    multi_iter = iterations > 1
    granted_ch = bytearray(n_ch) if multi_iter else None

    if obs is not None:
        obs.on_run_start(sim)
        req_acc = np.zeros(n_sw, dtype=np.int64)
        gr_acc = np.zeros(n_sw, dtype=np.int64)

    next_serial = sim._next_serial
    gp = 0
    tracing = trace_limit > 0
    #: Per-class gate-row offsets for the batched busy propagation.
    #: The uniform-class configuration only ever *reads* row 0, so the
    #: other rows need no maintenance at all.
    n_rows = 1 if uniform_cls else n_classes
    goff = (np.arange(n_rows, dtype=np.int64) * stride)[:, None]
    #: Reusable row-index buffer for the request-phase fancy pick.
    ar_buf = np.arange(n_units, dtype=np.int64)
    #: Reusable segment-boundary buffer for the grant phase.
    last_buf = np.empty(n_units, dtype=bool)
    #: Fused (output, priority) grant key: output ids take the top
    #: bits, the rest tie-break on truncated priority.
    out_shift = _U64(64 - n_ch.bit_length())
    pr_shift = _U64(n_ch.bit_length())

    # ---- cycle loop -----------------------------------------------------
    t = 0
    while t <= horizon:
        # -- credits (top of cycle: the dominant reference ordering) ----
        bucket = credit_buckets[t]
        if bucket:
            for cu in bucket:
                a = unit_cid[cu]
                b = unit_vc[cu]
                slots = ch_slots[a]
                was = slots[b]
                slots[b] = was + 1
                if was == 0:
                    if use_mask:
                        free_mask[a] |= 1 << b
                    if uniform_cls:
                        if gate_a[a] == EMPTY_READY:
                            gate_a[a] = int(busy_np[a])
                    elif direct:
                        gi = b * stride + a
                        if gate_a[gi] == EMPTY_READY:
                            gate_a[gi] = int(busy_np[a])
                    else:
                        busy = int(busy_np[a])
                        if gate_a[a] == EMPTY_READY:
                            gate_a[a] = busy
                        gi = (stride if b < half else 2 * stride) + a
                        if gate_a[gi] == EMPTY_READY:
                            gate_a[gi] = busy
            bucket.clear()

        # -- arrivals ---------------------------------------------------
        while gp < n_arr and arr_time_l[gp] == t:
            terminal = arr_term_l[gp]
            if flow_mode:
                # Scheduled release: destination and serial are pinned
                # by the schedule (serials identify flows across
                # engines); valiant detours below stay keyed by serial.
                dst = arr_dst_l[gp]
                serial = arr_serial_l[gp]
                gp += 1
                if serial >= next_serial:
                    next_serial = serial + 1
                packet = Packet(terminal, dst, t, serial=serial)
            else:
                if dead[terminal]:
                    gp += 1
                    continue
                if uniform_dst:
                    dst = arr_dst_l[gp]
                else:
                    try:
                        dst = destination(
                            terminal,
                            KeyedStream(
                                hseed,
                                terminal,
                                (arr_k_l[gp] << SITE_BITS) | SITE_TRAFFIC,
                            ),
                        )
                    except LookupError:
                        # The reference stops generating for this
                        # terminal on the first failed lookup; mirror
                        # that.
                        dead[terminal] = 1
                        gp += 1
                        continue
                gp += 1
                packet = Packet(terminal, dst, t, serial=next_serial)
                next_serial += 1
            generated_local += 1
            if packet.serial < trace_limit:
                traces[packet.serial] = [(t, "generate", terminal)]
            if valiant:
                src_leaf_switch = leaf_switch[terminal // hosts]
                for attempt in range(8):
                    via = (
                        draw64(
                            hseed,
                            packet.serial,
                            (attempt << SITE_BITS) | SITE_VIA,
                        )
                        % num_terminals
                    )
                    via_leaf = via // hosts
                    if (
                        routable[src_leaf_switch * n_dests + via_leaf]
                        and routable[
                            leaf_switch[via_leaf] * n_dests
                            + dest_leaf[dst]
                        ]
                    ):
                        packet.via = via
                        break
                else:
                    packet.via = None
            if direct:
                ok = routable[
                    dest_switch[terminal] * n_dests + dest_switch[dst]
                ]
            else:
                ok = routable[
                    leaf_switch[terminal // hosts] * n_dests
                    + dest_leaf[dst]
                ]
            if not ok:
                unroutable_local += 1
                if obs is not None:
                    obs.on_drop(t, terminal, packet)
            else:
                cid = inject_channel[terminal]
                queue = ch_queues[cid][0]
                queue.append((t, packet))
                qlen = len(queue)
                if qlen > max_injectq:
                    max_injectq = qlen
                if obs is not None:
                    obs.on_inject(t, packet, qlen)
                if qlen == 1:
                    if uniform_tab:
                        # Inlined injection-head exposure.
                        iu = inject_unit[terminal]
                        blocked = ch_blocked[cid]
                        ready_a[iu] = blocked if blocked > t else t
                        serial_a[iu] = packet.serial
                        vk = vkey_of[ch_dst[cid]][dst]
                        if vk >= 0:
                            vkey_a[iu] = vk
                        else:
                            sim._output_candidates(ch_dst[cid], packet)
                            vkey_a[iu] = blocked_row
                    else:
                        expose(inject_unit[terminal], ch_dst[cid], t)

        # -- arbitration rounds -----------------------------------------
        busy_until = t + phits
        lo_c = t if t > warmup else warmup
        hi_c = busy_until if busy_until < horizon else horizon
        span = hi_c - lo_c
        arrive = t + latency
        cb = credit_buckets[busy_until] if busy_until <= horizon else None
        # Every delivery granted this cycle completes at the same time,
        # so its measurement-window bucket is a per-cycle constant
        # (-1 = outside the window).
        delivered = arrive + phits - 1
        if warmup <= delivered <= horizon:
            d_bucket = (delivered - warmup) * nb // window
            if d_bucket >= nb:
                d_bucket = nb - 1
        else:
            d_bucket = -1
        for _round in range(iterations):
            elig = (ready_np <= t).nonzero()[0]
            if not elig.size:
                break
            if multi_iter and _round:
                keep = np.frombuffer(granted_ch, dtype=np.uint8)[
                    cid_np[elig]
                ] == 0
                elig = elig[keep]
                if not elig.size:
                    break
            cand = cand_ext[vkey_np[elig]]
            if uniform_cls:
                open_ = gate_np[cand] <= t
            else:
                open_ = gate_np[cand + cls_np[elig][:, None] * stride] <= t
            nv = open_.sum(axis=1, dtype=np.uint64)
            has = nv > 0
            if has.all():
                # Every eligible head has a viable output: skip the
                # three fancy-indexed copies (the common steady-state
                # shape at moderate load).
                ru = elig
                nv_r = nv
                ropen = open_
                rcand = cand
            elif has.any():
                ru = elig[has]
                nv_r = nv[has]
                ropen = open_[has]
                rcand = cand[has]
            else:
                break
            # Request phase: each head keys one draw on (serial, cycle,
            # round) and picks uniformly among its viable outputs.
            ck_req = _U64(
                ((t * iterations + _round) << SITE_BITS) | SITE_REQUEST
            )
            rh = draw64_array(hseed, serial_np[ru], ck_req)
            pick = (rh % nv_r).astype(np.int64)
            col = (ropen.cumsum(axis=1) <= pick[:, None]).sum(axis=1)
            outs = rcand[ar_buf[: ru.size], col]
            # Grant phase: max keyed priority per output wins -- a
            # uniform pick among that output's contenders.
            prio = mix64_array(rh ^ _GRANT_SALT)
            # A single fused (output, priority) sort key replaces
            # lexsort; the truncated priority keeps >= 44 tie-break
            # bits, so the chance truncation ever changes which
            # contender holds the per-output maximum is ~2**-44 per
            # contended output -- far below the statistical bar.
            fkey = (outs.astype(np.uint64) << out_shift) | (prio >> pr_shift)
            order = np.argsort(fkey)
            so = fkey[order] >> out_shift
            n_k = so.size
            last = last_buf[:n_k]
            np.not_equal(so[1:], so[:-1], out=last[: n_k - 1])
            last[n_k - 1] = True
            win = order[last.nonzero()[0]]
            wouts = outs[win]
            if obs is not None:
                req_acc += np.bincount(sw_np[ru], minlength=n_sw)
                gr_acc += np.bincount(sw_np[ru[win]], minlength=n_sw)

            # Winner bookkeeping that needs no per-packet state updates
            # in one batch: busy times, busy-cycle accounting and the
            # credited-gate busy propagation (winners hold distinct
            # outputs, so the fancy-indexed writes never collide).
            busy_np[wouts] = busy_until
            if span > 0:
                busycyc_np[wouts] += span
            if uniform_cls:
                gv = gate_np[wouts]
                gate_np[wouts[gv != EMPTY_READY]] = busy_until
            else:
                gidx_all = (wouts[None, :] + goff).ravel()
                gv = gate_np[gidx_all]
                gate_np[gidx_all[gv != EMPTY_READY]] = busy_until
            # Downstream VC picks ride the request draw through a
            # second salted lane (batched here; the scalar loop only
            # reduces modulo the free-VC count).
            wu_l = ru[win].tolist()
            wout_l = wouts.tolist()
            vcr_l = mix64_array(rh[win] ^ _VC_SALT).tolist()

            # -- apply grants (scalar bookkeeping, mirrors _grant) ------
            for u, out, vcr in zip(wu_l, wout_l, vcr_l):
                queue = unit_queue[u]
                packet = queue.popleft()[1]
                cid = unit_cid[u]
                if tracing and -1 < packet.serial < trace_limit:
                    trace = traces.get(packet.serial)
                    if trace is not None:
                        trace.append(
                            (
                                t,
                                "eject" if is_eject[out] else "forward",
                                ch_peer[out],
                            )
                        )
                if is_eject[out]:
                    delivered_total += 1
                    if d_bucket >= 0:
                        batch_local[d_bucket] += phits
                        lat = delivered - packet.created
                        m_packets += 1
                        m_latsum += lat
                        m_hopsum += packet.hops
                        lat_append(lat)
                        if lat > m_maxlat:
                            m_maxlat = lat
                    if obs is not None:
                        obs.on_eject(
                            t, packet, delivered - packet.created, phits
                        )
                else:
                    slots = ch_slots[out]
                    if use_mask:
                        if uniform_cls:
                            bits = bit_table[free_mask[out]]
                            n = len(bits)
                            w = bits[0] if n == 1 else bits[vcr % n]
                        else:
                            lo_w, hi_w = class_range[cls_a[u]]
                            bits = bit_table[
                                (free_mask[out] >> lo_w)
                                & ((1 << (hi_w - lo_w)) - 1)
                            ]
                            n = len(bits)
                            w = lo_w + (
                                bits[0] if n == 1 else bits[vcr % n]
                            )
                    else:
                        lo_w, hi_w = class_range[cls_a[u]]
                        free_vcs = [
                            wi for wi in range(lo_w, hi_w) if slots[wi] > 0
                        ]
                        n = len(free_vcs)
                        w = free_vcs[0] if n == 1 else free_vcs[vcr % n]
                    slots[w] -= 1
                    if slots[w] == 0:
                        if use_mask:
                            m = free_mask[out] & ~(1 << w)
                            free_mask[out] = m
                            if uniform_cls:
                                if not m:
                                    gate_a[out] = EMPTY_READY
                            elif direct:
                                gate_a[w * stride + out] = EMPTY_READY
                            else:
                                if not m:
                                    gate_a[out] = EMPTY_READY
                                if w < half:
                                    if not m & ((1 << half) - 1):
                                        gate_a[stride + out] = EMPTY_READY
                                elif not m >> half:
                                    gate_a[2 * stride + out] = EMPTY_READY
                        elif direct:
                            gate_a[w * stride + out] = EMPTY_READY
                        else:
                            if not any(slots):
                                gate_a[out] = EMPTY_READY
                            if w < half:
                                if not any(slots[:half]):
                                    gate_a[stride + out] = EMPTY_READY
                            elif not any(slots[half:]):
                                gate_a[2 * stride + out] = EMPTY_READY
                    packet.hops += 1
                    down_queue = ch_queues[out][w]
                    down_queue.append((arrive, packet))
                    if obs is not None:
                        obs.on_hop(
                            t,
                            packet,
                            unit_switch[u],
                            ch_dst[out],
                            w,
                            slots[w],
                            len(down_queue),
                        )
                    if len(down_queue) == 1:
                        if uniform_tab:
                            # Inlined hot-path exposure: a freshly
                            # forwarded head is never an inject unit
                            # and becomes ready exactly at ``arrive``.
                            du = unit_of[out][w]
                            ready_a[du] = arrive
                            serial_a[du] = packet.serial
                            vk = vkey_of[ch_dst[out]][packet.dst]
                            if vk >= 0:
                                vkey_a[du] = vk
                            else:
                                sim._output_candidates(
                                    ch_dst[out], packet
                                )
                                vkey_a[du] = blocked_row
                        else:
                            expose(unit_of[out][w], ch_dst[out], t)
                if is_link[cid]:
                    if cb is not None:
                        cb.append(u)
                else:
                    ch_blocked[cid] = busy_until
                    if packet.injected is None:
                        packet.injected = t
                    injected_local += 1
                if queue:
                    if uniform_tab:
                        # Inlined successor exposure (same body as the
                        # general closure, minus the call overhead).
                        ready, pkt2 = queue[0]
                        if unit_inject[u]:
                            blocked = ch_blocked[cid]
                            if blocked > ready:
                                ready = blocked
                        ready_a[u] = ready
                        serial_a[u] = pkt2.serial
                        vk = vkey_of[unit_switch[u]][pkt2.dst]
                        if vk >= 0:
                            vkey_a[u] = vk
                        else:
                            sim._output_candidates(unit_switch[u], pkt2)
                            vkey_a[u] = blocked_row
                    else:
                        expose(u, unit_switch[u], t)
                else:
                    ready_a[u] = EMPTY_READY
                if multi_iter:
                    granted_ch[cid] = 1
        if multi_iter:
            # Reset the per-cycle granted-channel filter.
            granted_ch = bytearray(n_ch)
        if obs is not None:
            for s in np.flatnonzero(req_acc):
                obs.on_arbitrate(
                    t, int(s), int(req_acc[s]), int(gr_acc[s])
                )
            req_acc[:] = 0
            gr_acc[:] = 0
        t += 1

    # Flush the local delivery-stat accumulators (mirrors the effect of
    # per-delivery ``SimStats.on_delivered`` calls, including the lazy
    # ``batch_phits`` init on the first in-window delivery).
    stats.delivered_packets += delivered_total
    stats.generated_packets += generated_local
    stats.injected_packets += injected_local
    sim.unroutable_packets += unroutable_local
    if max_injectq > sim.max_inject_queue:
        sim.max_inject_queue = max_injectq
    if m_packets:
        if not stats.batch_phits:
            stats.batch_phits = [0] * nb
        for bi in range(nb):
            stats.batch_phits[bi] += batch_local[bi]
        stats.measured_packets += m_packets
        stats.measured_phits += m_packets * phits
        stats.measured_latency_sum += m_latsum
        stats.measured_hops_sum += m_hopsum
        if m_maxlat > stats.max_latency:
            stats.max_latency = m_maxlat

    # Flush the numpy channel mirrors back into the simulator's lists
    # (post-run inspection reads them; identity is preserved).
    sim.ch_busy[:] = busy_np.tolist()
    sim.ch_busy_cycles[:] = busycyc_np.tolist()
    # Reference-loop state mirrors (kept for debugging parity).
    sim._heap = []
    sim._seq = 0
    sim._arb_marks = set()
    sim._next_serial = next_serial
    result = SimResult.from_stats(
        stats,
        offered_load=sim.load,
        num_terminals=num_terminals,
        traffic=traffic.name,
        topology=topo.name,
        unroutable_packets=sim.unroutable_packets,
    )
    if obs is not None:
        obs.on_run_end(sim, result)
    return result
