"""Level-synchronous frontier BFS over :class:`CsrAdjacency`.

The batched variant is bit-parallel: a batch of ``S`` sources is
packed into ``ceil(S / 64)`` frontier words per vertex, and one BFS
level for *all* sources in the batch is a single :func:`gather_or`
over the edge array.  Hop counts are recovered by unpacking the
newly-visited words after each level, so the whole all-sources
distance computation is ``O(diameter * E * S / 64)`` word operations
with no per-vertex Python loop.

Distances use the same convention as :mod:`repro.graphs.metrics`:
``-1`` (= ``UNREACHABLE``) marks vertices not reachable from the
source.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np
from numpy.typing import NDArray

from .csr import CsrAdjacency, gather_or

__all__ = [
    "bfs_distances",
    "bfs_distances_batch",
    "iter_distance_batches",
    "DEFAULT_BATCH",
]

#: Sources per batch -- one frontier word per vertex.
DEFAULT_BATCH = 64


def _unpack_columns(words: NDArray[np.uint64], ncols: int) -> NDArray[np.bool_]:
    """``(rows, W)`` packed words -> ``(rows, ncols)`` boolean matrix."""
    as_bytes = np.ascontiguousarray(words, dtype="<u8").view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :ncols].astype(bool)


def bfs_distances_batch(
    csr: CsrAdjacency, sources: Sequence[int]
) -> NDArray[np.int32]:
    """Hop-distance matrix ``(len(sources), num_vertices)``, ``-1`` unreachable.

    All sources advance in lock-step through packed frontier words; a
    vertex's distance from source ``i`` is the level at which bit ``i``
    first appears in its visited word.
    """
    n = csr.num_vertices
    s = len(sources)
    dist = np.full((n, s), -1, dtype=np.int32)
    if n == 0 or s == 0:
        return dist.T.copy()
    words = (s + 63) // 64
    frontier = np.zeros((n, words), dtype=np.uint64)
    src = np.asarray(sources, dtype=np.intp)
    cols = np.arange(s)
    # |= (not =) so duplicate sources keep every bit.
    np.bitwise_or.at(
        frontier,
        (src, cols >> 6),
        np.uint64(1) << (cols & 63).astype(np.uint64),
    )
    visited = frontier.copy()
    dist[src, cols] = 0
    level = 0
    while True:
        level += 1
        nxt = gather_or(csr, frontier)
        nxt &= ~visited
        touched = np.nonzero(nxt.any(axis=1))[0]
        if touched.size == 0:
            break
        visited[touched] |= nxt[touched]
        new_bits = _unpack_columns(nxt[touched], s)
        block = dist[touched]
        block[new_bits] = level
        dist[touched] = block
        frontier = nxt
    return np.ascontiguousarray(dist.T)


def bfs_distances(csr: CsrAdjacency, source: int) -> NDArray[np.int32]:
    """Single-source hop distances (batch of one)."""
    return bfs_distances_batch(csr, [source])[0]


def iter_distance_batches(
    csr: CsrAdjacency,
    sources: Sequence[int],
    batch_size: int = DEFAULT_BATCH,
) -> Iterator[tuple[Sequence[int], NDArray[np.int32]]]:
    """Yield ``(batch_sources, distance_matrix)`` chunks.

    Callers reduce each chunk (max for diameter, sum for average
    distance) so the full ``sources x vertices`` matrix never has to
    be resident for large graphs.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    for start in range(0, len(sources), batch_size):
        chunk = sources[start : start + batch_size]
        yield chunk, bfs_distances_batch(csr, chunk)
