"""Vectorized Steger--Wormald pairing-model generators (numpy).

Array-native twins of the paper's Appendix Listings 1 and 2
(:mod:`repro.topologies.random_graphs`, kept as the oracle).  The
reference generators draw one random point-pair per iteration and
reject unsuitable pairs (self-loops, parallels) in a Python loop --
fine at thousands of switches, minutes at the 10^5--10^6-terminal
sizes the extreme-scale path targets.  These kernels run the same
pairing model in batched rounds:

1. shuffle the unmatched *points* of both sides and pair them
   elementwise -- one round proposes a full random matching at once;
2. reject unsuitable pairs with array ops -- self-loops by an
   elementwise compare, parallels by first-occurrence deduplication of
   the flattened ``u * n + v`` edge keys within the batch plus a
   binary-search membership test against the (sorted) already-accepted
   keys;
3. return the rejected points to the pool and repeat; a round that
   accepts nothing triggers the same suitability check as the
   reference (restart when wedged).

The output is **not** seed-compatible with the reference -- the
reference commits pairs one at a time from ``random.Random`` while
these kernels commit a maximal batch per round from
``numpy.random.Generator`` -- so equivalence is established
*differentially*: both engines sample the same simple (bi)regular
pairing model, and ``tests/test_packed_topology.py`` pins per-edge
inclusion frequencies of both engines to the closed-form expectation
over hundreds of seeds, calibrated against a reference-vs-reference
null.  Structural invariants (exact degrees, no self-loops, no
parallels, sorted CSR rows) are asserted exactly, per seed.

Edge keys are built in ``int64`` throughout: ``u * n2 + v`` crosses
``2**31`` long before the million-terminal scale (see lint RPR102).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from ..topologies.random_graphs import GenerationError

__all__ = [
    "random_bipartite_csr",
    "random_regular_csr",
    "csr_rows_sorted",
]

#: Zero-progress rounds tolerated before a restart is declared.
#: Stalls only ever happen near the tail, where a round shuffles a
#: handful of leftover points -- cheap -- while a restart redoes the
#: whole stage, so the escape hatch is deliberately patient (the
#: suitability probe, not this counter, catches genuine wedges).
_MAX_STALLED_ROUNDS = 64

#: Above this remaining-pair cross-product size the exhaustive
#: suitable-pair check is skipped (statistically unreachable: stalls
#: only ever happen when a handful of points remain).
_SUITABILITY_LIMIT = 1 << 22


def _as_generator(rng: np.random.Generator | int) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def csr_rows_sorted(
    offsets: NDArray[np.int64], indices: NDArray[np.int32]
) -> bool:
    """Whether every CSR row is strictly increasing (sorted, no dups)."""
    if indices.size == 0:
        return True
    ascending = np.ones(indices.size, dtype=bool)
    ascending[1:] = indices[1:] > indices[:-1]
    # Row starts may legitimately descend; only intra-row order counts.
    ascending[offsets[1:-1]] = True
    return bool(np.all(ascending))


def _member_sorted(
    haystack: NDArray[np.int64], values: NDArray[np.int64]
) -> NDArray[np.bool_]:
    """Membership of ``values`` in sorted ``haystack``.

    Binary search beats ``np.isin`` here: the accepted-key array is
    maintained sorted across rounds, so each probe is O(m log n) with
    no hash table built per call.
    """
    if haystack.size == 0:
        return np.zeros(values.size, dtype=bool)
    pos = np.searchsorted(haystack, values)
    # Out-of-range probes compare against slot 0; they exceed the max
    # key, so the equality below is always False for them.
    pos[pos == haystack.size] = 0
    return haystack[pos] == values


def _merge_sorted(
    haystack: NDArray[np.int64], fresh: NDArray[np.int64]
) -> NDArray[np.int64]:
    """Sorted union of a sorted array and sorted, disjoint new keys."""
    if haystack.size == 0:
        return fresh
    return np.insert(haystack, np.searchsorted(haystack, fresh), fresh)


def _suitable_bipartite_pair_exists(
    left: NDArray[np.int64],
    right: NDArray[np.int64],
    keys: NDArray[np.int64],
    n2: int,
) -> bool:
    """Vectorized twin of the oracle's ``_has_suitable_bipartite_pair``.

    ``left``/``right`` are the vertices that still own unmatched
    points; a suitable pair is any (u, v) not already an edge.
    ``keys`` must be sorted.
    """
    lu = np.unique(left)
    ru = np.unique(right)
    if lu.size * ru.size > _SUITABILITY_LIMIT:
        # Statistically unreachable: treated as feasible so the stall
        # counter (not this probe) bounds the attempt.
        return True
    cross = (lu[:, None] * np.int64(n2) + ru[None, :]).ravel()
    return bool(np.any(~_member_sorted(keys, cross)))


def random_bipartite_csr(
    n1: int,
    d1: int,
    n2: int,
    d2: int,
    rng: np.random.Generator | int,
    max_restarts: int = 1000,
) -> tuple[NDArray[np.int64], NDArray[np.int32]]:
    """Batched Listing 2: a random simple biregular bipartite graph.

    Returns the left-side adjacency as a sorted-row CSR pair
    ``(offsets, indices)`` -- ``indices[offsets[u]:offsets[u + 1]]``
    are the right-side neighbors of left vertex ``u`` in increasing
    order.  Parameter validation and the restart budget mirror
    :func:`repro.topologies.random_graphs.random_bipartite_graph`
    exactly; the RNG is a :class:`numpy.random.Generator` (or a seed
    for one) instead of :class:`random.Random`.
    """
    if n1 <= 0 or n2 <= 0:
        raise GenerationError(f"need vertices on both sides, got {n1}, {n2}")
    if d1 < 0 or d2 < 0:
        raise GenerationError(f"negative degree ({d1}, {d2})")
    if n1 * d1 != n2 * d2:
        raise GenerationError(
            f"degree sums differ: {n1}*{d1} != {n2}*{d2}; "
            "no biregular bipartite graph exists"
        )
    if d1 > n2 or d2 > n1:
        raise GenerationError(
            f"degrees ({d1}, {d2}) exceed opposite side sizes ({n2}, {n1})"
        )
    if d1 == 0:
        return (
            np.zeros(n1 + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
        )
    gen = _as_generator(rng)
    for _ in range(max_restarts):
        keys = _try_bipartite_batched(n1, d1, n2, d2, gen)
        if keys is not None:
            return _bipartite_keys_to_csr(keys, n1, d1, n2)
    raise GenerationError(
        f"no ({d1},{d2})-biregular bipartite graph on ({n1},{n2}) vertices "
        f"after {max_restarts} restarts"
    )


def _try_bipartite_batched(
    n1: int, d1: int, n2: int, d2: int, gen: np.random.Generator
) -> NDArray[np.int64] | None:
    """One restart attempt; accepted ``u * n2 + v`` keys or ``None``."""
    pts1 = np.repeat(np.arange(n1, dtype=np.int64), d1)
    pts2 = np.repeat(np.arange(n2, dtype=np.int64), d2)
    accepted = np.zeros(0, dtype=np.int64)  # kept sorted across rounds
    stalls = 0
    while pts1.size:
        gen.shuffle(pts1)
        gen.shuffle(pts2)
        key = pts1 * np.int64(n2) + pts2
        # First in-batch occurrence of every distinct key: later
        # duplicates would be parallel edges.  ``cand`` walks ``order``
        # so ``key[cand]`` comes out sorted -- the merge below relies
        # on it.
        order = np.argsort(key, kind="stable")
        sorted_keys = key[order]
        is_first = np.ones(sorted_keys.size, dtype=bool)
        is_first[1:] = sorted_keys[1:] != sorted_keys[:-1]
        cand = order[is_first]
        # ... and none may duplicate an already-accepted edge.
        cand = cand[~_member_sorted(accepted, key[cand])]
        if cand.size == 0:
            if not _suitable_bipartite_pair_exists(
                pts1, pts2, accepted, n2
            ):
                return None
            stalls += 1
            if stalls >= _MAX_STALLED_ROUNDS:
                return None
            continue
        stalls = 0
        accepted = _merge_sorted(accepted, key[cand])
        keep = np.ones(pts1.size, dtype=bool)
        keep[cand] = False
        pts1 = pts1[keep]
        pts2 = pts2[keep]
    return accepted


def _bipartite_keys_to_csr(
    keys: NDArray[np.int64], n1: int, d1: int, n2: int
) -> tuple[NDArray[np.int64], NDArray[np.int32]]:
    keys = np.sort(keys)
    offsets = np.arange(0, n1 * d1 + 1, d1, dtype=np.int64)
    indices = (keys % np.int64(n2)).astype(np.int32)
    return offsets, indices


def random_regular_csr(
    n: int,
    degree: int,
    rng: np.random.Generator | int,
    max_restarts: int = 1000,
) -> tuple[NDArray[np.int64], NDArray[np.int32]]:
    """Batched Listing 1: a random ``degree``-regular simple graph.

    Returns symmetric adjacency as a sorted-row CSR pair (both
    directions of every undirected edge listed).  Validation mirrors
    :func:`repro.topologies.random_graphs.random_regular_graph`.
    """
    if n <= 0:
        raise GenerationError(f"need at least one vertex, got n={n}")
    if degree < 0:
        raise GenerationError(f"negative degree {degree}")
    if degree == 0:
        return np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int32)
    if degree >= n:
        raise GenerationError(
            f"degree {degree} impossible on {n} vertices (needs degree < n)"
        )
    if (n * degree) % 2 != 0:
        raise GenerationError(
            f"n * degree = {n * degree} is odd; no regular graph exists"
        )
    gen = _as_generator(rng)
    for _ in range(max_restarts):
        keys = _try_regular_batched(n, degree, gen)
        if keys is not None:
            return _regular_keys_to_csr(keys, n, degree)
    raise GenerationError(
        f"no {degree}-regular graph on {n} vertices after "
        f"{max_restarts} restarts"
    )


def _try_regular_batched(
    n: int, degree: int, gen: np.random.Generator
) -> NDArray[np.int64] | None:
    """One restart attempt; accepted ``lo * n + hi`` keys or ``None``."""
    pts = np.repeat(np.arange(n, dtype=np.int64), degree)
    accepted = np.zeros(0, dtype=np.int64)  # kept sorted across rounds
    stalls = 0
    while pts.size:
        gen.shuffle(pts)
        u = pts[0::2]
        v = pts[1::2]
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        key = lo * np.int64(n) + hi
        simple = lo != hi
        order = np.argsort(key, kind="stable")
        sorted_keys = key[order]
        is_first = np.ones(sorted_keys.size, dtype=bool)
        is_first[1:] = sorted_keys[1:] != sorted_keys[:-1]
        first = np.zeros(key.size, dtype=bool)
        first[order[is_first]] = True
        good = np.nonzero(simple & first)[0]
        good = good[~_member_sorted(accepted, key[good])]
        if good.size == 0:
            if not _suitable_regular_pair_exists(pts, accepted, n):
                return None
            stalls += 1
            if stalls >= _MAX_STALLED_ROUNDS:
                return None
            continue
        stalls = 0
        # ``good`` is in positional (not key) order here, so sort the
        # fresh keys before the sorted merge.
        accepted = _merge_sorted(accepted, np.sort(key[good]))
        keep = np.ones(pts.size, dtype=bool)
        keep[2 * good] = False
        keep[2 * good + 1] = False
        # An odd leftover point (pts.size odd is impossible: n * degree
        # is even and pairs consume two points) never occurs.
        pts = pts[keep]
    return accepted


def _suitable_regular_pair_exists(
    pts: NDArray[np.int64], keys: NDArray[np.int64], n: int
) -> bool:
    """Vectorized twin of the oracle's ``_has_suitable_pair``.

    ``keys`` must be sorted.
    """
    avail = np.unique(pts)
    if avail.size * avail.size > _SUITABILITY_LIMIT:
        return True
    a = np.minimum(avail[:, None], avail[None, :])
    b = np.maximum(avail[:, None], avail[None, :])
    cross = (a * np.int64(n) + b)[a != b]
    return bool(np.any(~_member_sorted(keys, cross)))


def _regular_keys_to_csr(
    keys: NDArray[np.int64], n: int, degree: int
) -> tuple[NDArray[np.int64], NDArray[np.int32]]:
    lo = keys // np.int64(n)
    hi = keys % np.int64(n)
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    order = np.lexsort((dst, src))
    offsets = np.arange(0, n * degree + 1, degree, dtype=np.int64)
    indices = dst[order].astype(np.int32)
    return offsets, indices
