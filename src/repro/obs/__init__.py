"""Simulator observability: metrics, event hooks and JSONL tracing.

``repro.obs`` makes the cycle-level engine explainable without making
it slower when nobody is looking:

* :mod:`repro.obs.metrics` -- typed ``Counter`` / ``Gauge`` /
  ``Histogram`` / ``TimeSeries`` primitives behind a registry with
  deterministic (sorted-key) export and cross-worker merging;
* :mod:`repro.obs.hooks` -- the observer protocol the engine calls
  (``on_inject`` / ``on_hop`` / ``on_arbitrate`` / ``on_eject`` /
  ``on_drop``) plus ready-made metrics and tracing observers;
* :mod:`repro.obs.trace` -- bounded-buffer JSONL trace writer.

The flow-workload layer's :class:`~repro.workloads.tracker.FlowTracker`
(an observer emitting ``flow_complete`` trace records) is re-exported
here lazily -- importing it eagerly would cycle back through
:mod:`repro.workloads`, which itself imports these hooks.

The engine takes an ``observer`` argument; ``None`` (the default)
costs one pointer test per event and changes nothing -- instrumented
and bare runs produce bit-for-bit identical :class:`SimResult`\\ s.

For sweeps that run through :mod:`repro.exec`, an **ambient switch**
turns metrics collection on for every task a harness builds::

    import repro.obs as obs

    obs.configure(metrics=True)
    table = run_experiment("fig8")        # every point carries metrics
    obs.collected()                       # merged per-scenario exports

The ambient default is off, so importing this package changes nothing.
"""

from __future__ import annotations

import contextlib

from .hooks import MetricsObserver, MultiObserver, SimObserver, TracingObserver
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    merge_metrics,
)
from .trace import TraceWriter

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "merge_metrics",
    "SimObserver",
    "MetricsObserver",
    "TracingObserver",
    "MultiObserver",
    "TraceWriter",
    "FlowTracker",
    "configure",
    "metrics_enabled",
    "using_metrics",
    "record",
    "collected",
    "reset",
]

_metrics_enabled = False
_collected: dict[str, dict] = {}


def configure(metrics: bool = False) -> None:
    """Set the ambient metrics switch (and clear previous collections)."""
    global _metrics_enabled
    _metrics_enabled = bool(metrics)
    _collected.clear()


def metrics_enabled() -> bool:
    """Whether harnesses should build metrics-collecting tasks."""
    return _metrics_enabled


@contextlib.contextmanager
def using_metrics(enabled: bool = True):
    """Temporarily flip the ambient metrics switch."""
    global _metrics_enabled
    previous, previous_collected = _metrics_enabled, dict(_collected)
    _metrics_enabled = bool(enabled)
    _collected.clear()
    try:
        yield
    finally:
        _metrics_enabled = previous
        _collected.clear()
        _collected.update(previous_collected)


def record(label: str, export: dict) -> None:
    """Deposit one merged metrics export under ``label``.

    Harnesses call this once per sweep; repeated labels merge.
    """
    if label in _collected:
        _collected[label] = merge_metrics([_collected[label], export])
    else:
        _collected[label] = export


def collected() -> dict[str, dict]:
    """Everything recorded since the last :func:`configure`/:func:`reset`,
    with labels sorted for deterministic serialization."""
    return {label: _collected[label] for label in sorted(_collected)}


def reset() -> None:
    """Drop all recorded metrics (the ambient switch is untouched)."""
    _collected.clear()


def __getattr__(name: str):
    # Lazy re-export (PEP 562): repro.workloads imports repro.obs.hooks,
    # so an eager import here would be circular.
    if name == "FlowTracker":
        from ..workloads.tracker import FlowTracker

        return FlowTracker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
