"""Bounded-buffer JSONL trace writer.

One trace record per simulator event, one JSON object per line, in
event order.  Records buffer in memory and flush to disk every
``buffer_records`` lines, so tracing a multi-million-event run costs
O(buffer) memory and sequential appends only.  ``max_records`` caps the
file size; records beyond the cap are counted in :attr:`dropped`, never
silently lost from the accounting.

The schema is flat and self-describing -- every record carries an
``ev`` (event kind) and ``t`` (cycle) field; the remaining fields
depend on the kind (see ``docs/OBSERVABILITY.md``).  Keys are written
sorted so identical runs produce byte-identical trace files.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["TraceWriter"]


class TraceWriter:
    """Append-only JSONL sink with bounded in-memory buffering.

    Usable as a context manager; :meth:`close` flushes the tail.  A
    ``path`` of ``None`` keeps every record in memory (up to
    ``max_records``) for tests and programmatic consumption via
    :meth:`records`.
    """

    def __init__(
        self,
        path: str | Path | None,
        buffer_records: int = 1024,
        max_records: int = 1_000_000,
    ) -> None:
        if buffer_records < 1:
            raise ValueError("buffer_records must be positive")
        if max_records < 1:
            raise ValueError("max_records must be positive")
        self.path = Path(path) if path is not None else None
        self.buffer_records = buffer_records
        self.max_records = max_records
        self.written = 0
        self.dropped = 0
        self._buffer: list[str] = []
        self._memory: list[dict] = []
        self._closed = False
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Truncate: one writer owns one trace file.
            self.path.write_text("")

    def emit(self, record: dict) -> None:
        """Queue one record; drops (and counts) past ``max_records``."""
        if self._closed:
            raise ValueError("trace writer is closed")
        if self.written + len(self._buffer) >= self.max_records:
            self.dropped += 1
            return
        if self.path is None:
            self._memory.append(record)
            self.written += 1
            return
        self._buffer.append(json.dumps(record, sort_keys=True))
        if len(self._buffer) >= self.buffer_records:
            self.flush()

    def flush(self) -> None:
        """Write buffered lines through to disk."""
        if not self._buffer or self.path is None:
            return
        with self.path.open("a") as fh:
            fh.write("\n".join(self._buffer) + "\n")
        self.written += len(self._buffer)
        self._buffer.clear()

    def close(self) -> None:
        self.flush()
        self._closed = True

    def records(self) -> list[dict]:
        """In-memory records (memory mode only)."""
        return list(self._memory)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
