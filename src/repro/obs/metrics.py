"""Typed metric primitives and the registry that exports them.

Four metric kinds cover everything the simulator needs to explain a
curve (paper Figures 8-12):

* :class:`Counter` -- monotone event counts (injections, grants, drops);
* :class:`Gauge` -- last-written value with a running max (queue depth);
* :class:`Histogram` -- integer-valued distribution with exact bucket
  counts (latencies, queue occupancy, VC credits), percentile queries
  without storing samples;
* :class:`TimeSeries` -- values accumulated into fixed-width cycle
  buckets (per-stage utilization over time, delivered phits over time).

A :class:`MetricsRegistry` names and owns a set of metrics and exports
them as one plain-JSON dict with **deterministically sorted keys**, so
two identical runs produce byte-identical metric files.  Exports from
independent workers merge with :func:`merge_metrics` (counters add,
gauges max, histogram buckets add, time-series buckets add), which is
how :mod:`repro.exec` aggregates per-worker metrics.

Everything here is pure bookkeeping -- no RNG, no wall clock -- so
attaching metrics can never perturb a simulation result.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "merge_metrics",
]


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def export(self) -> int:
        return self.value


class Gauge:
    """Last-set value plus the maximum ever seen."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def export(self) -> dict:
        return {"last": self.value, "max": self.max}


class Histogram:
    """Exact integer histogram (bucket per observed value).

    The simulator's distributions (queue lengths, credits, latencies in
    cycles) are small integers, so exact buckets are cheaper and more
    faithful than log-spaced approximations.
    """

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value: int, weight: int = 1) -> None:
        self.buckets[value] = self.buckets.get(value, 0) + weight
        self.count += weight
        self.total += value * weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, fraction: float) -> float:
        """Value at ``fraction`` of the cumulative distribution."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self.count:
            return float("nan")
        target = fraction * (self.count - 1)
        seen = 0
        for value in sorted(self.buckets):
            seen += self.buckets[value]
            if seen > target:
                return float(value)
        return float(max(self.buckets))

    def export(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {str(v): self.buckets[v] for v in sorted(self.buckets)},
        }


class TimeSeries:
    """Values accumulated into fixed-width cycle buckets."""

    __slots__ = ("width", "buckets")

    def __init__(self, width: int = 100) -> None:
        if width < 1:
            raise ValueError("bucket width must be positive")
        self.width = width
        self.buckets: dict[int, float] = {}

    def add(self, time: int, value: float = 1.0) -> None:
        bucket = time // self.width
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + value

    def export(self) -> dict:
        return {
            "width": self.width,
            "buckets": {str(b): self.buckets[b] for b in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Named metrics of one run, exported as a deterministic dict.

    Accessors create on first use, so instrumentation sites never need
    registration boilerplate::

        reg = MetricsRegistry()
        reg.counter("inject.packets").inc()
        reg.histogram("latency.packet").observe(42)
        reg.export()   # {"counters": {...}, "histograms": {...}, ...}
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timeseries: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def timeseries(self, name: str, width: int = 100) -> TimeSeries:
        metric = self._timeseries.get(name)
        if metric is None:
            metric = self._timeseries[name] = TimeSeries(width)
        return metric

    def export(self) -> dict:
        """Plain-JSON snapshot with every key level sorted."""
        return {
            "counters": {
                name: self._counters[name].export()
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].export()
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].export()
                for name in sorted(self._histograms)
            },
            "timeseries": {
                name: self._timeseries[name].export()
                for name in sorted(self._timeseries)
            },
        }


def _merge_histogram(into: dict, add: dict) -> dict:
    buckets = dict(into.get("buckets", {}))
    for value, count in add.get("buckets", {}).items():
        buckets[value] = buckets.get(value, 0) + count
    return {
        "count": into.get("count", 0) + add.get("count", 0),
        "sum": into.get("sum", 0) + add.get("sum", 0),
        "buckets": {k: buckets[k] for k in sorted(buckets, key=int)},
    }


def _merge_timeseries(into: dict, add: dict) -> dict:
    if into.get("width") != add.get("width"):
        raise ValueError(
            f"cannot merge time series of widths "
            f"{into.get('width')} and {add.get('width')}"
        )
    buckets = dict(into.get("buckets", {}))
    for bucket, value in add.get("buckets", {}).items():
        buckets[bucket] = buckets.get(bucket, 0.0) + value
    return {
        "width": into["width"],
        "buckets": {k: buckets[k] for k in sorted(buckets, key=int)},
    }


def merge_metrics(exports: Iterable[dict]) -> dict:
    """Aggregate registry exports from independent workers.

    Counters and histogram/time-series buckets add; gauges keep the
    max-of-max and drop the meaningless cross-worker ``last``.  The
    result is again deterministically sorted, so merging the same
    exports in any order yields identical bytes.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, dict] = {}
    histograms: dict[str, dict] = {}
    timeseries: dict[str, dict] = {}
    for export in exports:
        if not export:
            continue
        for name, value in export.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in export.get("gauges", {}).items():
            entry = gauges.setdefault(name, {"last": 0.0, "max": 0.0})
            entry["max"] = max(entry["max"], value.get("max", 0.0))
            entry["last"] = value.get("last", 0.0)
        for name, value in export.get("histograms", {}).items():
            histograms[name] = _merge_histogram(histograms.get(name, {}), value)
        for name, value in export.get("timeseries", {}).items():
            if name in timeseries:
                timeseries[name] = _merge_timeseries(timeseries[name], value)
            else:
                timeseries[name] = {
                    "width": value.get("width"),
                    "buckets": {
                        k: value.get("buckets", {})[k]
                        for k in sorted(value.get("buckets", {}), key=int)
                    },
                }
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
        "timeseries": {k: timeseries[k] for k in sorted(timeseries)},
    }
