"""Event-hook protocol between the simulator and observers.

:class:`~repro.simulation.engine.Simulator` accepts one observer and
invokes these hooks at the five places where simulated state changes:

==================  ====================================================
``on_inject``       a generated packet entered its source queue
``on_drop``         a generated packet had no route (counted, discarded)
``on_arbitrate``    one switch finished an arbitration pass
``on_hop``          a packet was granted a switch-to-switch link
``on_eject``        a packet was delivered to its destination terminal
==================  ====================================================

plus ``on_run_start`` / ``on_run_end`` bracketing the run.  Hooks are
pure observation: they receive engine state but must not mutate it and
must not consume randomness, which is what keeps an instrumented run
bit-for-bit identical to a bare one (enforced by tests).

:class:`SimObserver` is the no-op base; :class:`MetricsObserver` fills
a :class:`~repro.obs.metrics.MetricsRegistry`; :class:`TracingObserver`
streams JSONL events through a :class:`~repro.obs.trace.TraceWriter`;
:class:`MultiObserver` fans one engine out to several observers.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import TraceWriter

__all__ = [
    "SimObserver",
    "MetricsObserver",
    "TracingObserver",
    "MultiObserver",
]


class SimObserver:
    """No-op base class; override the hooks you need."""

    def on_run_start(self, sim) -> None:
        """Called once before the event loop; ``sim`` is the engine."""

    def on_inject(self, time: int, packet, queue_len: int) -> None:
        """Packet appended to its source queue (depth ``queue_len``)."""

    def on_drop(self, time: int, terminal: int, packet) -> None:
        """Packet discarded as unroutable at generation time."""

    def on_arbitrate(
        self, time: int, switch: int, requests: int, grants: int
    ) -> None:
        """One arbitration pass at ``switch`` matched
        ``grants`` of ``requests`` requests."""

    def on_hop(
        self,
        time: int,
        packet,
        src: int,
        dst: int,
        vc: int,
        credits_left: int,
        queue_len: int,
    ) -> None:
        """Packet granted the ``src -> dst`` link into VC ``vc``
        (``credits_left`` buffer slots remain; the downstream VC queue
        now holds ``queue_len`` packets)."""

    def on_eject(self, time: int, packet, latency: int, phits: int) -> None:
        """Packet delivered; ``latency`` is generation-to-tail cycles."""

    def on_run_end(self, sim, result) -> None:
        """Called once after the event loop with the final result."""


class MetricsObserver(SimObserver):
    """Populates a metrics registry from the hook stream.

    Captured metrics (names are stable API, see docs/OBSERVABILITY.md):

    * counters: packet/event counts, arbitration totals, and per-link
      delivered phits (``link.<src>-><dst>``, the Jellyfish-style
      link-load distribution);
    * histograms: source-queue and VC-queue occupancy, VC credits at
      grant time, packet latency and hop counts;
    * time series: injected packets, delivered phits, link phits
      per cycle bucket, and per-stage utilization for folded Clos
      (``ts.stage.<lo>-><hi>``).
    """

    def __init__(
        self, registry: MetricsRegistry | None = None, ts_buckets: int = 100
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ts_buckets = ts_buckets
        self._width = 100
        self._phits = 1
        self._level_of: list[int] | None = None

    def on_run_start(self, sim) -> None:
        params = sim.params
        self._phits = params.packet_phits
        self._width = max(1, params.horizon // self.ts_buckets)
        self._level_of = getattr(sim, "level_of", None)

    def on_inject(self, time: int, packet, queue_len: int) -> None:
        reg = self.registry
        reg.counter("inject.packets").inc()
        reg.histogram("queue.inject_occupancy").observe(queue_len)
        reg.timeseries("ts.injected_packets", self._width).add(time)

    def on_drop(self, time: int, terminal: int, packet) -> None:
        self.registry.counter("drop.unroutable").inc()

    def on_arbitrate(
        self, time: int, switch: int, requests: int, grants: int
    ) -> None:
        reg = self.registry
        reg.counter("arb.passes").inc()
        reg.counter("arb.requests").inc(requests)
        reg.counter("arb.grants").inc(grants)

    def on_hop(
        self,
        time: int,
        packet,
        src: int,
        dst: int,
        vc: int,
        credits_left: int,
        queue_len: int,
    ) -> None:
        reg = self.registry
        reg.counter("hop.count").inc()
        reg.counter(f"link.{src}->{dst}").inc(self._phits)
        reg.histogram("vc.credits_at_grant").observe(credits_left)
        reg.histogram("queue.vc_occupancy").observe(queue_len)
        reg.timeseries("ts.link_phits", self._width).add(time, self._phits)
        if self._level_of is not None:
            lo, hi = self._level_of[src], self._level_of[dst]
            reg.timeseries(f"ts.stage.{lo}->{hi}", self._width).add(
                time, self._phits
            )

    def on_eject(self, time: int, packet, latency: int, phits: int) -> None:
        reg = self.registry
        reg.counter("eject.packets").inc()
        reg.histogram("latency.packet").observe(latency)
        reg.histogram("hops.packet").observe(packet.hops)
        reg.timeseries("ts.delivered_phits", self._width).add(time, phits)

    def export(self) -> dict:
        """The registry snapshot (sorted, JSON-ready)."""
        return self.registry.export()


class TracingObserver(SimObserver):
    """Streams one JSONL record per event through a trace writer.

    ``include_arb`` adds per-pass arbitration records (high volume; off
    by default).  The writer is owned by the caller, who is responsible
    for closing it -- or use :meth:`close` for convenience.
    """

    def __init__(self, writer: TraceWriter, include_arb: bool = False) -> None:
        self.writer = writer
        self.include_arb = include_arb

    def on_run_start(self, sim) -> None:
        self.writer.emit(
            {
                "ev": "run_start",
                "t": 0,
                "topology": sim.topo.name,
                "traffic": sim.traffic.name,
                "load": sim.load,
                "seed": sim.params.seed,
                "horizon": sim.params.horizon,
            }
        )

    def on_inject(self, time: int, packet, queue_len: int) -> None:
        self.writer.emit(
            {
                "ev": "inject",
                "t": time,
                "p": packet.serial,
                "src": packet.src,
                "dst": packet.dst,
                "q": queue_len,
            }
        )

    def on_drop(self, time: int, terminal: int, packet) -> None:
        self.writer.emit(
            {
                "ev": "drop",
                "t": time,
                "p": packet.serial,
                "src": packet.src,
                "dst": packet.dst,
            }
        )

    def on_arbitrate(
        self, time: int, switch: int, requests: int, grants: int
    ) -> None:
        if self.include_arb:
            self.writer.emit(
                {
                    "ev": "arb",
                    "t": time,
                    "sw": switch,
                    "req": requests,
                    "grant": grants,
                }
            )

    def on_hop(
        self,
        time: int,
        packet,
        src: int,
        dst: int,
        vc: int,
        credits_left: int,
        queue_len: int,
    ) -> None:
        self.writer.emit(
            {
                "ev": "hop",
                "t": time,
                "p": packet.serial,
                "src": src,
                "dst": dst,
                "vc": vc,
            }
        )

    def on_eject(self, time: int, packet, latency: int, phits: int) -> None:
        self.writer.emit(
            {
                "ev": "eject",
                "t": time,
                "p": packet.serial,
                "dst": packet.dst,
                "lat": latency,
                "hops": packet.hops,
            }
        )

    def on_run_end(self, sim, result) -> None:
        self.writer.emit(
            {
                "ev": "run_end",
                "t": sim.params.horizon,
                "generated": result.generated_packets,
                "delivered": result.delivered_packets,
                "accepted_load": result.accepted_load,
                "unroutable": result.unroutable_packets,
            }
        )

    def close(self) -> None:
        self.writer.close()


class MultiObserver(SimObserver):
    """Fans every hook out to an ordered list of observers."""

    def __init__(self, observers: list[SimObserver]) -> None:
        self.observers = list(observers)

    def on_run_start(self, sim) -> None:
        for obs in self.observers:
            obs.on_run_start(sim)

    def on_inject(self, time: int, packet, queue_len: int) -> None:
        for obs in self.observers:
            obs.on_inject(time, packet, queue_len)

    def on_drop(self, time: int, terminal: int, packet) -> None:
        for obs in self.observers:
            obs.on_drop(time, terminal, packet)

    def on_arbitrate(
        self, time: int, switch: int, requests: int, grants: int
    ) -> None:
        for obs in self.observers:
            obs.on_arbitrate(time, switch, requests, grants)

    def on_hop(
        self,
        time: int,
        packet,
        src: int,
        dst: int,
        vc: int,
        credits_left: int,
        queue_len: int,
    ) -> None:
        for obs in self.observers:
            obs.on_hop(time, packet, src, dst, vc, credits_left, queue_len)

    def on_eject(self, time: int, packet, latency: int, phits: int) -> None:
        for obs in self.observers:
            obs.on_eject(time, packet, latency, phits)

    def on_run_end(self, sim, result) -> None:
        for obs in self.observers:
            obs.on_run_end(sim, result)
