"""Shortest-path routing utilities (the Jellyfish baseline's needs).

Random regular networks have no up/down structure; the Jellyfish paper
routes them over k-shortest paths, recomputed whenever the network is
expanded or a link fails -- a cost the RFC avoids (paper Section 6).
This module provides:

* :func:`shortest_path` / :func:`all_shortest_next_hops` -- BFS-based
  minimal routing with ECMP next-hop sets;
* :func:`k_shortest_paths` -- Yen's algorithm over unit-weight graphs,
  returning simple paths in non-decreasing length order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Sequence

__all__ = [
    "shortest_path",
    "shortest_path_lengths",
    "all_shortest_next_hops",
    "k_shortest_paths",
]


def shortest_path_lengths(
    adjacency: Sequence[Sequence[int]], source: int
) -> list[int]:
    """BFS hop counts from ``source`` (-1 where unreachable)."""
    dist = [-1] * len(adjacency)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def shortest_path(
    adjacency: Sequence[Sequence[int]], source: int, target: int
) -> list[int] | None:
    """One shortest path as a vertex list, or ``None`` if disconnected."""
    if source == target:
        return [source]
    prev = [-1] * len(adjacency)
    prev[source] = source
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if prev[v] < 0:
                prev[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(prev[path[-1]])
                    return path[::-1]
                queue.append(v)
    return None


def all_shortest_next_hops(
    adjacency: Sequence[Sequence[int]], target: int
) -> list[list[int]]:
    """ECMP table toward ``target``: next hops on some shortest path.

    ``result[u]`` lists the neighbors of ``u`` that are one hop closer
    to ``target`` (empty at ``target`` itself and on unreachable
    vertices).
    """
    dist = shortest_path_lengths(adjacency, target)
    table: list[list[int]] = []
    for u, nbrs in enumerate(adjacency):
        if u == target or dist[u] < 0:
            table.append([])
            continue
        table.append([v for v in nbrs if dist[v] == dist[u] - 1])
    return table


def k_shortest_paths(
    adjacency: Sequence[Sequence[int]],
    source: int,
    target: int,
    k: int,
) -> list[list[int]]:
    """Yen's algorithm: up to ``k`` loopless shortest paths.

    Unit edge weights; ties broken deterministically by vertex order so
    results are reproducible.
    """
    if k < 1:
        return []
    first = shortest_path(adjacency, source, target)
    if first is None:
        return []
    paths: list[list[int]] = [first]
    candidates: list[tuple[int, list[int]]] = []
    seen: set[tuple[int, ...]] = {tuple(first)}

    while len(paths) < k:
        prev_path = paths[-1]
        for i in range(len(prev_path) - 1):
            spur = prev_path[i]
            root = prev_path[: i + 1]
            banned_edges: set[tuple[int, int]] = set()
            for path in paths:
                if path[: i + 1] == root and len(path) > i + 1:
                    banned_edges.add((path[i], path[i + 1]))
                    banned_edges.add((path[i + 1], path[i]))
            banned_nodes = set(root[:-1])
            spur_path = _bfs_restricted(
                adjacency, spur, target, banned_nodes, banned_edges
            )
            if spur_path is None:
                continue
            total = root[:-1] + spur_path
            key = tuple(total)
            if key not in seen:
                seen.add(key)
                heapq.heappush(candidates, (len(total), total))
        if not candidates:
            break
        _, best = heapq.heappop(candidates)
        paths.append(best)
    return paths


def _bfs_restricted(
    adjacency: Sequence[Sequence[int]],
    source: int,
    target: int,
    banned_nodes: set[int],
    banned_edges: set[tuple[int, int]],
) -> list[int] | None:
    if source == target:
        return [source]
    prev = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if v in banned_nodes or v in prev or (u, v) in banned_edges:
                continue
            prev[v] = u
            if v == target:
                path = [v]
                while path[-1] != source:
                    path.append(prev[path[-1]])
                return path[::-1]
            queue.append(v)
    return None
