"""Channel-dependency-graph (CDG) deadlock analysis.

The paper's central routing claim -- up/down routing is deadlock-free
without virtual channels, while direct random networks are "deadlock
prone" -- is a statement about the *channel dependency graph* (Dally &
Towles): vertices are directed channels, and there is an edge
``c1 -> c2`` whenever the routing function can hold a packet in ``c1``
while it waits for ``c2``.  Routing is deadlock-free iff the CDG is
acyclic.  This module builds CDGs for the routing functions in this
library so the claims can be *checked*, not assumed:

* :func:`updown_dependency_graph` -- folded Clos up/down routing.
  Ascending channels feed ascending/descending ones; descending
  channels only feed descending ones; acyclicity follows (and is
  asserted by the tests on CFT/RFC/OFT instances).
* :func:`minimal_ecmp_dependency_graph` -- shortest-path ECMP on a
  direct network, per-destination dependencies unioned.  On cyclic
  graphs this CDG generally has cycles (Jellyfish's problem).
* :func:`distance_class_dependency_graph` -- the same routing with
  distance-class virtual channels (VC = hop index): every dependency
  strictly increases the VC class, so the CDG is provably acyclic when
  enough classes exist -- exactly what the simulator implements.
"""

from __future__ import annotations

from ..topologies.base import DirectNetwork, FoldedClos
from .shortest import shortest_path_lengths

__all__ = [
    "has_cycle",
    "updown_dependency_graph",
    "minimal_ecmp_dependency_graph",
    "distance_class_dependency_graph",
]

Node = tuple
Graph = dict[Node, set[Node]]


def has_cycle(graph: Graph) -> bool:
    """Iterative three-color DFS cycle detection on a dict-of-sets."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[Node, int] = {node: WHITE for node in graph}
    for start in graph:
        if color[start] != WHITE:
            continue
        stack: list[tuple[Node, iter]] = [(start, iter(graph[start]))]
        color[start] = GRAY
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for nxt in neighbors:
                state = color.get(nxt, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(graph.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False


def updown_dependency_graph(topo: FoldedClos) -> Graph:
    """CDG of up/down routing on a folded Clos.

    Channels are ``("up"|"down", level, lower_index, upper_index)``
    where the level pair is (level, level+1).  A packet ascending into
    a switch may continue up or turn down; a descending packet only
    continues down.  No other dependencies exist under up/down
    routing.
    """
    graph: Graph = {}

    def node(kind: str, level: int, lo: int, hi: int) -> Node:
        key = (kind, level, lo, hi)
        graph.setdefault(key, set())
        return key

    for level in range(topo.num_levels - 1):
        for s in range(topo.level_sizes[level]):
            for t in topo.up_neighbors(level, s):
                node("up", level, s, t)
                node("down", level, s, t)

    for level in range(1, topo.num_levels):
        for mid in range(topo.level_sizes[level]):
            downs = topo.down_neighbors(level, mid)
            ups = topo.up_neighbors(level, mid)
            # Ascending into `mid` via (below -> mid):
            for below in downs:
                src = ("up", level - 1, below, mid)
                # ... continue ascending,
                for above in ups:
                    graph[src].add(node("up", level, mid, above))
                # ... or turn down anywhere below.
                for other in downs:
                    graph[src].add(node("down", level - 1, other, mid))
            # Descending into `mid` via (above -> mid): only further down.
            if level < topo.num_levels - 1:
                for above in ups:
                    src = ("down", level, mid, above)
                    for below in downs:
                        graph[src].add(node("down", level - 1, below, mid))
    return graph


def minimal_ecmp_dependency_graph(network: DirectNetwork) -> Graph:
    """CDG of shortest-path ECMP on a direct network (no VCs).

    Channels are directed switch pairs ``(a, b)``; for every
    destination ``d``, a channel on a shortest path toward ``d`` may
    wait on every next channel on a shortest path.
    """
    adjacency = network.adjacency()
    n = network.num_switches
    graph: Graph = {}
    for a, nbrs in enumerate(adjacency):
        for b in nbrs:
            graph.setdefault((a, b), set())
    for dest in range(n):
        dist = shortest_path_lengths(adjacency, dest)
        for a, nbrs in enumerate(adjacency):
            for b in nbrs:
                if dist[a] != dist[b] + 1 or b == dest:
                    continue
                for c in adjacency[b]:
                    if dist[c] == dist[b] - 1:
                        graph[(a, b)].add((b, c))
    return graph


def distance_class_dependency_graph(
    network: DirectNetwork, num_classes: int
) -> Graph:
    """Minimal ECMP with distance-class VCs: channel nodes carry a class.

    A packet on hop ``h`` occupies class ``min(h, num_classes - 1)``;
    the dependency goes to class ``min(h + 1, num_classes - 1)``.  With
    ``num_classes`` >= the longest route the class strictly increases
    until the cap, and the capped class only appears on final hops, so
    the CDG is acyclic; with too few classes cycles reappear at the
    cap (observable with ``num_classes = 1``, which degenerates to
    :func:`minimal_ecmp_dependency_graph`).
    """
    if num_classes < 1:
        raise ValueError("need at least one virtual-channel class")
    adjacency = network.adjacency()
    n = network.num_switches
    graph: Graph = {}

    def node(a: int, b: int, cls: int) -> Node:
        key = (a, b, cls)
        graph.setdefault(key, set())
        return key

    for dest in range(n):
        dist = shortest_path_lengths(adjacency, dest)
        if dist[dest] != 0:
            continue
        total = max(d for d in dist if d >= 0)
        for a, nbrs in enumerate(adjacency):
            if dist[a] < 0:
                continue
            for b in nbrs:
                if dist[a] != dist[b] + 1 or b == dest:
                    continue
                # A packet reaching channel (a, b) toward dest has made
                # h = route_len - dist[a] hops so far; route_len varies
                # by source, so include every feasible hop index.
                for h in range(0, total - dist[b]):
                    cls = min(h, num_classes - 1)
                    nxt_cls = min(h + 1, num_classes - 1)
                    src = node(a, b, cls)
                    for c in adjacency[b]:
                        if dist[c] == dist[b] - 1:
                            src_set = graph[src]
                            src_set.add(node(b, c, nxt_cls))
    return graph
