"""Routing layers: up/down ECMP for folded Clos, shortest paths for RRN."""

from .deadlock import (
    distance_class_dependency_graph,
    has_cycle,
    minimal_ecmp_dependency_graph,
    updown_dependency_graph,
)
from .diversity import (
    DiversityCensus,
    ecmp_width_histogram,
    path_diversity_census,
)
from .shortest import (
    all_shortest_next_hops,
    k_shortest_paths,
    shortest_path,
    shortest_path_lengths,
)
from .table import EcmpTableRouter
from .updown import RoutingError, UpDownRouter

__all__ = [
    "UpDownRouter",
    "EcmpTableRouter",
    "RoutingError",
    "DiversityCensus",
    "ecmp_width_histogram",
    "path_diversity_census",
    "has_cycle",
    "updown_dependency_graph",
    "minimal_ecmp_dependency_graph",
    "distance_class_dependency_graph",
    "shortest_path",
    "shortest_path_lengths",
    "all_shortest_next_hops",
    "k_shortest_paths",
]
