"""ECMP table routing for direct networks (the Jellyfish side).

Direct networks have no up/down structure, so the simulator routes
them with per-destination ECMP tables: for destination switch ``d``,
``next_hops(s, d)`` lists every neighbor of ``s`` that is one hop
closer to ``d`` on some shortest path.  Tables are built lazily (one
BFS per destination actually used) and cached.

Deadlock: minimal routing on a cyclic direct network can deadlock
under virtual cut-through.  The simulator therefore pairs this router
with *distance-class* virtual channels -- a packet on its ``h``-th hop
uses VC ``h`` -- which breaks every channel-dependency cycle as long
as the VC count covers the longest route (true for the paper's
diameter-3/4 RRNs with 4 VCs).  This is exactly the complexity tax the
paper notes that Jellyfish pays and folded Clos topologies avoid.
"""

from __future__ import annotations

from ..topologies.base import DirectNetwork
from .shortest import all_shortest_next_hops, shortest_path_lengths

__all__ = ["EcmpTableRouter"]


class EcmpTableRouter:
    """Per-destination shortest-path ECMP tables over a direct network."""

    def __init__(self, adjacency: list[list[int]]) -> None:
        self._adj = adjacency
        self._tables: dict[int, list[list[int]]] = {}
        self._dist: dict[int, list[int]] = {}

    @classmethod
    def for_network(cls, network: DirectNetwork) -> "EcmpTableRouter":
        return cls(network.adjacency())

    def _table(self, dest: int) -> list[list[int]]:
        table = self._tables.get(dest)
        if table is None:
            table = all_shortest_next_hops(self._adj, dest)
            self._tables[dest] = table
            self._dist[dest] = shortest_path_lengths(self._adj, dest)
        return table

    def next_hops(self, switch: int, dest: int) -> list[int]:
        """Neighbors of ``switch`` on a shortest path toward ``dest``.

        Empty when ``switch == dest`` (deliver locally) or when the
        destination is unreachable.
        """
        if switch == dest:
            return []
        return self._table(dest)[switch]

    def reachable(self, switch: int, dest: int) -> bool:
        if switch == dest:
            return True
        self._table(dest)
        return self._dist[dest][switch] >= 0

    def distance(self, switch: int, dest: int) -> int:
        """Shortest hop count (-1 when unreachable)."""
        if switch == dest:
            return 0
        self._table(dest)
        return self._dist[dest][switch]

    def max_route_length(self, dests: list[int] | None = None) -> int:
        """Longest shortest-path over the cached (or given) tables.

        Used by the simulator to check the distance-class VC budget.
        """
        dests = dests if dests is not None else list(self._tables)
        worst = 0
        for dest in dests:
            self._table(dest)
            worst = max(worst, max(self._dist[dest], default=0))
        return worst
