"""ECMP table routing for direct networks (the Jellyfish side).

Direct networks have no up/down structure, so the simulator routes
them with per-destination ECMP tables: for destination switch ``d``,
``next_hops(s, d)`` lists every neighbor of ``s`` that is one hop
closer to ``d`` on some shortest path.  Tables are built lazily (one
BFS per destination actually used) and cached.

Deadlock: minimal routing on a cyclic direct network can deadlock
under virtual cut-through.  The simulator therefore pairs this router
with *distance-class* virtual channels -- a packet on its ``h``-th hop
uses VC ``h`` -- which breaks every channel-dependency cycle as long
as the VC count covers the longest route (true for the paper's
diameter-3/4 RRNs with 4 VCs).  This is exactly the complexity tax the
paper notes that Jellyfish pays and folded Clos topologies avoid.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from ..topologies.base import DirectNetwork
from .shortest import all_shortest_next_hops, shortest_path_lengths

__all__ = ["CsrTable", "EcmpTableRouter"]


class CsrTable:
    """CSR-flattened per-(source, destination) candidate lists.

    The hop-by-hop routers answer ``next_hops(source, dest)`` with a
    freshly built Python list on every call; the simulator's fast path
    (:mod:`repro.simulation.fastpath`) instead precomputes every answer
    once into two flat arrays:

    * ``offsets`` -- shape ``(num_sources * num_dests + 1,)``,
      ``int64``: the candidates of key ``k = source * num_dests +
      dest`` live in ``values[offsets[k]:offsets[k + 1]]``.  Offsets
      index the *concatenation* of every candidate list, a count that
      grows past ``2**31`` near a million terminals, so they must be
      wide even while the values stay ``int32``;
    * ``values`` -- the concatenated candidate ids (next-hop switches
      or output channel ids, depending on the builder);

    plus a ``uint8`` ``flags`` array (one entry per key) classifying
    each pair: :data:`ROUTE` (use the candidate slice), :data:`DELIVER`
    (source *is* the destination -- eject locally, slice empty) or
    :data:`UNROUTABLE` (no route survives -- slice empty).
    """

    ROUTE = 0
    DELIVER = 1
    UNROUTABLE = 2

    def __init__(
        self,
        num_sources: int,
        num_dests: int,
        offsets: np.ndarray,
        values: np.ndarray,
        flags: np.ndarray,
    ) -> None:
        if offsets.shape != (num_sources * num_dests + 1,):
            raise ValueError("offsets must have one entry per key plus one")
        if flags.shape != (num_sources * num_dests,):
            raise ValueError("flags must have one entry per key")
        self.num_sources = num_sources
        self.num_dests = num_dests
        self.offsets = offsets
        self.values = values
        self.flags = flags

    @classmethod
    def build(
        cls,
        num_sources: int,
        num_dests: int,
        entry: Callable[[int, int], tuple[int, Iterable[int]]],
    ) -> "CsrTable":
        """Materialize ``entry(source, dest) -> (flag, candidates)``
        for every key, in row-major (source-major) order."""
        offsets = np.zeros(num_sources * num_dests + 1, dtype=np.int64)
        flags = np.zeros(num_sources * num_dests, dtype=np.uint8)
        values: list[int] = []
        key = 0
        for source in range(num_sources):
            for dest in range(num_dests):
                flag, candidates = entry(source, dest)
                flags[key] = flag
                values.extend(candidates)
                key += 1
                offsets[key] = len(values)
        return cls(
            num_sources,
            num_dests,
            offsets,
            np.asarray(values, dtype=np.int32),
            flags,
        )

    def key(self, source: int, dest: int) -> int:
        return source * self.num_dests + dest

    def flag(self, source: int, dest: int) -> int:
        return int(self.flags[self.key(source, dest)])

    def candidates(self, source: int, dest: int) -> np.ndarray:
        """Candidate slice for one pair (empty for DELIVER/UNROUTABLE)."""
        key = self.key(source, dest)
        return self.values[self.offsets[key]:self.offsets[key + 1]]

    def to_lists(self) -> list:
        """Per-key Python lists for the interpreter-bound hot loop.

        Returns one entry per key: the candidate list for ROUTE and
        DELIVER keys, ``None`` for UNROUTABLE ones (the engine replays
        the reference router on a ``None`` hit so a routing failure
        raises the exact same :class:`~repro.routing.updown
        .RoutingError` the reference engine would).  Scalar-indexing
        numpy arrays from Python is slower than list indexing, so the
        run loop works off this mirror while the arrays stay the
        canonical, testable representation.
        """
        offsets = self.offsets.tolist()
        values = self.values.tolist()
        unroutable = self.UNROUTABLE
        return [
            None
            if flag == unroutable
            else values[offsets[key]:offsets[key + 1]]
            for key, flag in enumerate(self.flags.tolist())
        ]

    def source_of_value(self) -> np.ndarray:
        """Source id of every ``values`` entry (CSR row expansion)."""
        counts = np.diff(self.offsets)
        keys = np.repeat(np.arange(len(self.flags)), counts)
        return keys // self.num_dests


class EcmpTableRouter:
    """Per-destination shortest-path ECMP tables over a direct network."""

    def __init__(self, adjacency: list[list[int]]) -> None:
        self._adj = adjacency
        self._tables: dict[int, list[list[int]]] = {}
        self._dist: dict[int, list[int]] = {}

    @classmethod
    def for_network(cls, network: DirectNetwork) -> "EcmpTableRouter":
        return cls(network.adjacency())

    def _table(self, dest: int) -> list[list[int]]:
        table = self._tables.get(dest)
        if table is None:
            table = all_shortest_next_hops(self._adj, dest)
            self._tables[dest] = table
            self._dist[dest] = shortest_path_lengths(self._adj, dest)
        return table

    def next_hops(self, switch: int, dest: int) -> list[int]:
        """Neighbors of ``switch`` on a shortest path toward ``dest``.

        Empty when ``switch == dest`` (deliver locally) or when the
        destination is unreachable.
        """
        if switch == dest:
            return []
        return self._table(dest)[switch]

    def reachable(self, switch: int, dest: int) -> bool:
        if switch == dest:
            return True
        self._table(dest)
        return self._dist[dest][switch] >= 0

    def distance(self, switch: int, dest: int) -> int:
        """Shortest hop count (-1 when unreachable)."""
        if switch == dest:
            return 0
        self._table(dest)
        return self._dist[dest][switch]

    def csr_table(self) -> CsrTable:
        """All ECMP tables flattened into one :class:`CsrTable`.

        Values are next-hop *switch ids*; the simulator's fast path
        maps them onto output channel ids.  Building this forces every
        per-destination BFS the lazy tables would otherwise spread
        over the run.
        """
        n = len(self._adj)

        def entry(source: int, dest: int) -> tuple[int, list[int]]:
            if source == dest:
                return CsrTable.DELIVER, []
            hops = self._table(dest)[source]
            if self._dist[dest][source] < 0:
                return CsrTable.UNROUTABLE, []
            return CsrTable.ROUTE, list(hops)

        return CsrTable.build(n, n, entry)

    def max_route_length(self, dests: list[int] | None = None) -> int:
        """Longest shortest-path over the cached (or given) tables.

        Used by the simulator to check the distance-class VC budget.
        """
        dests = dests if dests is not None else list(self._tables)
        worst = 0
        for dest in dests:
            self._table(dest)
            worst = max(worst, max(self._dist[dest], default=0))
        return worst
