"""Up/down (least-common-ancestor) routing for folded Clos networks.

The deadlock-free routing the paper relies on: a packet from leaf ``a``
to leaf ``b`` takes some number of up-hops to a common ancestor and
then down-hops to ``b``.  Because it never turns up after going down,
the channel dependency graph is acyclic and no virtual channels are
needed for deadlock freedom (Section 4.1).

In a CFT any up-port works; in an RFC it does not -- an up-neighbor
may have no ancestor above it that covers the destination.  The router
therefore precomputes, per switch ``s`` and ascent budget ``j``,

    ``U_j[s]`` = bitmask of leaves reachable from ``s`` with exactly
    ``j`` up-hops followed by only down-hops,

so a hop decision is two bit-tests.  ``U_0`` is the descendant set and
``U_j[s] = union of U_{j-1} over up-neighbors``.

The router exposes **minimal** next hops (equal-cost multi-path: all
ports on some shortest up/down route) and optionally *any-valid* hops
(every port that keeps an up/down route available, possibly longer) --
an ablation knob for the simulator.

Instances are built either from a :class:`FoldedClos` or from raw
``(level_sizes, up_stages)`` so fault experiments can route on pruned
networks without rebuilding topology objects.
"""

from __future__ import annotations

import random
from typing import Sequence

from .. import accel as _accel
from ..topologies.base import FoldedClos

__all__ = ["UpDownRouter", "RoutingError"]


class RoutingError(RuntimeError):
    """Raised when no up/down route exists for a requested pair."""


class UpDownRouter:
    """Hop-by-hop up/down ECMP router over a folded Clos structure."""

    def __init__(
        self,
        level_sizes: Sequence[int],
        up_stages: Sequence[Sequence[Sequence[int]]],
        accel: bool = True,
        stage_arrays=None,
    ) -> None:
        if len(up_stages) != len(level_sizes) - 1:
            raise ValueError("need one up-stage per level boundary")
        self.level_sizes = list(level_sizes)
        self.num_levels = len(level_sizes)
        self._up: list[list[tuple[int, ...]]] = [
            [tuple(row) for row in stage] for stage in up_stages
        ]
        self._down: list[list[tuple[int, ...]]] = []
        for stage, rows in enumerate(self._up):
            down: list[list[int]] = [[] for _ in range(level_sizes[stage + 1])]
            for s, ups in enumerate(rows):
                for t in ups:
                    down[t].append(s)
            self._down.append([tuple(d) for d in down])
        if accel and self.level_sizes[0] > 0 and _accel.is_available():
            self._build_tables_accel(stage_arrays)
        else:
            self._build_tables()

    @classmethod
    def for_topology(
        cls, topo: FoldedClos, accel: bool = True
    ) -> "UpDownRouter":
        stages = [
            [topo.up_neighbors(level, s) for s in range(topo.level_sizes[level])]
            for level in range(topo.num_levels - 1)
        ]
        # Packed topologies hand their CSR stage arrays to the sweeper
        # so the reach-table recurrence never re-flattens Python rows.
        arrays = getattr(topo, "up_stage_arrays", None)
        return cls(
            topo.level_sizes,
            stages,
            accel=accel,
            stage_arrays=arrays() if arrays is not None else None,
        )

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------
    def _build_tables_accel(self, stage_arrays=None) -> None:
        """Packed-bitset twin of :meth:`_build_tables`.

        The :class:`repro.accel.StageSweeper` runs the same
        ``U_j = union of U_{j-1} over up-neighbors`` recurrence on
        ``uint64`` word arrays; converting each row back to a Python
        big-int reproduces the reference ``_reach`` tables bit for bit
        (asserted by ``tests/test_accel_differential.py``).  When the
        caller already holds CSR ``stage_arrays`` (packed topologies)
        the sweeper indexes those directly -- identical edge order,
        identical tables.
        """
        if stage_arrays is not None:
            sweeper = _accel.StageSweeper.from_arrays(
                self.level_sizes, stage_arrays
            )
        else:
            sweeper = _accel.StageSweeper(self.level_sizes, self._up)
        packed = sweeper.reach_tables()
        self._reach = []
        for level in range(self.num_levels):
            per_budget = [_accel.masks_to_ints(t) for t in packed[level]]
            self._reach.append(
                [
                    [per_budget[j][s] for j in range(len(per_budget))]
                    for s in range(self.level_sizes[level])
                ]
            )

    def _build_tables(self) -> None:
        levels = self.num_levels
        n1 = self.level_sizes[0]
        # reach[level][s][j]: leaves reachable with exactly j up-hops.
        # U_0 per level (descendants):
        descend: list[list[int]] = [[1 << leaf for leaf in range(n1)]]
        for stage, rows in enumerate(self._up):
            upper = [0] * self.level_sizes[stage + 1]
            lower = descend[stage]
            for s, ups in enumerate(rows):
                mask = lower[s]
                for t in ups:
                    upper[t] |= mask
            descend.append(upper)
        self._reach: list[list[list[int]]] = []
        for level in range(levels):
            max_up = levels - 1 - level
            tables = [[descend[level][s]] for s in range(self.level_sizes[level])]
            self._reach.append(tables)
        for j in range(1, levels):
            for level in range(levels - j):
                rows = self._up[level]
                upper_tables = self._reach[level + 1]
                for s, ups in enumerate(rows):
                    acc = 0
                    for t in ups:
                        acc |= upper_tables[t][j - 1]
                    self._reach[level][s].append(acc)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def descendants(self, level: int, index: int) -> int:
        """Bitmask of leaves below switch ``(level, index)``."""
        return self._reach[level][index][0]

    def min_ascent(self, level: int, index: int, dest_leaf: int) -> int:
        """Fewest up-hops before descending to ``dest_leaf``; -1 if none."""
        bit = 1 << dest_leaf
        for j, mask in enumerate(self._reach[level][index]):
            if mask & bit:
                return j
        return -1

    def reachable(self, leaf_a: int, dest_leaf: int) -> bool:
        """Whether an up/down route exists from leaf ``leaf_a``."""
        return self.min_ascent(0, leaf_a, dest_leaf) >= 0

    def next_hops(
        self,
        level: int,
        index: int,
        dest_leaf: int,
        minimal: bool = True,
    ) -> tuple[str, list[int]]:
        """ECMP next-hop candidates for a packet at ``(level, index)``.

        Returns ``(direction, level-local neighbor indices)`` where
        direction is ``"deliver"`` (the packet is at the destination
        leaf -- neighbor list empty), ``"down"`` or ``"up"``.  With
        ``minimal=False`` the up candidates include every up-neighbor
        that preserves *some* up/down route, not just shortest ones.

        Raises :class:`RoutingError` when the pair is not up/down
        connected from this switch.
        """
        bit = 1 << dest_leaf
        tables = self._reach[level][index]
        if level == 0 and index == dest_leaf:
            return "deliver", []
        if tables[0] & bit:
            candidates = [
                t
                for t in self._down[level - 1][index]
                if self._reach[level - 1][t][0] & bit
            ]
            return "down", candidates
        ascent = self.min_ascent(level, index, dest_leaf)
        if ascent < 0:
            raise RoutingError(
                f"no up/down route from (level={level}, index={index}) "
                f"to leaf {dest_leaf}"
            )
        ups = self._up[level][index]
        if minimal:
            candidates = [
                t
                for t in ups
                if self._reach[level + 1][t][ascent - 1] & bit
            ]
        else:
            candidates = [
                t
                for t in ups
                if any(mask & bit for mask in self._reach[level + 1][t])
            ]
        return "up", candidates

    def path(
        self,
        leaf_a: int,
        leaf_b: int,
        rng: random.Random | int | None = None,
        minimal: bool = True,
    ) -> list[tuple[int, int]]:
        """One random up/down route as ``(level, index)`` switch hops.

        Includes both endpoint leaves.  ECMP choices are made uniformly
        at random (reproducible through ``rng``).
        """
        rand = rng if isinstance(rng, random.Random) else random.Random(rng)
        level, index = 0, leaf_a
        hops = [(level, index)]
        guard = 4 * self.num_levels + 4
        while not (level == 0 and index == leaf_b):
            direction, candidates = self.next_hops(
                level, index, leaf_b, minimal=minimal
            )
            if direction == "deliver":
                break
            if not candidates:
                raise RoutingError(
                    f"dead end at (level={level}, index={index}) "
                    f"routing to leaf {leaf_b}"
                )
            choice = rand.choice(candidates)
            level = level + 1 if direction == "up" else level - 1
            index = choice
            hops.append((level, index))
            if len(hops) > guard:
                raise RoutingError("runaway route; routing tables corrupt")
        return hops

    def path_length(self, leaf_a: int, leaf_b: int) -> int:
        """Minimal up/down hop count between two leaves (0 if equal)."""
        if leaf_a == leaf_b:
            return 0
        ascent = self.min_ascent(0, leaf_a, leaf_b)
        if ascent < 0:
            raise RoutingError(f"leaves {leaf_a}, {leaf_b} not connected")
        return 2 * ascent

    def ecmp_width(self, leaf_a: int, leaf_b: int) -> int:
        """Number of distinct minimal up/down routes between two leaves.

        Counted by dynamic programming over the minimal-route DAG.
        """
        if leaf_a == leaf_b:
            return 1
        ascent = self.min_ascent(0, leaf_a, leaf_b)
        if ascent < 0:
            raise RoutingError(f"leaves {leaf_a}, {leaf_b} not connected")
        bit = 1 << leaf_b
        # Count ascending paths into each common ancestor at the apex
        # level, then descending paths from it.
        up_counts: dict[int, int] = {leaf_a: 1}
        for j in range(ascent):
            nxt: dict[int, int] = {}
            for s, count in up_counts.items():
                for t in self._up[j][s]:
                    if self._reach[j + 1][t][ascent - 1 - j] & bit:
                        nxt[t] = nxt.get(t, 0) + count
            up_counts = nxt
        total = 0
        for apex, count in up_counts.items():
            total += count * self._down_route_count(ascent, apex, leaf_b)
        return total

    def _down_route_count(self, level: int, index: int, dest_leaf: int) -> int:
        if level == 0:
            return 1 if index == dest_leaf else 0
        bit = 1 << dest_leaf
        total = 0
        for t in self._down[level - 1][index]:
            if self._reach[level - 1][t][0] & bit:
                total += self._down_route_count(level - 1, t, dest_leaf)
        return total
