"""Path-diversity census for folded Clos networks.

Path diversity is the quantity behind several of the paper's
qualitative claims: the 2-level OFT has *unique* minimal routes (poor
worst-case performance and zero up/down fault tolerance), CFTs have
``(R/2)^(l-1)`` routes between cross-pod leaves, and RFCs sit in
between with a *distribution* of widths induced by the random wiring.
This module measures that distribution.
"""

from __future__ import annotations

import random
import statistics
from collections import Counter
from dataclasses import dataclass

from ..topologies.base import FoldedClos
from .updown import UpDownRouter

__all__ = ["DiversityCensus", "path_diversity_census", "ecmp_width_histogram"]


@dataclass(frozen=True)
class DiversityCensus:
    """Summary of minimal up/down route multiplicity over leaf pairs."""

    pairs: int
    mean_width: float
    min_width: int
    max_width: int
    unique_route_fraction: float
    mean_length: float

    def describe(self) -> str:
        return (
            f"{self.pairs} pairs: width mean {self.mean_width:.1f} "
            f"[{self.min_width}..{self.max_width}], "
            f"{self.unique_route_fraction:.1%} single-route, "
            f"mean length {self.mean_length:.2f}"
        )


def ecmp_width_histogram(
    topo: FoldedClos,
    sample_pairs: int = 200,
    rng: random.Random | int | None = None,
    router: UpDownRouter | None = None,
) -> Counter:
    """Histogram of minimal-route counts over sampled distinct pairs."""
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    router = router or UpDownRouter.for_topology(topo)
    n1 = topo.num_leaves
    histogram: Counter = Counter()
    total_pairs = n1 * (n1 - 1) // 2
    if total_pairs <= sample_pairs:
        pairs = [(a, b) for a in range(n1) for b in range(a + 1, n1)]
    else:
        seen: set[tuple[int, int]] = set()
        while len(seen) < sample_pairs:
            a, b = rand.randrange(n1), rand.randrange(n1)
            if a != b:
                seen.add((min(a, b), max(a, b)))
        pairs = sorted(seen)
    for a, b in pairs:
        histogram[router.ecmp_width(a, b)] += 1
    return histogram


def path_diversity_census(
    topo: FoldedClos,
    sample_pairs: int = 200,
    rng: random.Random | int | None = None,
) -> DiversityCensus:
    """Sampled census of route multiplicity and minimal lengths."""
    router = UpDownRouter.for_topology(topo)
    histogram = ecmp_width_histogram(
        topo, sample_pairs=sample_pairs, rng=rng, router=router
    )
    widths = [w for w, count in histogram.items() for _ in range(count)]
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    n1 = topo.num_leaves
    lengths = []
    for _ in range(min(sample_pairs, 200)):
        a, b = rand.randrange(n1), rand.randrange(n1)
        if a != b:
            lengths.append(router.path_length(a, b))
    return DiversityCensus(
        pairs=len(widths),
        mean_width=statistics.fmean(widths),
        min_width=min(widths),
        max_width=max(widths),
        unique_route_fraction=histogram.get(1, 0) / len(widths),
        mean_length=statistics.fmean(lengths) if lengths else 0.0,
    )
