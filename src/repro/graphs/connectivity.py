"""Connectivity analysis under link removal.

Supports the paper's resiliency study (Section 7): how many randomly
removed links does it take to disconnect a network's switch graph, and
does the surviving graph still connect all *leaf* switches (the
property that matters to compute nodes).

Like :mod:`repro.graphs.metrics`, every function carries an
``accel=True`` default that routes through the numpy kernels in
:mod:`repro.accel` -- packed-frontier BFS for reachability and
min-label propagation for component labelling -- with the pure-Python
implementation kept as the bit-for-bit reference oracle
(``accel=False``), and an automatic fallback when the kernels do not
apply.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from .. import accel as _accel

__all__ = [
    "connected_components",
    "is_connected",
    "connects_all",
    "adjacency_without_links",
]


def _use_accel(accel: bool, n: int) -> bool:
    return accel and n > 0 and _accel.is_available()


def connected_components(
    adjacency: Sequence[Sequence[int]],
    accel: bool = True,
) -> list[list[int]]:
    """Connected components as lists of vertex ids (sorted, stable).

    Components are ordered by their smallest vertex id -- the same
    order the reference scan discovers them in.
    """
    n = len(adjacency)
    if _use_accel(accel, n):
        import numpy as np

        csr = _accel.CsrAdjacency.from_adjacency(adjacency)
        labels = np.arange(n, dtype=np.int32)
        while True:
            relaxed = np.minimum(labels, _accel.gather_min(csr, labels))
            if np.array_equal(relaxed, labels):
                break
            labels = relaxed
        # Stable sort by label: members stay in ascending-id order and
        # labels (= component minima) ascend, matching the reference.
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        boundaries = np.nonzero(np.diff(sorted_labels))[0] + 1
        return [
            chunk.tolist() for chunk in np.split(order, boundaries)
        ]
    seen = [False] * n
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        comp = [start]
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    queue.append(v)
        components.append(sorted(comp))
    return components


def is_connected(
    adjacency: Sequence[Sequence[int]], accel: bool = True
) -> bool:
    """Whether the whole switch graph is a single component."""
    n = len(adjacency)
    if n == 0:
        return True
    if _use_accel(accel, n):
        csr = _accel.CsrAdjacency.from_adjacency(adjacency)
        return int((_accel.bfs_distances(csr, 0) >= 0).sum()) == n
    seen = [False] * n
    seen[0] = True
    queue = deque([0])
    count = 1
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if not seen[v]:
                seen[v] = True
                count += 1
                queue.append(v)
    return count == n


def connects_all(
    adjacency: Sequence[Sequence[int]],
    vertices: Iterable[int],
    accel: bool = True,
) -> bool:
    """Whether all of ``vertices`` lie in one connected component.

    Used with the set of leaf switches: a folded Clos is *functionally*
    disconnected as soon as some pair of leaves cannot reach each
    other, even if upper-level fragments survive elsewhere.
    """
    wanted = set(vertices)
    if len(wanted) <= 1:
        return True
    if _use_accel(accel, len(adjacency)):
        import numpy as np

        targets = sorted(wanted)
        csr = _accel.CsrAdjacency.from_adjacency(adjacency)
        dist = _accel.bfs_distances(csr, targets[0])
        return bool(np.all(dist[np.asarray(targets, dtype=np.intp)] >= 0))
    start = next(iter(wanted))
    seen = [False] * len(adjacency)
    seen[start] = True
    queue = deque([start])
    reached = 1 if start in wanted else 0
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if not seen[v]:
                seen[v] = True
                if v in wanted:
                    reached += 1
                queue.append(v)
    return reached == len(wanted)


def adjacency_without_links(
    adjacency: Sequence[Sequence[int]],
    removed: Iterable[tuple[int, int]],
) -> list[list[int]]:
    """Copy of ``adjacency`` with the given undirected links removed."""
    gone: set[tuple[int, int]] = set()
    for a, b in removed:
        gone.add((a, b))
        gone.add((b, a))
    return [
        [v for v in nbrs if (u, v) not in gone]
        for u, nbrs in enumerate(adjacency)
    ]
