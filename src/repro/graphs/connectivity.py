"""Connectivity analysis under link removal.

Supports the paper's resiliency study (Section 7): how many randomly
removed links does it take to disconnect a network's switch graph, and
does the surviving graph still connect all *leaf* switches (the
property that matters to compute nodes).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

__all__ = [
    "connected_components",
    "is_connected",
    "connects_all",
    "adjacency_without_links",
]


def connected_components(
    adjacency: Sequence[Sequence[int]],
) -> list[list[int]]:
    """Connected components as lists of vertex ids (sorted, stable)."""
    n = len(adjacency)
    seen = [False] * n
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        comp = [start]
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    queue.append(v)
        components.append(sorted(comp))
    return components


def is_connected(adjacency: Sequence[Sequence[int]]) -> bool:
    """Whether the whole switch graph is a single component."""
    n = len(adjacency)
    if n == 0:
        return True
    seen = [False] * n
    seen[0] = True
    queue = deque([0])
    count = 1
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if not seen[v]:
                seen[v] = True
                count += 1
                queue.append(v)
    return count == n


def connects_all(
    adjacency: Sequence[Sequence[int]], vertices: Iterable[int]
) -> bool:
    """Whether all of ``vertices`` lie in one connected component.

    Used with the set of leaf switches: a folded Clos is *functionally*
    disconnected as soon as some pair of leaves cannot reach each
    other, even if upper-level fragments survive elsewhere.
    """
    wanted = set(vertices)
    if len(wanted) <= 1:
        return True
    start = next(iter(wanted))
    seen = [False] * len(adjacency)
    seen[start] = True
    queue = deque([start])
    reached = 1 if start in wanted else 0
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if not seen[v]:
                seen[v] = True
                if v in wanted:
                    reached += 1
                queue.append(v)
    return reached == len(wanted)


def adjacency_without_links(
    adjacency: Sequence[Sequence[int]],
    removed: Iterable[tuple[int, int]],
) -> list[list[int]]:
    """Copy of ``adjacency`` with the given undirected links removed."""
    gone: set[tuple[int, int]] = set()
    for a, b in removed:
        gone.add((a, b))
        gone.add((b, a))
    return [
        [v for v in nbrs if (u, v) not in gone]
        for u, nbrs in enumerate(adjacency)
    ]
