"""Spectral expander analysis.

The paper traces RFCs back to the literature on expander graphs
(Bassalygo-Pinsker, Alon): random wiring makes good expanders, and
expansion is what drives bisection, fault tolerance and near-optimal
throughput.  This module quantifies that claim:

* :func:`adjacency_spectrum_gap` -- the normalized spectral gap
  ``1 - lambda_2 / d_max`` of the adjacency operator (for regular
  graphs this is the standard ``(d - lambda_2) / d`` expander gap);
* :func:`algebraic_connectivity` -- the Fiedler value (second-smallest
  Laplacian eigenvalue), a lower bound on isoperimetric quality via
  Cheeger's inequality;
* :func:`cheeger_bounds` -- the Cheeger sandwich
  ``h^2 / (2 d_max) <= fiedler... `` rearranged into the
  ``(lower, upper)`` bounds on the isoperimetric constant.

Dense ``numpy`` eigensolvers handle the sizes the experiments use
(hundreds to a few thousand switches); for larger graphs
``scipy.sparse`` is used when available.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "adjacency_eigenvalues",
    "adjacency_spectrum_gap",
    "algebraic_connectivity",
    "cheeger_bounds",
]

_DENSE_LIMIT = 1_500


def _adjacency_matrix(adjacency: Sequence[Sequence[int]]) -> np.ndarray:
    n = len(adjacency)
    matrix = np.zeros((n, n))
    for u, nbrs in enumerate(adjacency):
        for v in nbrs:
            matrix[u, v] = 1.0
    return matrix


def adjacency_eigenvalues(
    adjacency: Sequence[Sequence[int]], k: int = 2
) -> list[float]:
    """The ``k`` largest adjacency eigenvalues, descending."""
    n = len(adjacency)
    if n == 0:
        return []
    k = min(k, n)
    if n <= _DENSE_LIMIT:
        values = np.linalg.eigvalsh(_adjacency_matrix(adjacency))
        return sorted(values.tolist(), reverse=True)[:k]
    from scipy.sparse import lil_matrix
    from scipy.sparse.linalg import eigsh

    sparse = lil_matrix((n, n))
    for u, nbrs in enumerate(adjacency):
        for v in nbrs:
            sparse[u, v] = 1.0
    values = eigsh(sparse.tocsr(), k=k, which="LA", return_eigenvectors=False)
    return sorted(values.tolist(), reverse=True)


def adjacency_spectrum_gap(adjacency: Sequence[Sequence[int]]) -> float:
    """Normalized spectral gap ``(lambda_1 - lambda_2) / lambda_1``.

    For a connected d-regular graph ``lambda_1 = d`` and a gap bounded
    away from zero certifies expansion; a Ramanujan-quality graph has
    ``lambda_2 <= 2 sqrt(d - 1)``.
    """
    top = adjacency_eigenvalues(adjacency, k=2)
    if len(top) < 2 or top[0] <= 0:
        return 0.0
    return (top[0] - top[1]) / top[0]


def algebraic_connectivity(adjacency: Sequence[Sequence[int]]) -> float:
    """Fiedler value: second-smallest Laplacian eigenvalue.

    Zero iff the graph is disconnected; larger means better expansion.
    Dense solve only (quadratic memory) -- adequate for the analysis
    sizes used here.
    """
    n = len(adjacency)
    if n < 2:
        return 0.0
    matrix = -_adjacency_matrix(adjacency)
    degrees = [len(nbrs) for nbrs in adjacency]
    for u in range(n):
        matrix[u, u] = degrees[u]
    values = np.linalg.eigvalsh(matrix)
    return float(sorted(values)[1])


def cheeger_bounds(adjacency: Sequence[Sequence[int]]) -> tuple[float, float]:
    """Cheeger's sandwich on the isoperimetric (edge expansion) constant.

    ``fiedler / 2 <= h(G) <= sqrt(2 * d_max * fiedler)``.
    """
    fiedler = algebraic_connectivity(adjacency)
    d_max = max((len(nbrs) for nbrs in adjacency), default=0)
    lower = fiedler / 2.0
    upper = math.sqrt(2.0 * d_max * fiedler) if fiedler > 0 else 0.0
    return lower, upper
