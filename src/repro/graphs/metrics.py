"""Distance metrics on switch graphs.

BFS utilities used by the diameter, scalability and resiliency
experiments.  They operate on adjacency lists (``list`` of
``list``/``tuple`` of neighbor ids) as produced by
:meth:`FoldedClos.adjacency` / :meth:`DirectNetwork.adjacency`.

Every metric has two engines behind one signature:

* the **reference** pure-Python ``collections.deque`` BFS (the oracle,
  ``accel=False``);
* the **accelerated** numpy kernels from :mod:`repro.accel`
  (``accel=True``, the default): the adjacency is packed once into a
  :class:`repro.accel.CsrAdjacency` and sources advance through a
  batched bit-parallel frontier BFS, which is what makes all-sources
  scans tractable at the paper's largest instances.

The engines are proven exactly equal by
``tests/test_accel_differential.py`` and the Hypothesis suite in
``tests/test_accel_properties.py``; when the kernels do not apply
(empty graph, numpy unavailable) the accelerated path silently falls
back to the reference.

Sampling (``sample=``) draws BFS sources from ``rng``; when ``rng`` is
omitted a **fixed** default seed is used so repeated runs agree --
entropy-seeded sampling silently made ``diameter``/``average_distance``
irreproducible (the old ``random.Random(None)`` form is flagged by
``repro.lint`` RPR001).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence

from .. import accel as _accel

__all__ = [
    "bfs_distances",
    "eccentricity",
    "diameter",
    "average_distance",
    "terminal_diameter",
    "leaf_diameter",
    "distance_histogram",
    "DEFAULT_SAMPLE_SEED",
]

UNREACHABLE = -1

#: Seed used for source sampling when no ``rng`` is given.  Fixed so a
#: bare ``diameter(adj, sample=64)`` is reproducible run to run.
DEFAULT_SAMPLE_SEED = 0x5EED


def _sample_rng(rng: random.Random | int | None) -> random.Random:
    """Resolve the sampling RNG; ``None`` means the fixed default seed."""
    if isinstance(rng, random.Random):
        return rng
    if rng is None:
        return random.Random(DEFAULT_SAMPLE_SEED)
    return random.Random(rng)


def _use_accel(accel: bool, n: int) -> bool:
    return accel and n > 0 and _accel.is_available()


def _reference_bfs(adjacency: Sequence[Sequence[int]], source: int) -> list[int]:
    n = len(adjacency)
    dist = [UNREACHABLE] * n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u] + 1
        for v in adjacency[u]:
            if dist[v] == UNREACHABLE:
                dist[v] = du
                queue.append(v)
    return dist


def bfs_distances(
    adjacency: Sequence[Sequence[int]], source: int, accel: bool = True
) -> list[int]:
    """Hop distances from ``source``; ``UNREACHABLE`` where disconnected."""
    if _use_accel(accel, len(adjacency)):
        csr = _accel.CsrAdjacency.from_adjacency(adjacency)
        return _accel.bfs_distances(csr, source).tolist()
    return _reference_bfs(adjacency, source)


def eccentricity(
    adjacency: Sequence[Sequence[int]], source: int, accel: bool = True
) -> int:
    """Largest finite distance from ``source``.

    Raises ``ValueError`` when the graph is disconnected, because an
    eccentricity computed over a fragment would silently understate it.
    """
    dist = bfs_distances(adjacency, source, accel=accel)
    if UNREACHABLE in dist:
        raise ValueError("graph is disconnected")
    return max(dist)


def _sources_for(
    n: int,
    sample: int | None,
    rng: random.Random | int | None,
) -> Sequence[int]:
    if sample is None or sample >= n:
        return range(n)
    return _sample_rng(rng).sample(range(n), sample)


def diameter(
    adjacency: Sequence[Sequence[int]],
    sample: int | None = None,
    rng: random.Random | int | None = None,
    accel: bool = True,
) -> int:
    """Graph diameter by all-sources BFS.

    ``sample`` limits the number of BFS sources (a lower bound on the
    true diameter, adequate for the paper's trend plots on very large
    instances); ``None`` means exact.  Sampled sources come from
    ``rng`` (default: fixed :data:`DEFAULT_SAMPLE_SEED`).
    """
    n = len(adjacency)
    if n == 0:
        raise ValueError("empty graph has no diameter")
    sources = _sources_for(n, sample, rng)
    if _use_accel(accel, n):
        csr = _accel.CsrAdjacency.from_adjacency(adjacency)
        best = 0
        for _, mat in _accel.iter_distance_batches(csr, list(sources)):
            if (mat < 0).any():
                raise ValueError("graph is disconnected")
            best = max(best, int(mat.max()))
        return best
    best = 0
    for s in sources:
        best = max(best, eccentricity(adjacency, s, accel=False))
    return best


def average_distance(
    adjacency: Sequence[Sequence[int]],
    sample: int | None = None,
    rng: random.Random | int | None = None,
    accel: bool = True,
) -> float:
    """Mean pairwise hop distance (sampled over BFS sources if asked).

    Sampled sources come from ``rng`` (default: fixed
    :data:`DEFAULT_SAMPLE_SEED`).
    """
    n = len(adjacency)
    if n < 2:
        return 0.0
    sources = _sources_for(n, sample, rng)
    total = 0
    pairs = 0
    if _use_accel(accel, n):
        csr = _accel.CsrAdjacency.from_adjacency(adjacency)
        for chunk, mat in _accel.iter_distance_batches(csr, list(sources)):
            if (mat < 0).any():
                raise ValueError("graph is disconnected")
            total += int(mat.sum())
            pairs += (n - 1) * len(chunk)
        return total / pairs
    for s in sources:
        dist = _reference_bfs(adjacency, s)
        if UNREACHABLE in dist:
            raise ValueError("graph is disconnected")
        total += sum(dist)
        pairs += n - 1
    return total / pairs


def distance_histogram(
    adjacency: Sequence[Sequence[int]],
    sources: Sequence[int] | None = None,
    accel: bool = True,
) -> dict[int, int]:
    """Histogram of hop distances from ``sources`` (default: all).

    Counts **ordered** source/target pairs: with the default
    all-sources scan every unordered pair ``{a, b}`` contributes twice
    (once from ``a``, once from ``b``), so e.g. the 3-vertex path graph
    yields ``{1: 4, 2: 2}``.  Zero distances (the sources themselves)
    and unreachable targets are excluded.  Both engines honour this
    contract exactly; divide counts by two for unordered-pair
    semantics.
    """
    n = len(adjacency)
    src_list = list(sources) if sources is not None else list(range(n))
    if _use_accel(accel, n):
        import numpy as np

        csr = _accel.CsrAdjacency.from_adjacency(adjacency)
        counts = np.zeros(0, dtype=np.int64)
        for _, mat in _accel.iter_distance_batches(csr, src_list):
            positive = mat[mat > 0]
            if positive.size == 0:
                continue
            binned = np.bincount(positive)
            if binned.size > counts.size:
                binned[: counts.size] += counts
                counts = binned
            else:
                counts[: binned.size] += binned
        return {
            int(d): int(c) for d, c in enumerate(counts) if c > 0
        }
    hist: dict[int, int] = {}
    for s in src_list:
        for d in _reference_bfs(adjacency, s):
            if d > 0:
                hist[d] = hist.get(d, 0) + 1
    return hist


def leaf_diameter(
    adjacency: Sequence[Sequence[int]],
    leaves: Sequence[int],
    accel: bool = True,
) -> int:
    """Largest hop distance between two *leaf* switches.

    This is the paper's notion of folded Clos diameter: terminal
    traffic only ever starts and ends at leaves, so root-to-root
    distances (which can exceed ``2(l-1)``) are irrelevant.  Raises
    ``ValueError`` when some leaf pair is disconnected.
    """
    leaf_list = list(leaves)
    if _use_accel(accel, len(adjacency)) and leaf_list:
        import numpy as np

        csr = _accel.CsrAdjacency.from_adjacency(adjacency)
        targets = np.asarray(sorted(set(leaf_list)), dtype=np.intp)
        best = 0
        for _, mat in _accel.iter_distance_batches(csr, leaf_list):
            sub = mat[:, targets]
            if (sub < 0).any():
                raise ValueError("some leaf pair is disconnected")
            best = max(best, int(sub.max()))
        return best
    best = 0
    leaf_set = set(leaf_list)
    for s in leaf_list:
        dist = _reference_bfs(adjacency, s)
        worst = max(dist[t] for t in leaf_set)
        if worst == UNREACHABLE or UNREACHABLE in (dist[t] for t in leaf_set):
            raise ValueError("some leaf pair is disconnected")
        best = max(best, worst)
    return best


def terminal_diameter(network, accel: bool = True) -> int:
    """Diameter as seen by compute nodes: switch diameter + 2 host hops.

    For a single-switch network this is 2 (host, switch, host).
    ``network`` is any object with :meth:`adjacency`.
    """
    adjacency = network.adjacency()
    if len(adjacency) == 1:
        return 2
    return diameter(adjacency, accel=accel) + 2
