"""Distance metrics on switch graphs.

Plain-list BFS utilities used by the diameter, scalability and
resiliency experiments.  They operate on adjacency lists (``list`` of
``list``/``tuple`` of neighbor ids) as produced by
:meth:`FoldedClos.adjacency` / :meth:`DirectNetwork.adjacency`, which is
substantially faster than going through :mod:`networkx` for the sizes
the paper uses (tens of thousands of switches).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence

__all__ = [
    "bfs_distances",
    "eccentricity",
    "diameter",
    "average_distance",
    "terminal_diameter",
    "leaf_diameter",
    "distance_histogram",
]

UNREACHABLE = -1


def bfs_distances(adjacency: Sequence[Sequence[int]], source: int) -> list[int]:
    """Hop distances from ``source``; ``UNREACHABLE`` where disconnected."""
    n = len(adjacency)
    dist = [UNREACHABLE] * n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u] + 1
        for v in adjacency[u]:
            if dist[v] == UNREACHABLE:
                dist[v] = du
                queue.append(v)
    return dist


def eccentricity(adjacency: Sequence[Sequence[int]], source: int) -> int:
    """Largest finite distance from ``source``.

    Raises ``ValueError`` when the graph is disconnected, because an
    eccentricity computed over a fragment would silently understate it.
    """
    dist = bfs_distances(adjacency, source)
    if UNREACHABLE in dist:
        raise ValueError("graph is disconnected")
    return max(dist)


def diameter(
    adjacency: Sequence[Sequence[int]],
    sample: int | None = None,
    rng: random.Random | int | None = None,
) -> int:
    """Graph diameter by all-sources BFS.

    ``sample`` limits the number of BFS sources (a lower bound on the
    true diameter, adequate for the paper's trend plots on very large
    instances); ``None`` means exact.
    """
    n = len(adjacency)
    if n == 0:
        raise ValueError("empty graph has no diameter")
    sources: Sequence[int]
    if sample is None or sample >= n:
        sources = range(n)
    else:
        rand = rng if isinstance(rng, random.Random) else random.Random(rng)
        sources = rand.sample(range(n), sample)
    best = 0
    for s in sources:
        best = max(best, eccentricity(adjacency, s))
    return best


def average_distance(
    adjacency: Sequence[Sequence[int]],
    sample: int | None = None,
    rng: random.Random | int | None = None,
) -> float:
    """Mean pairwise hop distance (sampled over BFS sources if asked)."""
    n = len(adjacency)
    if n < 2:
        return 0.0
    sources: Sequence[int]
    if sample is None or sample >= n:
        sources = range(n)
    else:
        rand = rng if isinstance(rng, random.Random) else random.Random(rng)
        sources = rand.sample(range(n), sample)
    total = 0
    pairs = 0
    for s in sources:
        dist = bfs_distances(adjacency, s)
        if UNREACHABLE in dist:
            raise ValueError("graph is disconnected")
        total += sum(dist)
        pairs += n - 1
    return total / pairs


def distance_histogram(
    adjacency: Sequence[Sequence[int]],
    sources: Sequence[int] | None = None,
) -> dict[int, int]:
    """Histogram of hop distances from ``sources`` (default: all)."""
    n = len(adjacency)
    hist: dict[int, int] = {}
    for s in sources if sources is not None else range(n):
        for d in bfs_distances(adjacency, s):
            if d > 0:
                hist[d] = hist.get(d, 0) + 1
    return hist


def leaf_diameter(
    adjacency: Sequence[Sequence[int]], leaves: Sequence[int]
) -> int:
    """Largest hop distance between two *leaf* switches.

    This is the paper's notion of folded Clos diameter: terminal
    traffic only ever starts and ends at leaves, so root-to-root
    distances (which can exceed ``2(l-1)``) are irrelevant.
    """
    best = 0
    leaf_set = set(leaves)
    for s in leaves:
        dist = bfs_distances(adjacency, s)
        worst = max(dist[t] for t in leaf_set)
        if worst == UNREACHABLE or UNREACHABLE in (dist[t] for t in leaf_set):
            raise ValueError("some leaf pair is disconnected")
        best = max(best, worst)
    return best


def terminal_diameter(network) -> int:
    """Diameter as seen by compute nodes: switch diameter + 2 host hops.

    For a single-switch network this is 2 (host, switch, host).
    ``network`` is any object with :meth:`adjacency`.
    """
    adjacency = network.adjacency()
    if len(adjacency) == 1:
        return 2
    return diameter(adjacency) + 2
