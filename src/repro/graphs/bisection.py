"""Bisection-width estimation and the paper's analytic bounds.

Exact bisection width is NP-hard, so (as is standard in the topology
literature) we combine:

* the **Bollobas lower bound** for random regular graphs -- Section 4.2
  of the paper: a Delta-regular random graph on N vertices has
  isoperimetric number at least ``Delta/2 - sqrt(Delta ln 2)``, hence
  bisection width at least ``N/2 (Delta/2 - sqrt(Delta ln 2))``;
* the paper's **RFC reduction**: collapsing an RFC into groups of
  ``2(l-1)`` switches (two per non-root level, one root) yields a
  random multigraph of degree ``2(l-1)R`` on ``N_1/2`` vertices, giving
  ``BW >= N_1/4 ((l-1)R - sqrt(2(l-1) R ln 2))``;
* an **empirical upper bound** via randomized local-search bisection
  (Kernighan--Lin style sweeps from random balanced cuts).

``normalized_*`` helpers divide by terminals-in-a-half times average
bisection traversals, matching the paper's "normalized bisection"
numbers (CFT = 1, RRN ~ 0.88, 2-level RFC ~ 0.80, 3-level RFC ~ 0.86
for R = 36).
"""

from __future__ import annotations

import math
import random
from typing import Sequence

__all__ = [
    "bollobas_isoperimetric",
    "rrn_bisection_lower_bound",
    "rfc_bisection_lower_bound",
    "rrn_normalized_bisection",
    "rfc_normalized_bisection",
    "cut_width",
    "estimate_bisection_width",
]


def bollobas_isoperimetric(degree: int) -> float:
    """Bollobas' lower bound on the isoperimetric number of a random
    ``degree``-regular graph: ``degree/2 - sqrt(degree ln 2)``."""
    if degree < 0:
        raise ValueError(f"negative degree {degree}")
    return degree / 2.0 - math.sqrt(degree * math.log(2))


def rrn_bisection_lower_bound(num_switches: int, degree: int) -> float:
    """``N/2 * (Delta/2 - sqrt(Delta ln 2))`` links across any bisection."""
    return num_switches / 2.0 * bollobas_isoperimetric(degree)


def rfc_bisection_lower_bound(n1: int, radix: int, levels: int) -> float:
    """Paper Section 4.2: collapse the RFC and apply Bollobas' bound.

    ``N_1/4 * ((l-1) R - sqrt(2 (l-1) R ln 2))``.
    """
    if levels < 2:
        raise ValueError("an RFC bisection bound needs at least 2 levels")
    stages = levels - 1
    return n1 / 4.0 * (
        stages * radix - math.sqrt(2 * stages * radix * math.log(2))
    )


def rrn_normalized_bisection(degree: int, hosts_per_switch: int) -> float:
    """Bisection per terminal-in-a-half for a balanced RRN.

    Each RRN path crosses the bisection about once under uniform
    traffic, so normalization divides by ``N/2 * hosts`` terminals.
    """
    if hosts_per_switch <= 0:
        raise ValueError("hosts_per_switch must be positive")
    return bollobas_isoperimetric(degree) / hosts_per_switch


def rfc_normalized_bisection(radix: int, levels: int) -> float:
    """Paper's normalized bisection for a radix-regular RFC.

    Terminals per leaf are ``R/2`` and the average number of bisection
    traversals of an up/down path is ``l - 1``, so with the collapsed
    bound the normalization is
    ``((l-1) R - sqrt(2 (l-1) R ln 2)) / (2 * (R/2) * (l-1))``.
    """
    stages = levels - 1
    raw = stages * radix - math.sqrt(2 * stages * radix * math.log(2))
    return raw / (2.0 * (radix / 2.0) * stages)


def cut_width(
    adjacency: Sequence[Sequence[int]], side: Sequence[bool]
) -> int:
    """Number of links crossing the cut described by ``side`` flags."""
    crossing = 0
    for u, nbrs in enumerate(adjacency):
        su = side[u]
        for v in nbrs:
            if u < v and su != side[v]:
                crossing += 1
    return crossing


def estimate_bisection_width(
    adjacency: Sequence[Sequence[int]],
    restarts: int = 8,
    sweeps: int = 8,
    rng: random.Random | int | None = None,
) -> int:
    """Randomized local-search upper bound on the bisection width.

    Starts from random balanced partitions and greedily swaps the pair
    of cross-side vertices with the best combined gain until a sweep
    makes no progress.  Deterministic given ``rng``.
    """
    n = len(adjacency)
    if n < 2:
        return 0
    rand = rng if isinstance(rng, random.Random) else random.Random(rng)
    half = n // 2
    best = None
    nodes = list(range(n))
    for _ in range(restarts):
        rand.shuffle(nodes)
        side = [False] * n
        for u in nodes[:half]:
            side[u] = True
        width = cut_width(adjacency, side)
        for _ in range(sweeps):
            improved = False
            # Gain of moving u to the other side (negative = worse).
            gains = [0] * n
            for u, nbrs in enumerate(adjacency):
                external = sum(1 for v in nbrs if side[v] != side[u])
                internal = len(nbrs) - external
                gains[u] = external - internal
            left = sorted(
                (u for u in range(n) if side[u]),
                key=lambda u: -gains[u],
            )[: max(4, n // 16)]
            right = sorted(
                (u for u in range(n) if not side[u]),
                key=lambda u: -gains[u],
            )[: max(4, n // 16)]
            for u in left:
                for v in right:
                    coupling = 2 if v in adjacency[u] else 0
                    delta = gains[u] + gains[v] - coupling
                    if delta > 0:
                        side[u], side[v] = side[v], side[u]
                        width -= delta
                        improved = True
                        break
                else:
                    continue
                break
            if not improved:
                break
        width = cut_width(adjacency, side)
        best = width if best is None else min(best, width)
    assert best is not None
    return best
