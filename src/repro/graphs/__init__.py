"""Generic graph analyses: distances, bisection, connectivity."""

from .bisection import (
    bollobas_isoperimetric,
    estimate_bisection_width,
    rfc_bisection_lower_bound,
    rfc_normalized_bisection,
    rrn_bisection_lower_bound,
    rrn_normalized_bisection,
)
from .connectivity import (
    adjacency_without_links,
    connected_components,
    connects_all,
    is_connected,
)
from .metrics import (
    average_distance,
    bfs_distances,
    diameter,
    distance_histogram,
    eccentricity,
    leaf_diameter,
    terminal_diameter,
)
from .spectral import (
    adjacency_eigenvalues,
    adjacency_spectrum_gap,
    algebraic_connectivity,
    cheeger_bounds,
)

__all__ = [
    "average_distance",
    "bfs_distances",
    "diameter",
    "distance_histogram",
    "eccentricity",
    "terminal_diameter",
    "leaf_diameter",
    "adjacency_eigenvalues",
    "adjacency_spectrum_gap",
    "algebraic_connectivity",
    "cheeger_bounds",
    "connected_components",
    "is_connected",
    "connects_all",
    "adjacency_without_links",
    "bollobas_isoperimetric",
    "estimate_bisection_width",
    "rfc_bisection_lower_bound",
    "rfc_normalized_bisection",
    "rrn_bisection_lower_bound",
    "rrn_normalized_bisection",
]
