"""Parallel experiment execution with an on-disk result cache.

``repro.exec`` is the scaling layer under the experiment harness: it
fans independent simulation points (replications, load points, fault
trials) out across processes and memoizes finished points on disk so
sweeps are resumable and warm re-runs are free.  The determinism
contract -- parallel, serial and cached runs all produce identical
numbers for the same seeds -- is documented in ``docs/EXECUTOR.md``
and enforced by ``tests/test_exec_parallel.py``.

Most callers never construct an :class:`Executor` directly; they
configure the **ambient executor** once (the CLI does this from
``--workers`` / ``--cache-dir`` / ``--no-cache``) and every
experiment, ``replicated_point`` call and fault sweep below picks it
up::

    import repro.exec as rexec

    rexec.configure(workers=4, cache_dir="~/.cache/repro-rfc")
    table = run_experiment("fig8")          # now parallel + cached

    with rexec.using_executor(workers=1, use_cache=False):
        table = run_experiment("fig8")      # reference serial run

The default ambient executor is serial and cacheless, so importing
this package changes nothing until someone opts in.
"""

from __future__ import annotations

import contextlib
from pathlib import Path

from .cache import CACHE_FORMAT, CODE_VERSION, ResultCache, cache_key, topology_digest
from .executor import ExecReport, Executor, SimTask, merged_metrics

__all__ = [
    "Executor",
    "ExecReport",
    "SimTask",
    "merged_metrics",
    "ResultCache",
    "cache_key",
    "topology_digest",
    "CODE_VERSION",
    "CACHE_FORMAT",
    "build_executor",
    "get_executor",
    "configure",
    "using_executor",
]

_ambient = Executor()


def build_executor(
    workers: int = 1,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
) -> Executor:
    """An :class:`Executor` from plain settings (no global effect)."""
    cache = None
    if cache_dir is not None and use_cache:
        cache = ResultCache(Path(cache_dir).expanduser())
    return Executor(workers=workers, cache=cache)


def get_executor() -> Executor:
    """The ambient executor (serial and cacheless by default)."""
    return _ambient


def configure(
    workers: int = 1,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
) -> Executor:
    """Replace the ambient executor; returns the new one."""
    global _ambient
    _ambient = build_executor(workers, cache_dir, use_cache)
    return _ambient


@contextlib.contextmanager
def using_executor(executor: Executor | None = None, **settings):
    """Temporarily install ``executor`` (or one built from
    ``settings``) as the ambient executor."""
    global _ambient
    previous = _ambient
    _ambient = executor if executor is not None else build_executor(**settings)
    try:
        yield _ambient
    finally:
        _ambient = previous
