"""Content-addressed on-disk cache for simulation results.

A cache entry is one :class:`~repro.simulation.stats.SimResult`, keyed
by everything that can influence it:

* the **topology wiring** (SHA-256 of its canonical JSON serialization
  from :mod:`repro.topologies.io` -- two RFC samples with different
  wirings never share an entry, while the same instance loaded from
  disk hits);
* the **traffic pattern name** and the integer seed the pattern is
  (re)built from;
* the **offered load**;
* every field of :class:`~repro.simulation.config.SimulationParams`
  (including the engine seed) -- *except* the engine-selection knobs
  declared in :data:`~repro.simulation.config
  .CACHE_KEY_EXCLUDED_FIELDS`: all exact engines are bit-for-bit
  identical (enforced by the differential suite), so engine selection
  must not change the digest and every engine shares entries.
  ``rng_mode`` deliberately stays *in* the key: relaxed-mode results
  are only statistically equivalent, so a relaxed run must never be
  served from (or overwrite) an exact entry -- lint pass RPR105 guards
  this;
* the sorted set of **removed links** (fault experiments);
* a **code version** tag (:data:`CODE_VERSION`) bumped whenever the
  simulator's semantics change, so stale results from an older engine
  can never be replayed.

Layout on disk: ``<cache_dir>/<digest[:2]>/<digest>.json`` -- a
two-level fan-out keeps directories small for large sweeps.  Entries
are written atomically (temp file + :func:`os.replace`), so concurrent
workers racing on the same key simply last-write-wins with identical
content.  Any unreadable, truncated or format-mismatched entry is
treated as a miss and recomputed; corruption can cost time, never
correctness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

from ..simulation.config import CACHE_KEY_EXCLUDED_FIELDS, SimulationParams
from ..simulation.stats import SimResult
from ..topologies.base import DirectNetwork, FoldedClos, Link
from ..topologies.io import to_json

__all__ = [
    "CODE_VERSION",
    "CACHE_FORMAT",
    "ResultCache",
    "cache_key",
    "topology_digest",
]

#: Bump when the simulator's observable behaviour changes (routing,
#: arbitration, statistics); invalidates every existing cache entry.
CODE_VERSION = "sim-1"

#: On-disk entry schema version; bump on layout changes.
CACHE_FORMAT = 1


def topology_digest(topo: FoldedClos | DirectNetwork) -> str:
    """SHA-256 over the topology's canonical JSON wiring."""
    return hashlib.sha256(to_json(topo).encode("utf-8")).hexdigest()


def cache_key(
    topo_digest: str,
    traffic_name: str,
    load: float,
    params: SimulationParams,
    traffic_seed: int,
    removed_links: tuple[Link, ...] | None = None,
    workload: tuple | None = None,
) -> str:
    """Hex digest addressing one simulation point.

    The payload is canonical JSON (sorted keys, fixed separators) so
    the digest is stable across processes and Python versions.

    ``workload`` is the optional canonical
    :func:`repro.workloads.workload_spec` tuple a flow-workload task
    carries; it only enters the payload when present, so every legacy
    (pattern-traffic) key stays byte-identical to pre-workload
    releases and existing caches keep hitting.
    """
    params_payload = dataclasses.asdict(params)
    # Engine selection produces identical results by contract, so it
    # must not (and does not) influence the digest: caches written
    # before the fast path (or the vectorized engine) existed keep
    # hitting.  The excluded set is declared next to the dataclass
    # (and cross-checked by lint passes RPR101/RPR105), not hand-rolled
    # here; ``rng_mode`` is NOT in that set, so relaxed-mode results
    # key separately from exact ones.
    for excluded in sorted(CACHE_KEY_EXCLUDED_FIELDS):
        params_payload.pop(excluded, None)
    payload = {
        "code": CODE_VERSION,
        "format": CACHE_FORMAT,
        "topology": topo_digest,
        "traffic": traffic_name,
        "traffic_seed": traffic_seed,
        "load": load,
        "params": params_payload,
        "removed": sorted([link.lo, link.hi] for link in removed_links or ()),
    }
    if workload is not None:
        name, options = workload
        payload["workload"] = [name, [list(kv) for kv in options]]
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed store of :class:`SimResult` entries.

    All read failures degrade to a miss; all write failures are
    swallowed (a cache must never break the computation it fronts).
    Hit/miss counters accumulate over the cache's lifetime for the
    executor's timing notes.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimResult | None:
        """The cached result for ``key``, or None on any failure."""
        try:
            payload = json.loads(self._path(key).read_text())
            if payload.get("format") != CACHE_FORMAT:
                raise ValueError("cache format mismatch")
            if payload.get("code") != CODE_VERSION:
                raise ValueError("code version mismatch")
            result = SimResult(**payload["result"])
        except (OSError, ValueError, TypeError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        """Atomically persist ``result`` under ``key`` (best-effort)."""
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Observability metrics are a side channel, not part of the
            # simulated result: strip them so entries keep the pre-obs
            # byte layout and instrumented runs share entries with bare
            # ones.
            payload = {
                "format": CACHE_FORMAT,
                "code": CODE_VERSION,
                "result": result.core_dict(),
            }
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - disk-full etc.
            pass

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))
