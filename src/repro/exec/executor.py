"""Parallel execution of independent simulation points.

The paper's simulated figures average >= 5 replications per load point
across three traffics and several networks -- an embarrassingly
parallel bag of tasks.  This module fans those tasks out over a
:class:`concurrent.futures.ProcessPoolExecutor` while preserving the
serial results **bit-for-bit**:

* every task is self-contained -- it carries the topology, the traffic
  *name* plus the integer seed to rebuild the pattern from, the load
  and the full :class:`SimulationParams` (whose ``seed`` field is
  already derived by the caller, e.g. ``base + 1_000_003 * i`` for
  replication ``i``).  No RNG state crosses task boundaries, so
  worker scheduling order cannot influence any result;
* results are returned in task order regardless of completion order.

An optional :class:`~repro.exec.cache.ResultCache` is consulted before
any work is scheduled, so warm re-runs of a sweep skip the simulator
entirely.  If a process pool cannot be created (restricted sandboxes,
missing semaphores), execution silently degrades to in-process serial
with identical results.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..simulation.config import SimulationParams
from ..simulation.engine import simulate
from ..simulation.stats import SimResult
from ..simulation.traffic import make_traffic
from ..topologies.base import DirectNetwork, FoldedClos, Link
from .cache import ResultCache, cache_key, topology_digest

__all__ = ["SimTask", "ExecReport", "Executor", "merged_metrics"]


def merged_metrics(results: Iterable[SimResult]) -> dict:
    """Aggregate the per-worker metrics of a batch's results.

    Results without metrics (bare tasks, cache hits) are skipped; see
    :func:`repro.obs.merge_metrics` for the merge semantics.
    """
    from ..obs import merge_metrics

    return merge_metrics(r.metrics for r in results if r.metrics)


@dataclass(frozen=True)
class SimTask:
    """One self-contained simulation point.

    ``params.seed`` drives the engine; ``traffic_seed`` rebuilds the
    traffic pattern inside the worker (stateful patterns must never be
    shared across points -- rebuilding from the integer seed is what
    makes execution order irrelevant).

    ``collect_metrics`` attaches a per-worker
    :class:`~repro.obs.hooks.MetricsObserver` and ships its export back
    inside ``SimResult.metrics``.  It deliberately does NOT enter the
    cache key -- observation cannot change the simulated numbers -- but
    collecting tasks skip the cache *read* so their metrics are always
    present (they still warm the cache for later bare runs).

    ``workload`` switches the task from a named per-packet pattern to
    an open-loop flow workload: a canonical
    :func:`repro.workloads.workload_spec` tuple rebuilt inside the
    worker with ``traffic_seed`` (the same rebuild-from-integers
    discipline as traffic patterns).  Workload tasks carry their FCT
    summary in ``SimResult.flow_stats`` -- a side channel the cache
    strips -- so, like metrics collectors, they skip the cache read
    but still warm it (the core result *is* keyed by the spec).
    """

    topo: FoldedClos | DirectNetwork
    traffic_name: str
    load: float
    params: SimulationParams
    traffic_seed: int
    removed_links: tuple[Link, ...] | None = None
    collect_metrics: bool = False
    workload: tuple | None = None


def _execute(task: SimTask) -> tuple[SimResult, float]:
    """Run one task; returns (result, wall seconds).  Top-level so it
    pickles into pool workers."""
    start = time.perf_counter()
    observer = None
    if task.collect_metrics:
        from ..obs import MetricsObserver

        observer = MetricsObserver()
    if task.workload is not None:
        from ..workloads import run_workload, workload_from_spec

        traffic = workload_from_spec(
            task.workload, task.topo.num_terminals, seed=task.traffic_seed
        )
        result = run_workload(
            task.topo, traffic, task.params, observer=observer
        )
    else:
        traffic = make_traffic(
            task.traffic_name, task.topo.num_terminals, rng=task.traffic_seed
        )
        result = simulate(
            task.topo, traffic, task.load, task.params, task.removed_links,
            observer=observer,
        )
    if observer is not None:
        result = dataclasses.replace(result, metrics=observer.export())
    return result, time.perf_counter() - start


def _apply(fn_args: tuple) -> object:
    """Generic pool trampoline for :meth:`Executor.map`."""
    fn, args = fn_args
    return fn(*args)


@dataclass
class ExecReport:
    """What one batch cost: size, cache traffic, time split."""

    points: int
    cache_hits: int
    computed: int
    wall_seconds: float
    sim_seconds: float
    workers: int

    def note(self) -> str:
        """One-line summary for ``Table.notes``."""
        return (
            f"exec: {self.points} points ({self.cache_hits} cached, "
            f"{self.computed} simulated) in {self.wall_seconds:.2f}s wall / "
            f"{self.sim_seconds:.2f}s sim, workers={self.workers}"
        )


class Executor:
    """Runs bags of independent tasks, serially or across processes.

    ``workers <= 1`` executes in-process (and is the reference
    behaviour the parallel path must reproduce exactly); ``workers > 1``
    uses a process pool.  ``cache`` short-circuits tasks whose key is
    already stored.
    """

    def __init__(
        self, workers: int = 1, cache: ResultCache | None = None
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache

    # ------------------------------------------------------------------
    # Simulation batches
    # ------------------------------------------------------------------
    def run_sim_tasks(
        self, tasks: Sequence[SimTask]
    ) -> tuple[list[SimResult], ExecReport]:
        """Execute ``tasks``; results come back in task order."""
        start = time.perf_counter()
        results: list[SimResult | None] = [None] * len(tasks)
        keys: list[str | None] = [None] * len(tasks)
        hits = 0
        if self.cache is not None:
            digests: dict[int, str] = {}
            for i, task in enumerate(tasks):
                # id() is only an intra-process memo key so each shared
                # topology object is serialized once per batch; the
                # content digest, never the id, enters the cache key.
                digest = digests.get(id(task.topo))  # repro: allow-RPR002 -- memo key only; digest is content-addressed
                if digest is None:
                    digest = topology_digest(task.topo)
                    digests[id(task.topo)] = digest  # repro: allow-RPR002 -- memo key only; digest is content-addressed
                keys[i] = cache_key(
                    digest,
                    task.traffic_name,
                    task.load,
                    task.params,
                    task.traffic_seed,
                    task.removed_links,
                    workload=task.workload,
                )
                if task.collect_metrics or task.workload is not None:
                    # Cached entries carry no metrics (and no
                    # flow_stats); recompute so the side channel is
                    # present (the put below still warms the cache for
                    # later bare runs).
                    continue
                cached = self.cache.get(keys[i])
                if cached is not None:
                    results[i] = cached
                    hits += 1
        pending = [i for i, r in enumerate(results) if r is None]
        sim_seconds = 0.0
        for index, (result, elapsed) in zip(
            pending, self._map(_execute, [tasks[i] for i in pending])
        ):
            results[index] = result
            sim_seconds += elapsed
            if self.cache is not None and keys[index] is not None:
                self.cache.put(keys[index], result)
        report = ExecReport(
            points=len(tasks),
            cache_hits=hits,
            computed=len(pending),
            wall_seconds=time.perf_counter() - start,
            sim_seconds=sim_seconds,
            workers=self.workers,
        )
        return [r for r in results if r is not None], report

    # ------------------------------------------------------------------
    # Generic ordered map (fault trials and other non-sim bags)
    # ------------------------------------------------------------------
    def map(self, fn: Callable, argtuples: Iterable[tuple]) -> list:
        """Ordered ``[fn(*args) for args in argtuples]``, possibly
        fanned out over the pool.  ``fn`` must be a top-level callable
        (picklable) when ``workers > 1``."""
        return self._map(_apply, [(fn, tuple(args)) for args in argtuples])

    def _map(self, fn: Callable, items: Sequence) -> list:
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(fn, items))
        except (OSError, PermissionError, ImportError, BrokenProcessPool):
            # Restricted environments (no semaphores, no fork): fall
            # back to serial -- identical results, just slower.
            return [fn(item) for item in items]
