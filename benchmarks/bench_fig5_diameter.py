"""Figure 5 benchmark: diameter-vs-size curves (analytic + one
empirical RFC instance at the size limit)."""

from repro.experiments.fig5_diameter import empirical_check, run


def test_fig5_table(benchmark):
    table = benchmark(lambda: run(quick=True, seed=0))
    print()
    print(table.render())
    assert table.column("terminals")


def test_fig5_empirical_instance(benchmark):
    message = benchmark.pedantic(
        lambda: empirical_check(radix=10, levels=2, seed=1),
        rounds=1,
        iterations=1,
    )
    assert "leaf diameter 2" in message
