"""Figure 10 benchmark: scenario 3 (maximum expansion) sweep."""

from repro.experiments.scenario_sim import run_scenario


def test_fig10_sweep(benchmark):
    table = benchmark.pedantic(
        lambda: run_scenario(
            "maximum-200k", quick=True, seed=0, loads=[0.4, 0.8]
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    assert len(table.rows) == 6
