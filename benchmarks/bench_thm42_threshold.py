"""Theorem 4.2 benchmark: routability checking and threshold sweep."""

from repro.core.ancestors import has_updown_routing_of
from repro.core.rfc import radix_regular_rfc
from repro.experiments.thm42_threshold import run


def test_updown_check_speed(benchmark):
    """The bitset double sweep on a 64-leaf RFC."""
    topo = radix_regular_rfc(24, 64, 2, rng=3)
    benchmark(lambda: has_updown_routing_of(topo))


def test_thm42_experiment(benchmark):
    """Full quick threshold-validation table (one round)."""
    table = benchmark.pedantic(
        lambda: run(quick=True, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
    assert len(table.rows) >= 4
