"""Benchmark: the FCT load sweep (flow workloads, RFC vs CFT)."""

from repro.experiments.fct_sweep import run


def test_fct_sweep_quick(benchmark):
    table = benchmark.pedantic(run, kwargs={"quick": True}, rounds=1,
                               iterations=1)
    assert table.rows, "fct sweep produced no rows"
    assert any(row[0] == "incast" for row in table.rows)
