"""Table 3 benchmark: link failures to disconnect matched networks."""

from repro.experiments.table3_disconnect import run


def test_table3(benchmark):
    table = benchmark.pedantic(
        lambda: run(quick=True, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
    for row in table.rows:
        by = dict(zip(table.headers, row))
        assert by["RFC %"] < by["CFT %"]
