"""Figure 6 benchmark: scalability table (closed forms)."""

from repro.experiments.fig6_scalability import run


def test_fig6_table(benchmark):
    table = benchmark(lambda: run(quick=True, seed=0))
    print()
    print(table.render())
    assert len(table.rows) >= 5
