"""Benchmark-suite configuration.

Each ``bench_*`` file regenerates one paper table/figure (quick
parameter set) under pytest-benchmark timing.  Heavy simulations run
as single-round pedantic benchmarks; analytic experiments use normal
auto-calibrated rounds.

Run with::

    pytest benchmarks/ --benchmark-only
"""

collect_ignore_glob: list[str] = []
