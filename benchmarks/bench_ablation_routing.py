"""Ablation benchmark: minimal vs any-valid up-path selection.

DESIGN.md calls out the up-path selection policy as a design choice:
the paper's up/down routing picks among *minimal* up-ports at random;
allowing any valid (possibly non-minimal) up-port trades path length
for spreading.  This ablation simulates both on the same RFC under
random-pairing traffic.
"""

from repro.core.rfc import rfc_with_updown
from repro.simulation.config import SimulationParams
from repro.simulation.engine import simulate
from repro.simulation.traffic import make_traffic

_PARAMS = SimulationParams(measure_cycles=800, warmup_cycles=250, seed=0)


def _saturation(topo, minimal: bool) -> float:
    traffic = make_traffic("random-pairing", topo.num_terminals, rng=5)
    params = _PARAMS.scaled(minimal_routing=minimal)
    return simulate(topo, traffic, 1.0, params).accepted_load


def test_minimal_routing(benchmark):
    topo, _ = rfc_with_updown(8, 32, 3, rng=4)
    accepted = benchmark.pedantic(
        lambda: _saturation(topo, True), rounds=2, iterations=1
    )
    print(f"\nminimal up/down saturation (pairing): {accepted:.3f}")
    assert accepted > 0.3


def test_nonminimal_routing(benchmark):
    topo, _ = rfc_with_updown(8, 32, 3, rng=4)
    accepted = benchmark.pedantic(
        lambda: _saturation(topo, False), rounds=2, iterations=1
    )
    print(f"\nany-valid up/down saturation (pairing): {accepted:.3f}")
    assert accepted > 0.2


def test_adaptive_up_selection(benchmark):
    """Congestion-aware output choice vs Table 2's random request."""
    topo, _ = rfc_with_updown(8, 32, 3, rng=4)

    def run():
        traffic = make_traffic("random-pairing", topo.num_terminals, rng=5)
        params = _PARAMS.scaled(up_selection="adaptive")
        return simulate(topo, traffic, 1.0, params).accepted_load

    accepted = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\nadaptive up-selection saturation (pairing): {accepted:.3f}")
    assert accepted > 0.3
