"""Benchmarks for the analysis battery and routing-table construction."""

from repro.analysis import analyze_network
from repro.core.rfc import radix_regular_rfc, rfc_with_updown
from repro.routing.updown import UpDownRouter


def test_network_report(benchmark):
    topo, _ = rfc_with_updown(8, 32, 3, rng=1)
    report = benchmark.pedantic(
        lambda: analyze_network(topo, rng=2, fault_trials=2),
        rounds=2,
        iterations=1,
    )
    print(f"\n{report.render()}")
    assert report.updown_routable


def test_router_table_build(benchmark):
    """Bitset reach-table construction on a mid-size RFC."""
    topo = radix_regular_rfc(12, 240, 3, rng=3)
    router = benchmark(lambda: UpDownRouter.for_topology(topo))
    assert router.num_levels == 3


def test_router_hop_decision(benchmark):
    topo, _ = rfc_with_updown(12, 120, 3, rng=4)
    router = UpDownRouter.for_topology(topo)

    def hops():
        total = 0
        for a in range(0, 120, 7):
            direction, cands = router.next_hops(0, a, 119)
            total += len(cands)
        return total

    assert benchmark(hops) >= 0
