"""Section 4.2 benchmark: bisection/expander table."""

from repro.experiments.sec42_bisection import run


def test_sec42_table(benchmark):
    table = benchmark.pedantic(
        lambda: run(quick=True, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
    assert len(table.rows) == 7
