"""Figure 7 benchmark: expandability curves + strong-expansion rewiring."""

from repro.core.expansion import expand_rfc
from repro.core.rfc import rfc_with_updown
from repro.experiments.fig7_expandability import run


def test_fig7_table(benchmark):
    table = benchmark.pedantic(
        lambda: run(quick=True, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
    assert len(table.rows) >= 8


def test_strong_expansion_step(benchmark):
    """One minimal RFC upgrade (the +R compute nodes operation)."""
    topo, _ = rfc_with_updown(12, 80, 3, rng=4)
    benchmark.pedantic(
        lambda: expand_rfc(topo, steps=1, rng=5), rounds=3, iterations=1
    )
