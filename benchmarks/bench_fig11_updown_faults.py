"""Figure 11 benchmark: up/down-preserving fault tolerance."""

from repro.core.rfc import rfc_with_updown
from repro.experiments.fig11_updown_faults import run
from repro.faults.updown_survival import updown_trial


def test_fig11_table(benchmark):
    table = benchmark.pedantic(
        lambda: run(quick=True, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
    rows = [dict(zip(table.headers, r)) for r in table.rows]
    assert any(r["topology"] == "OFT" and r["tolerated %"] == 0 for r in rows)


def test_updown_trial_kernel(benchmark):
    """One binary-searched failure order on a mid-size RFC."""
    topo, _ = rfc_with_updown(12, 120, 3, rng=6)
    benchmark.pedantic(
        lambda: updown_trial(topo, rng=7), rounds=3, iterations=1
    )
