"""Section 5 benchmark: scenario cost table (closed forms)."""

from repro.experiments.sec5_scenarios import run


def test_sec5_table(benchmark):
    table = benchmark(lambda: run(quick=True, seed=0))
    print()
    print(table.render())
    assert len(table.rows) == 7
