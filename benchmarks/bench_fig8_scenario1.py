"""Figure 8 benchmark: scenario 1 (equal resources) load sweep.

The full quick sweep runs once (pedantic); a single mid-load
simulation point is benchmarked separately as the kernel metric.
"""

from repro.experiments.scenario_sim import build_networks, run_scenario
from repro.simulation.config import SimulationParams
from repro.simulation.engine import simulate
from repro.simulation.traffic import make_traffic

_BENCH_PARAMS = SimulationParams(measure_cycles=600, warmup_cycles=200, seed=0)


def test_fig8_sweep(benchmark):
    table = benchmark.pedantic(
        lambda: run_scenario(
            "equal-resources-11k", quick=True, seed=0,
            loads=[0.3, 0.6, 0.9],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    assert len(table.rows) == 9


def test_fig8_single_point_kernel(benchmark):
    networks = build_networks("equal-resources-11k", quick=True, seed=0)

    def one_point():
        traffic = make_traffic(
            "uniform", networks.rfc.num_terminals, rng=7
        )
        return simulate(networks.rfc, traffic, 0.5, _BENCH_PARAMS)

    result = benchmark.pedantic(one_point, rounds=2, iterations=1)
    assert 0.3 < result.accepted_load < 0.7
