"""Figure 12 benchmark: saturation throughput under link faults."""

from repro.experiments.fig12_faulty_throughput import run


def test_fig12_table(benchmark):
    table = benchmark.pedantic(
        lambda: run(quick=True, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
    # Healthy networks must beat their own degraded versions.
    rows = [dict(zip(table.headers, r)) for r in table.rows]
    uniform = [r for r in rows if r["traffic"] == "uniform"]
    assert uniform[0]["CFT accepted"] > uniform[-1]["CFT accepted"]
    assert uniform[0]["RFC accepted"] > uniform[-1]["RFC accepted"]
