"""Theorem 9.1 benchmark: random (bi)regular graph generation time.

The paper claims each generator iteration runs in expected
O(N * Delta * ln Delta); these benchmarks time the generators across a
size/degree grid so the scaling constant can be read off the report.
"""

import pytest

from repro.topologies.random_graphs import (
    random_bipartite_graph,
    random_regular_graph,
)


@pytest.mark.parametrize("n,degree", [(200, 6), (800, 6), (800, 12)])
def test_random_regular_generation(benchmark, n, degree):
    result = benchmark(lambda: random_regular_graph(n, degree, rng=1))
    assert all(len(row) == degree for row in result)


@pytest.mark.parametrize("n,degree", [(200, 6), (800, 6), (800, 12)])
def test_random_bipartite_generation(benchmark, n, degree):
    adj1, adj2 = benchmark(
        lambda: random_bipartite_graph(n, degree, n, degree, rng=1)
    )
    assert all(len(row) == degree for row in adj1)


def test_rfc_generation_paper_scale_stage(benchmark):
    """One full inter-level stage at radix 36, N1=1,000 (the building
    block of a paper-scale RFC)."""
    adj1, _ = benchmark(
        lambda: random_bipartite_graph(1_000, 18, 1_000, 18, rng=2)
    )
    assert len(adj1) == 1_000
