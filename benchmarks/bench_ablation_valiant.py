"""Ablation benchmark: minimal up/down vs Valiant randomization.

Paper Section 3: dragonflies need Valiant routing (50% peak) for
adversarial traffic, while RFCs route it "with much more than 50%
performance, even without using any randomization mechanism".  This
ablation measures both policies on the same RFC under random-pairing.
"""

from repro.core.rfc import rfc_with_updown
from repro.simulation.config import SimulationParams
from repro.simulation.engine import simulate
from repro.simulation.traffic import make_traffic

_PARAMS = SimulationParams(measure_cycles=800, warmup_cycles=250, seed=0)


def _pairing_saturation(topo, valiant: bool) -> float:
    traffic = make_traffic("random-pairing", topo.num_terminals, rng=5)
    params = _PARAMS.scaled(valiant=valiant)
    return simulate(topo, traffic, 1.0, params).accepted_load


def test_minimal_updown(benchmark):
    topo, _ = rfc_with_updown(8, 32, 3, rng=4)
    accepted = benchmark.pedantic(
        lambda: _pairing_saturation(topo, False), rounds=2, iterations=1
    )
    print(f"\nminimal up/down pairing saturation: {accepted:.3f}")
    assert accepted > 0.5  # the paper's >50%-without-Valiant claim


def test_valiant_randomized(benchmark):
    topo, _ = rfc_with_updown(8, 32, 3, rng=4)
    accepted = benchmark.pedantic(
        lambda: _pairing_saturation(topo, True), rounds=2, iterations=1
    )
    print(f"\nValiant pairing saturation: {accepted:.3f}")
    assert accepted < 0.6  # pays the randomization tax


def test_jellyfish_direct_simulation(benchmark):
    """Bonus: the RRN under the same engine (ECMP minimal routing)."""
    from repro.topologies.rrn import random_regular_network

    net = random_regular_network(64, 5, 2, rng=1)

    def run():
        traffic = make_traffic("uniform", net.num_terminals, rng=2)
        return simulate(net, traffic, 1.0, _PARAMS)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\nRRN uniform saturation (minimal ECMP): "
          f"{result.accepted_load:.3f}")
    assert result.accepted_load > 0.3
