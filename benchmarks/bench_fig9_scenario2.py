"""Figure 9 benchmark: scenario 2 (intermediate expansion) sweep."""

from repro.experiments.scenario_sim import run_scenario


def test_fig9_sweep(benchmark):
    table = benchmark.pedantic(
        lambda: run_scenario(
            "intermediate-100k", quick=True, seed=0, loads=[0.4, 0.8]
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    assert len(table.rows) == 6
