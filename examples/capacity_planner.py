#!/usr/bin/env python3
"""Capacity planner: pick an RFC for a target server count.

The tool a datacenter architect would actually run: given a server
target and the switch radix on the price list, recommend an RFC —
levels, leaf count, threshold slack `x`, expected generation attempts,
cost versus the CFT alternative, growth headroom and an empirical
fault-tolerance estimate on a scaled instance.

Run: ``python examples/capacity_planner.py [servers] [radix]``
"""

import sys

from repro import rfc_max_leaves, threshold_radix, updown_probability, x_for_radix
from repro.cost import PriceModel, cft_cost, expandability_curve, rfc_cost
from repro.core.theory import cft_diameter, rfc_diameter


def plan(servers: int, radix: int) -> None:
    half = radix // 2
    print(f"target: {servers:,} servers on radix-{radix} switches\n")

    # Smallest level count whose threshold capacity fits the target.
    levels = 2
    while rfc_max_leaves(radix, levels) * half < servers:
        levels += 1
        if levels > 8:
            print("radix too small for this target at any sane depth")
            return
    n1 = 2 * -(-servers // (2 * half))  # even ceil
    cap = rfc_max_leaves(radix, levels)
    x = x_for_radix(radix, n1, levels)
    print(f"recommended RFC: {levels} levels, N1={n1} leaf switches "
          f"(cap {cap}), diameter {2 * (levels - 1)}")
    print(f"  threshold radix at this size: "
          f"{threshold_radix(n1, levels):.1f} (installed: {radix})")
    print(f"  threshold slack x = {x:+.2f} -> P(routable sample) = "
          f"{updown_probability(x):.3f}")
    if x < 1:
        print("  WARNING: little slack; expect generation retries and "
              "low fault budget -- consider one more level")

    rfc = rfc_cost(radix, n1, levels)
    cft_levels = 1
    from repro.topologies.fattree import cft_terminals

    while cft_terminals(radix, cft_levels) < servers:
        cft_levels += 1
    cft = cft_cost(radix, cft_levels)
    model = PriceModel(switch_base=4_000, per_port=120, per_cable=60,
                      per_nic=80)
    print(f"\ncost ({servers:,} servers):")
    print(f"  RFC : {rfc.switches:>7,} switches, {rfc.wires:>9,} cables, "
          f"~{model.deployment_price(rfc):>13,.0f}")
    print(f"  CFT : {cft.switches:>7,} switches ({cft_levels} levels), "
          f"{cft.wires:>9,} cables, ~{model.deployment_price(cft):>13,.0f}")
    saving = 1 - model.deployment_price(rfc) / model.deployment_price(cft)
    print(f"  RFC saves {saving:.1%}")
    print(f"  diameters: RFC {rfc_diameter(radix, servers)}, "
          f"CFT {cft_diameter(radix, servers)}")

    headroom = (cap - n1) // 2 * radix
    print(f"\ngrowth: strong expansion adds {radix} servers per step; "
          f"{headroom:,} more servers before a new level is needed")

    # Fault-tolerance estimate on a scaled instance (same x regime).
    from repro.core.rfc import rfc_with_updown
    from repro.faults import updown_fault_tolerance

    scale_n1 = min(n1, 120)
    topo, _ = rfc_with_updown(radix if radix <= 16 else 12,
                              scale_n1 if scale_n1 % 2 == 0 else scale_n1 + 1,
                              levels, rng=1)
    tolerance = updown_fault_tolerance(topo, trials=5, rng=2)
    print(f"\nfault budget (scaled instance {topo.name}): up/down routing "
          f"survives ~{tolerance.mean_percent:.1f}% random link failures")


def main() -> None:
    servers = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    radix = int(sys.argv[2]) if len(sys.argv) > 2 else 36
    plan(servers, radix)


if __name__ == "__main__":
    main()
