#!/usr/bin/env python3
"""Quickstart: generate an RFC, inspect it, route on it, simulate it.

Walks the core public API end to end in under a minute:

1. size an RFC with the Theorem 4.2 threshold machinery,
2. generate an up/down routable instance (retrying per the theorem),
3. route a few terminal pairs with the deadlock-free up/down ECMP,
4. run the cycle-level simulator under uniform traffic,
5. cross-check with the flow-level max-min model.

Run: ``python examples/quickstart.py``
"""

from repro import (
    UpDownRouter,
    rfc_max_leaves,
    rfc_with_updown,
    threshold_radix,
    updown_probability,
    x_for_radix,
)
from repro.simulation import (
    SimulationParams,
    flow_level_throughput,
    make_traffic,
    simulate,
)


def main() -> None:
    radix, levels = 12, 3

    # 1. Size the network: how many leaves can this radix support
    #    while keeping deadlock-free up/down routing (Theorem 4.2)?
    cap = rfc_max_leaves(radix, levels)
    print(f"radix {radix}, {levels} levels: up to {cap} leaf switches "
          f"({cap * radix // 2:,} compute nodes)")
    n1 = 120  # stay under the cap -- slack buys fault tolerance
    x = x_for_radix(radix, n1, levels)
    print(f"chosen N1={n1}: threshold radix "
          f"{threshold_radix(n1, levels):.1f}, offset x={x:+.2f}, "
          f"P(routable) ~ {updown_probability(x):.3f}")

    # 2. Generate (the constructor retries until routable).
    topo, attempts = rfc_with_updown(radix, n1, levels, rng=42)
    print(f"generated {topo.name} in {attempts} attempt(s): "
          f"{topo.num_terminals} terminals, {topo.num_switches} switches, "
          f"{topo.num_links} cables")

    # 3. Route some pairs.
    router = UpDownRouter.for_topology(topo)
    for a, b in ((0, n1 - 1), (3, 77), (5, 5)):
        path = router.path(a, b, rng=1)
        print(f"leaf {a} -> leaf {b}: {len(path) - 1} hops, "
              f"{router.ecmp_width(a, b)} equal-cost routes")

    # 4. Simulate uniform traffic at 60% load.
    params = SimulationParams(measure_cycles=2_000, warmup_cycles=500, seed=7)
    traffic = make_traffic("uniform", topo.num_terminals, rng=7)
    result = simulate(topo, traffic, 0.6, params)
    print(f"simulated load 0.60: accepted {result.accepted_load:.3f}, "
          f"mean latency {result.avg_latency:.1f} cycles, "
          f"mean switch hops {result.avg_hops:.2f}")

    # 5. Flow-level cross-check at saturation.
    sat = flow_level_throughput(topo, "uniform", flows_per_terminal=4, rng=7)
    print(f"flow-level max-min saturation estimate: {sat:.3f}")


if __name__ == "__main__":
    main()
