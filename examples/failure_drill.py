#!/usr/bin/env python3
"""Failure drill: how a live RFC degrades as cables are cut.

Reproduces the paper's Section 7 story on one network you can watch:

1. generate an equal-resources pair (CFT and RFC, same radix/size),
2. cut random cables in batches,
3. after each batch report (a) whether deadlock-free up/down routing
   still covers every leaf pair, (b) the fraction of leaf pairs still
   connected, and (c) simulated saturation throughput under uniform
   traffic.

The punchline matches Figure 12: the CFT's small initial edge
disappears under faults, and the RFC -- which can also be built with
cheaper switches -- degrades just as gracefully.

Run: ``python examples/failure_drill.py``
"""

from repro import commodity_fat_tree, rfc_with_updown
from repro.core.ancestors import has_updown_routing, updown_reachable_fraction
from repro.faults import shuffled_links
from repro.faults.updown_survival import pruned_stages
from repro.simulation import SimulationParams, Simulator, make_traffic

PARAMS = SimulationParams(measure_cycles=800, warmup_cycles=250, seed=3)


def drill(topo, batches) -> None:
    order = shuffled_links(topo, rng=17)
    total = len(order)
    print(f"\n=== {topo.name}: {total} cables ===")
    print(f"{'cut':>5} {'cut %':>7} {'updown':>7} {'pairs %':>8} "
          f"{'sat thpt':>9} {'dropped %':>10}")
    for cut in batches:
        removed = order[:cut]
        stages = pruned_stages(topo, set(removed))
        routable = has_updown_routing(topo.level_sizes, stages)
        pairs = updown_reachable_fraction(topo.level_sizes, stages)
        traffic = make_traffic("uniform", topo.num_terminals, rng=5)
        sim = Simulator(topo, traffic, 1.0, PARAMS, removed_links=removed)
        result = sim.run()
        dropped = sim.unroutable_packets / max(1, result.generated_packets)
        print(f"{cut:>5} {cut / total:>6.1%} "
              f"{'yes' if routable else 'NO':>7} {pairs:>7.1%} "
              f"{result.accepted_load:>9.3f} {dropped:>9.1%}")


def main() -> None:
    cft = commodity_fat_tree(8, 3)
    rfc, _ = rfc_with_updown(8, cft.num_leaves, 3, rng=2)
    batches = [0, 8, 16, 32, 48, 64]
    drill(cft, batches)
    drill(rfc, batches)
    print(
        "\nReading: 'updown' = deadlock-free routing still covers every "
        "leaf pair; once NO, packets for uncovered pairs are dropped "
        "('dropped %'), which is the paper's network-blocked condition "
        "under uniform traffic."
    )


if __name__ == "__main__":
    main()
