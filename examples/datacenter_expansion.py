#!/usr/bin/env python3
"""Growing a datacenter: RFC strong expansion vs CFT forklift upgrades.

The scenario the paper's Section 5 motivates: a datacenter starts
small and adds racks over time.  With a commodity fat-tree, growth
beyond the current level's capacity forces a *weak* expansion -- a
whole new switch level (here we track the port bill).  An RFC grows in
*strong* steps of ``R`` compute nodes: two switches per level, one
root, a few dozen cables re-plugged, no new level until the
Theorem 4.2 limit.

The script starts from a radix-12 RFC, applies strong expansions while
tracking rewiring cost and routability, and prints the CFT's step
function alongside.

Run: ``python examples/datacenter_expansion.py``
"""

from repro import (
    expand_rfc,
    has_updown_routing_of,
    rfc_with_updown,
    strong_expansion_limit,
    weak_expand_rfc,
)
from repro.cost import expandability_curve


def main() -> None:
    radix, levels = 12, 3
    limit = strong_expansion_limit(radix, levels)
    print(f"radix {radix}, {levels} levels: strong expansion works up "
          f"to {limit} leaves ({limit * radix // 2:,} compute nodes)\n")

    topo, _ = rfc_with_updown(radix, 60, levels, rng=1)
    print(f"day 0:  {topo.num_terminals:5d} nodes, "
          f"{topo.num_switches} switches, {topo.num_links} cables")

    total_rewired = 0
    for month, steps in enumerate((5, 10, 20), start=1):
        before_links = topo.num_links
        topo, report = expand_rfc(topo, steps=steps, rng=month)
        total_rewired += report.links_removed
        routable = has_updown_routing_of(topo)
        print(
            f"month {month}: +{report.terminals_added:4d} nodes -> "
            f"{topo.num_terminals:5d} total; re-plugged "
            f"{report.links_removed} of {before_links} cables "
            f"({report.rewired_fraction(before_links):.1%}); "
            f"up/down routing {'OK' if routable else 'LOST'}"
        )

    print(f"\ncumulative cables re-plugged: {total_rewired} "
          f"(network now has {topo.num_links})")

    # When the strong-expansion budget runs out, add a level.
    print("\napproaching the Theorem 4.2 limit -> weak expansion:")
    taller, report = weak_expand_rfc(topo, rng=99)
    print(f"added a level: {taller.num_levels} levels now, "
          f"{report.switches_added} new switches, headroom up to "
          f"{strong_expansion_limit(radix, taller.num_levels)} leaves")

    # The CFT alternative: a step function of forklift upgrades.
    print("\nCFT vs RFC port bill at each size (radix 36, paper scale):")
    sizes = [5_000, 11_664, 20_000, 100_008, 202_572]
    cft = expandability_curve("cft", 36, sizes)
    rfc = expandability_curve("rfc", 36, sizes)
    print(f"{'nodes':>10} {'CFT ports':>12} {'RFC ports':>12} {'saving':>8}")
    for size, c, r in zip(sizes, cft, rfc):
        print(f"{size:>10,} {c.ports:>12,} {r.ports:>12,} "
              f"{1 - r.ports / c.ports:>7.1%}")


if __name__ == "__main__":
    main()
