#!/usr/bin/env python3
"""Topology shoot-out: CFT vs RFC vs OFT vs RRN at matched size.

Builds one instance of each family at roughly the same compute-node
count (the paper's Table 3 sizing: smallest radix reaching the target
at diameter 4) and compares them on every axis the paper uses:

* radix, switches, cables, ports (cost),
* leaf-to-leaf diameter and mean distance,
* normalized bisection (analytic bound + local-search estimate),
* random-failure disconnection fraction,
* flow-level saturation under the three traffics.

Run: ``python examples/topology_shootout.py``  (~1 minute)
"""

from repro.experiments.table3_disconnect import (
    cft_for_terminals,
    oft_for_terminals,
    rfc_for_terminals,
    rrn_for_terminals,
)
from repro.faults import disconnection_fraction
from repro.graphs.bisection import estimate_bisection_width
from repro.graphs.metrics import average_distance, leaf_diameter
from repro.simulation import flow_level_throughput

TARGET = 500


def leaf_ids(net):
    if hasattr(net, "num_leaves"):
        return [net.switch_id(0, i) for i in range(net.num_leaves)]
    return list(range(net.num_switches))


def main() -> None:
    networks = {
        "CFT": cft_for_terminals(TARGET),
        "RRN": rrn_for_terminals(TARGET, rng=1),
        "RFC": rfc_for_terminals(TARGET, rng=1),
        "OFT": oft_for_terminals(TARGET),
    }
    print(f"target: ~{TARGET} compute nodes, diameter 4\n")
    header = (
        f"{'':5} {'T':>5} {'radix':>5} {'switch':>6} {'cables':>6} "
        f"{'diam':>4} {'avgdist':>7} {'bisect':>6} {'disc %':>6} "
        f"{'uni':>5} {'pair':>5} {'hot':>5}"
    )
    print(header)
    for name, net in networks.items():
        adj = net.adjacency()
        diam = leaf_diameter(adj, leaf_ids(net))
        avg = average_distance(adj)
        bis = estimate_bisection_width(adj, restarts=4, rng=2)
        disc = disconnection_fraction(net, trials=10, rng=3).mean_percent
        if hasattr(net, "num_leaves"):  # folded Clos families
            uni = flow_level_throughput(net, "uniform", 4, rng=4)
            pair = flow_level_throughput(net, "random-pairing", rng=4)
            hot = flow_level_throughput(net, "fixed-random", rng=4)
            thpt = f"{uni:>5.2f} {pair:>5.2f} {hot:>5.2f}"
        else:  # direct network: up/down model does not apply
            thpt = f"{'-':>5} {'-':>5} {'-':>5}"
        print(
            f"{name:5} {net.num_terminals:>5} {net.radix:>5} "
            f"{net.num_switches:>6} {net.num_links:>6} {diam:>4} "
            f"{avg:>7.2f} {bis:>6} {disc:>6.1f} {thpt}"
        )
    print(
        "\nReading: the RFC reaches the size with a smaller radix than "
        "the CFT (cost), beats the OFT on fault tolerance, and keeps "
        "most of the CFT's throughput; the OFT is cheapest per node but "
        "fragile (paper Sections 5-7)."
    )


if __name__ == "__main__":
    main()
