#!/usr/bin/env python3
"""RFC vs Jellyfish (RRN): why the paper keeps the Clos structure.

The paper argues the Jellyfish's raw efficiency comes with operational
costs an RFC avoids: cyclic routes need deadlock machinery (here,
distance-class virtual channels), minimal paths underuse the network
(Jellyfish needs k-shortest-path routing, recomputed on every change),
and there is exactly one expansion point where the host/network port
split is right.  This example makes those trade-offs concrete:

1. build an RFC and an RRN with the same switch count and radix budget,
2. compare path diversity (ECMP width vs k-shortest availability),
3. simulate both under the same engine and traffics,
4. expand both and report the rewiring + recomputation bill.

Run: ``python examples/jellyfish_comparison.py``  (~1 minute)
"""

import random
import statistics

from repro import expand_rrn, rfc_with_updown
from repro.core.expansion import expand_rfc
from repro.routing import k_shortest_paths, path_diversity_census
from repro.simulation import SimulationParams, make_traffic, simulate
from repro.topologies.rrn import random_regular_network

PARAMS = SimulationParams(measure_cycles=1_000, warmup_cycles=300, seed=5)


def main() -> None:
    # Equal budget: 128 terminals, radix-8 switches.
    rfc, _ = rfc_with_updown(8, 32, 3, rng=1)       # 80 switches
    rrn = random_regular_network(64, 6, 2, rng=1)   # 64 switches, radix 8
    print(f"RFC: {rfc.num_switches} switches, {rfc.num_links} links, "
          f"T={rfc.num_terminals}")
    print(f"RRN: {rrn.num_switches} switches, {rrn.num_links} links, "
          f"T={rrn.num_terminals}")

    # Path diversity.
    census = path_diversity_census(rfc, sample_pairs=200, rng=2)
    print(f"\nRFC minimal up/down routes -- {census.describe()}")
    rng = random.Random(3)
    adj = rrn.adjacency()
    ks = [
        len(k_shortest_paths(adj, rng.randrange(64), rng.randrange(64), 8))
        for _ in range(50)
    ]
    print(f"RRN k-shortest (k=8) available paths: mean "
          f"{statistics.fmean(ks):.1f} -- needs Yen recomputation on "
          "every expansion or fault")

    # Same engine, same traffics.
    print(f"\n{'traffic':15} {'RFC sat':>8} {'RRN sat':>8}")
    for name in ("uniform", "random-pairing", "fixed-random"):
        tr = make_traffic(name, rfc.num_terminals, rng=7)
        a = simulate(rfc, tr, 1.0, PARAMS).accepted_load
        tr = make_traffic(name, rrn.num_terminals, rng=7)
        b = simulate(rrn, tr, 1.0, PARAMS).accepted_load
        print(f"{name:15} {a:>8.3f} {b:>8.3f}")
    print("(RRN runs minimal ECMP + distance-class VCs; the deadlock "
          "machinery and routing recomputation are the costs the paper "
          "highlights)")

    # Expansion bill.
    _, rfc_report = expand_rfc(rfc, steps=2, rng=9)
    _, rrn_report = expand_rrn(rrn, new_switches=5, rng=9)
    print(f"\nexpansion: RFC +{rfc_report.terminals_added} nodes rewired "
          f"{rfc_report.links_removed} links; RRN "
          f"+{rrn_report.terminals_added} nodes rewired "
          f"{rrn_report.links_removed} links -- similar cable work, but "
          "the RRN must also rebuild its k-shortest-path tables while "
          "the RFC's up/down tables follow from the wiring")


if __name__ == "__main__":
    main()
