#!/usr/bin/env python3
"""Collect full-scale experiment outputs for EXPERIMENTS.md.

Runs every experiment at its full parameter set (with trimmed load
grids for the cycle-level sweeps, which dominate runtime on one core)
and writes each table to ``results/full/<id>.txt`` as it completes.
"""

import sys
import time
from pathlib import Path

from repro.experiments import run_experiment
from repro.experiments.scenario_sim import run_scenario

OUT = Path(__file__).resolve().parent.parent / "results" / "full"
OUT.mkdir(parents=True, exist_ok=True)


def record(name: str, table) -> None:
    (OUT / f"{name}.txt").write_text(table.render() + "\n")
    (OUT / f"{name}.csv").write_text(table.to_csv())
    print(f"[done] {name}", flush=True)


def main() -> None:
    start = time.time()

    for name in ("sec5", "fig5", "fig6", "fig7", "sec42", "thm91",
                 "thm42", "tab3", "fig11"):
        t0 = time.time()
        try:
            record(name, run_experiment(name, quick=False, seed=0))
        except Exception as exc:  # keep collecting
            print(f"[fail] {name}: {exc}", flush=True)
        print(f"       {name}: {time.time() - t0:.0f}s", flush=True)

    # Cycle-level sweeps: full (radix 12) networks, trimmed load grid.
    sweeps = [
        ("fig8", "equal-resources-11k", [0.3, 0.6, 0.9, 1.0]),
        ("fig9", "intermediate-100k", [0.6, 1.0]),
        ("fig10", "maximum-200k", [0.6, 1.0]),
    ]
    for name, scenario_name, loads in sweeps:
        t0 = time.time()
        try:
            table = run_scenario(scenario_name, quick=False, seed=0,
                                 loads=loads)
            table.title = f"{name}: {table.title}"
            record(name, table)
        except Exception as exc:
            print(f"[fail] {name}: {exc}", flush=True)
        print(f"       {name}: {time.time() - t0:.0f}s", flush=True)

    t0 = time.time()
    try:
        record("fig12", run_experiment("fig12", quick=False, seed=0))
    except Exception as exc:
        print(f"[fail] fig12: {exc}", flush=True)
    print(f"       fig12: {time.time() - t0:.0f}s", flush=True)

    print(f"all done in {time.time() - start:.0f}s", flush=True)


if __name__ == "__main__":
    sys.exit(main())
