#!/usr/bin/env python3
"""Minimal full-scale sim collection: saturation points only.

Figures 9/10: one saturation point (offered load 1.0) per traffic on
the radix-12 scaled networks.  Figure 12: four fault fractions, two
traffics.  Chosen to fit a single-core time budget while still pinning
the comparisons EXPERIMENTS.md quotes.
"""

import time
from pathlib import Path

from repro.experiments.common import Table
from repro.experiments.scenario_sim import build_networks
from repro.faults.removal import shuffled_links
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator, simulate
from repro.simulation.traffic import make_traffic

OUT = Path(__file__).resolve().parent.parent / "results" / "full"
OUT.mkdir(parents=True, exist_ok=True)
PARAMS = SimulationParams(measure_cycles=800, warmup_cycles=250, seed=0)


def record(name: str, table) -> None:
    (OUT / f"{name}.txt").write_text(table.render() + "\n")
    (OUT / f"{name}.csv").write_text(table.to_csv())
    print(f"[done] {name}", flush=True)


def saturation_table(name: str, scenario_name: str) -> None:
    t0 = time.time()
    networks = build_networks(scenario_name, quick=False, seed=0)
    table = Table(
        title=f"{name}: scenario {scenario_name} saturation "
        "(offered load 1.0, radix-12 scale-down)",
        headers=["traffic", "CFT accepted", "CFT latency",
                 "RFC accepted", "RFC latency"],
    )
    table.note(
        ", ".join(
            f"{label}: T={net.num_terminals} ({net.name})"
            for label, net in networks.all()
        )
    )
    for traffic_name in ("uniform", "random-pairing", "fixed-random"):
        row = [traffic_name]
        for label, net in networks.all():
            if label == "RFC-alt":
                continue
            traffic = make_traffic(traffic_name, net.num_terminals, rng=101)
            result = simulate(net, traffic, 1.0, PARAMS)
            row.extend([result.accepted_load, result.avg_latency])
            print(f"  {name} {traffic_name} {label} done", flush=True)
        table.add(*row)
    record(name, table)
    print(f"       {name}: {time.time() - t0:.0f}s", flush=True)


def fig12() -> None:
    t0 = time.time()
    networks = build_networks("equal-resources-11k", quick=False, seed=0)
    nets = {label: net for label, net in networks.all() if label != "RFC-alt"}
    total = min(net.num_links for net in nets.values())
    table = Table(
        title="Figure 12: saturation throughput under link faults "
        "(scenario 1, radix 12)",
        headers=["traffic", "faults", "fault %",
                 "CFT accepted", "CFT unroutable",
                 "RFC accepted", "RFC unroutable"],
    )
    orders = {label: shuffled_links(net, rng=13) for label, net in nets.items()}
    for traffic_name in ("uniform", "random-pairing"):
        for fraction in (0.0, 0.05, 0.125, 0.25):
            count = round(fraction * total)
            row = [traffic_name, count, 100.0 * fraction]
            for label in ("CFT", "RFC"):
                net = nets[label]
                traffic = make_traffic(traffic_name, net.num_terminals,
                                       rng=101)
                sim = Simulator(net, traffic, 1.0, PARAMS,
                                removed_links=orders[label][:count])
                result = sim.run()
                lost = sim.unroutable_packets / max(
                    1, result.generated_packets
                )
                row.extend([result.accepted_load, lost])
            table.add(*row)
            print(f"  fig12 {traffic_name} {fraction:.0%} done", flush=True)
    table.note(f"total links -- CFT/RFC: {total} each")
    record("fig12", table)
    print(f"       fig12: {time.time() - t0:.0f}s", flush=True)


def main() -> None:
    start = time.time()
    saturation_table("fig9", "intermediate-100k")
    saturation_table("fig10", "maximum-200k")
    fig12()
    print(f"all done in {time.time() - start:.0f}s", flush=True)


if __name__ == "__main__":
    main()
