#!/usr/bin/env python3
"""Collect the remaining simulation sweeps (trimmed for one core).

Figures 9/10 run the full radix-12 scaled networks at two loads with a
shorter (but still warmed) measurement window; Figure 12 runs the
scenario-1 networks over five fault fractions and all three traffics.
"""

import time
from pathlib import Path

from repro.experiments.scenario_sim import build_networks, run_scenario
from repro.faults.removal import shuffled_links
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import TRAFFIC_NAMES, make_traffic
from repro.experiments.common import Table

OUT = Path(__file__).resolve().parent.parent / "results" / "full"
OUT.mkdir(parents=True, exist_ok=True)


def record(name: str, table) -> None:
    (OUT / f"{name}.txt").write_text(table.render() + "\n")
    (OUT / f"{name}.csv").write_text(table.to_csv())
    print(f"[done] {name}", flush=True)


def scenario_sweep(name: str, scenario_name: str) -> None:
    t0 = time.time()
    params = SimulationParams(measure_cycles=1_000, warmup_cycles=300, seed=0)
    table = run_scenario(
        scenario_name, quick=False, seed=0, loads=[0.6, 1.0], params=params,
        flow_check=False,
    )
    table.title = f"{name}: {table.title}"
    record(name, table)
    print(f"       {name}: {time.time() - t0:.0f}s", flush=True)


def fig12() -> None:
    t0 = time.time()
    networks = build_networks("equal-resources-11k", quick=False, seed=0)
    params = SimulationParams(measure_cycles=1_000, warmup_cycles=300, seed=0)
    table = Table(
        title="Figure 12: saturation throughput under link faults "
        "(scenario 1, radix 12)",
        headers=[
            "traffic", "faults", "fault %",
            "CFT accepted", "CFT unroutable",
            "RFC accepted", "RFC unroutable",
        ],
    )
    nets = {label: net for label, net in networks.all() if label != "RFC-alt"}
    total = min(net.num_links for net in nets.values())
    fractions = (0.0, 0.05, 0.1, 0.15, 0.25)
    orders = {label: shuffled_links(net, rng=13) for label, net in nets.items()}
    for traffic_name in TRAFFIC_NAMES:
        for fraction in fractions:
            count = round(fraction * total)
            row = [traffic_name, count, 100.0 * fraction]
            for label in ("CFT", "RFC"):
                net = nets[label]
                traffic = make_traffic(traffic_name, net.num_terminals,
                                       rng=101)
                sim = Simulator(net, traffic, 1.0, params,
                                removed_links=orders[label][:count])
                result = sim.run()
                lost = sim.unroutable_packets / max(1, result.generated_packets)
                row.extend([result.accepted_load, lost])
            table.add(*row)
            print(f"  fig12 {traffic_name} {fraction:.0%} done", flush=True)
    table.note(f"total links -- CFT/RFC: {total} each")
    record("fig12", table)
    print(f"       fig12: {time.time() - t0:.0f}s", flush=True)


def main() -> None:
    start = time.time()
    scenario_sweep("fig9", "intermediate-100k")
    scenario_sweep("fig10", "maximum-200k")
    fig12()
    print(f"all done in {time.time() - start:.0f}s", flush=True)


if __name__ == "__main__":
    main()
