#!/usr/bin/env python3
"""End-to-end smoke of the parallel executor + result cache.

Runs the Figure 8 quick sweep twice through one executor (2 workers,
fresh temp cache):

* run 1 (cold): every point simulated, fanned across the pool;
* run 2 (warm): every point replayed from the cache, zero simulations;
* both tables must be identical.

Exit code 0 on success.  Usage::

    PYTHONPATH=src python scripts/smoke_parallel.py [--workers N]
"""

import argparse
import sys
import tempfile
import time

from repro.exec import build_executor
from repro.experiments.fig8_scenario1 import run


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        ex = build_executor(workers=args.workers, cache_dir=cache_dir)

        start = time.perf_counter()
        cold = run(quick=True, seed=0, executor=ex)
        cold_seconds = time.perf_counter() - start
        cold_hits, cold_misses = ex.cache.hits, ex.cache.misses

        start = time.perf_counter()
        warm = run(quick=True, seed=0, executor=ex)
        warm_seconds = time.perf_counter() - start
        warm_hits = ex.cache.hits - cold_hits

        points = len(warm.rows)
        print(f"cold run: {cold_seconds:6.2f}s  "
              f"({cold_misses} simulated, {cold_hits} cached)")
        print(f"warm run: {warm_seconds:6.2f}s  ({warm_hits} cached)")

        failures = []
        if cold.rows != warm.rows:
            failures.append("warm rows differ from cold rows")
        if cold_hits != 0:
            failures.append("cold run unexpectedly hit the cache")
        if warm_hits < points:
            failures.append(
                f"warm run only hit {warm_hits} of >= {points} points"
            )
        if warm_seconds >= cold_seconds:
            failures.append("warm run was not faster than cold run")
        for failure in failures:
            print(f"FAIL: {failure}")
        if not failures:
            print(f"OK: {args.workers}-worker sweep reproduced from cache, "
                  f"{cold_seconds / max(warm_seconds, 1e-9):.1f}x faster warm")
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
