#!/usr/bin/env python3
"""Time a full-repository ``repro.lint`` analysis against a budget.

The analyzer gates every CI run and every pre-commit, so its own
latency is a product property: a cold whole-program pass over
``src/`` must stay under the budget (default 10 s), and a warm
cached pass must be faster than the cold one it reuses.

    python scripts/bench_lint.py [--budget-seconds 10] [--repeats 3]

Exits non-zero when the best cold run exceeds the budget.
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.lint.cache import AnalysisCache  # noqa: E402
from repro.lint.runner import run_analysis  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-seconds", type=float, default=10.0)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    target = REPO / "src"
    cold_times = []
    report = None
    for _ in range(max(1, args.repeats)):
        start = time.perf_counter()
        report = run_analysis([target])
        cold_times.append(time.perf_counter() - start)
    best_cold = min(cold_times)

    with tempfile.TemporaryDirectory() as cache_dir:
        run_analysis([target], cache=AnalysisCache(Path(cache_dir)))
        start = time.perf_counter()
        warm_report = run_analysis([target], cache=AnalysisCache(Path(cache_dir)))
        warm = time.perf_counter() - start

    assert report is not None
    print(
        f"cold: best {best_cold:.3f}s over {len(cold_times)} runs "
        f"({report.files} files, {len(report.findings)} findings)"
    )
    print(
        f"warm: {warm:.3f}s "
        f"({warm_report.reused} reused, {warm_report.analyzed} analyzed)"
    )

    failed = False
    if best_cold > args.budget_seconds:
        print(
            f"FAIL: cold analysis {best_cold:.3f}s exceeds "
            f"{args.budget_seconds:.1f}s budget",
            file=sys.stderr,
        )
        failed = True
    if warm_report.analyzed != 0:
        print(
            f"FAIL: warm run re-analyzed {warm_report.analyzed} files; "
            "the incremental cache is not being reused",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
