#!/usr/bin/env python3
"""Performance regression harness -> BENCH_engine.json + BENCH_graphs.json.

Two benchmark families, both built on the repo's bit-for-bit
two-engine contract (the accelerated path must reproduce the reference
exactly; the script fails on any signature drift):

* **engine** -- the cycle-level simulator's reference engine against
  the precomputed-route fast path, the vectorized SoA engine and the
  relaxed counter-RNG engine (statistically equivalent, not
  bit-for-bit; gated by ``--min-relaxed-speedup``), plus the
  observability overhead of the metrics / metrics+trace observers
  (``BENCH_engine.json``);
* **graphs** -- the pure-Python graph-analysis layer against the numpy
  kernels of :mod:`repro.accel` on a large RFC: all-sources batched
  BFS (diameter / average distance) and the packed-bitset ancestor
  sweeps driving the fault-threshold binary search
  (``BENCH_graphs.json``).

    PYTHONPATH=src python scripts/bench_regression.py [--out PATH]
        [--graphs-out PATH] [--repeats N] [--quick]
        [--min-vectorized-speedup X]

The workload numbers are deterministic (fixed seeds); the timings are
hardware-dependent, so compare ratios on one machine, not absolute
values across machines.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.rfc import rfc_with_updown  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsObserver,
    MultiObserver,
    TraceWriter,
    TracingObserver,
)
from repro.simulation.config import SimulationParams  # noqa: E402
from repro.simulation.engine import Simulator  # noqa: E402
from repro.simulation.traffic import make_traffic  # noqa: E402


def _run_once(topo, params, load: float, observer=None):
    traffic = make_traffic("uniform", topo.num_terminals, rng=params.seed + 7_919)
    sim = Simulator(topo, traffic, load, params, observer=observer)
    start = time.perf_counter()
    result = sim.run()
    return result, time.perf_counter() - start


def bench(repeats: int, quick: bool) -> dict:
    topo, _ = rfc_with_updown(8, 32, 3, rng=11)
    params = SimulationParams(
        measure_cycles=1_000 if quick else 4_000,
        warmup_cycles=250 if quick else 1_000,
        seed=5,
    )
    load = 0.7

    # Reference vs fast path vs vectorized vs relaxed, bare runs.
    # Identical signatures are a hard requirement for the exact
    # engines -- their contract is bit-for-bit.  The relaxed engine
    # draws from a different (counter-based) RNG, so it is held to
    # repeat determinism plus a throughput-plausibility band instead.
    engines: dict[str, dict] = {}
    for engine in ("reference", "fast", "vectorized", "relaxed"):
        if engine == "relaxed":
            eng_params = params.scaled(rng_mode="relaxed")
        else:
            eng_params = params.scaled(engine=engine)
        elapsed = 0.0
        checksum = None
        for _ in range(repeats):
            result, wall = _run_once(topo, eng_params, load)
            elapsed += wall
            sig = (result.accepted_load, result.avg_latency,
                   result.delivered_packets)
            if checksum is None:
                checksum = sig
            elif checksum != sig:
                raise AssertionError(
                    f"non-deterministic repeat in {engine} engine"
                )
        cycles = params.horizon * repeats
        engines[engine] = {
            "signature": list(checksum),
            "wall_seconds": round(elapsed, 4),
            "cycles_per_sec": round(cycles / elapsed, 1),
        }
    for engine in ("fast", "vectorized"):
        if engines[engine]["signature"] != engines["reference"]["signature"]:
            raise AssertionError(
                f"{engine} engine drifted from the reference engine: "
                f"{engines['reference']['signature']} != "
                f"{engines[engine]['signature']}"
            )
    for engine in ("fast", "vectorized", "relaxed"):
        engines[engine]["speedup_vs_reference"] = round(
            engines[engine]["cycles_per_sec"]
            / engines["reference"]["cycles_per_sec"],
            2,
        )
    # Plausibility band for the statistically-validated engine: a
    # relaxed accepted load more than 10% off the reference means a
    # broken engine, not RNG noise (the equivalence suite holds the
    # same workload shape to 2%).
    ref_accepted = engines["reference"]["signature"][0]
    rel_accepted = engines["relaxed"]["signature"][0]
    if abs(rel_accepted - ref_accepted) > 0.10 * ref_accepted:
        raise AssertionError(
            f"relaxed accepted load {rel_accepted} implausibly far "
            f"from reference {ref_accepted}"
        )
    # Back-compat alias used by older tooling: the fast path's ratio.
    engines["speedup"] = engines["fast"]["speedup_vs_reference"]

    # Flow-workload throughput: the incast scenario (the FCT layer's
    # discriminating workload) per engine, reported as completed flows
    # per wall second.  The exact engines must agree bit-for-bit on
    # the full flow_complete record stream, not just the summary.
    from repro.obs.trace import TraceWriter
    from repro.workloads import make_workload, run_workload

    wl_params = SimulationParams(
        measure_cycles=1_500 if quick else 4_000, warmup_cycles=0, seed=5
    )
    wl_duration = wl_params.horizon // 2
    workloads: dict[str, dict] = {}
    exact_stream = None
    for engine in ("reference", "fast", "vectorized", "relaxed"):
        if engine == "relaxed":
            eng_params = wl_params.scaled(rng_mode="relaxed")
        else:
            eng_params = wl_params.scaled(engine=engine)
        elapsed = 0.0
        flows_done = 0
        checksum = None
        stream = None
        for _ in range(repeats):
            workload = make_workload(
                "incast", topo.num_terminals, seed=9, fanin=8,
                rpc_size=4, events=4, duration=wl_duration,
            )
            writer = TraceWriter(None)
            start = time.perf_counter()
            result = run_workload(
                topo, workload, eng_params, trace_writer=writer
            )
            elapsed += time.perf_counter() - start
            fs = result.flow_stats
            flows_done += fs["flows_completed"]
            sig = (fs["flows_completed"], fs["fct_mean"], fs["fct_p99"])
            if checksum is None:
                checksum = sig
                stream = writer.records()
            elif checksum != sig:
                raise AssertionError(
                    f"non-deterministic workload repeat in {engine}"
                )
        if engine != "relaxed":
            if exact_stream is None:
                exact_stream = stream
            elif stream != exact_stream:
                raise AssertionError(
                    f"{engine} flow_complete stream drifted from the "
                    "reference engine"
                )
        workloads[engine] = {
            "signature": list(checksum),
            "wall_seconds": round(elapsed, 4),
            "flows_per_sec": round(flows_done / elapsed, 1),
        }
    for engine in ("fast", "vectorized", "relaxed"):
        workloads[engine]["speedup_vs_reference"] = round(
            workloads[engine]["flows_per_sec"]
            / workloads["reference"]["flows_per_sec"],
            2,
        )

    # Observability overhead, measured on the (default) fast path.
    modes: dict[str, dict] = {}

    for mode in ("bare", "metrics", "metrics+trace"):
        elapsed = 0.0
        delivered = 0
        checksum = None
        for rep in range(repeats):
            observer = None
            writer = None
            if mode == "metrics":
                observer = MetricsObserver()
            elif mode == "metrics+trace":
                tmp = tempfile.NamedTemporaryFile(
                    suffix=".jsonl", delete=False
                )
                tmp.close()
                writer = TraceWriter(tmp.name)
                observer = MultiObserver(
                    [MetricsObserver(), TracingObserver(writer)]
                )
            result, wall = _run_once(topo, params, load, observer)
            if writer is not None:
                writer.close()
                Path(writer.path).unlink(missing_ok=True)
            elapsed += wall
            delivered += result.delivered_packets
            # All modes must agree bit-for-bit; a mismatch means the
            # observer perturbed the engine.
            sig = (result.accepted_load, result.avg_latency,
                   result.delivered_packets)
            if checksum is None:
                checksum = sig
            elif checksum != sig:
                raise AssertionError(f"non-deterministic repeat in {mode}")
            modes.setdefault(mode, {})["signature"] = list(checksum)
        cycles = params.horizon * repeats
        modes[mode].update(
            {
                "wall_seconds": round(elapsed, 4),
                "cycles_per_sec": round(cycles / elapsed, 1),
                "delivered_packets_per_sec": round(delivered / elapsed, 1),
            }
        )

    bare = modes["bare"]["cycles_per_sec"]
    for mode in ("metrics", "metrics+trace"):
        modes[mode]["overhead_pct"] = round(
            100.0 * (bare - modes[mode]["cycles_per_sec"]) / bare, 2
        )

    signatures = {m: modes[m].pop("signature") for m in modes}
    if len({tuple(s) for s in signatures.values()}) != 1:
        raise AssertionError(
            f"observer modes disagree on results: {signatures}"
        )

    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "benchmark": "engine",
        "config": {
            "topology": topo.name,
            "terminals": topo.num_terminals,
            "load": load,
            "horizon": params.horizon,
            "repeats": repeats,
            "seed": params.seed,
        },
        "result_signature": signatures["bare"],
        "engines": engines,
        "workloads": {
            "scenario": {
                "workload": "incast",
                "fanin": 8,
                "rpc_size": 4,
                "events": 4,
                "duration": wl_duration,
                "horizon": wl_params.horizon,
                "seed": 9,
            },
            "engines": workloads,
        },
        "modes": modes,
        "peak_rss_kb": peak_rss_kb,
    }


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Best wall time over ``repeats`` calls; asserts repeat determinism."""
    best = float("inf")
    value = None
    for rep in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
        if rep == 0:
            value = result
        elif result != value:
            raise AssertionError("non-deterministic repeat in graphs bench")
    return best, value


def bench_graphs(repeats: int, quick: bool) -> dict:
    """Reference vs accel on the analysis kernels -> ``graphs`` payload.

    Signature drift between the engines (diameter, mean distance,
    coverage fraction, fault threshold) raises; speedups are recorded
    for the perf trajectory.  The quick config keeps the reference
    paths CI-sized; the full config is the large-RFC measurement the
    acceptance targets refer to (>=4x all-sources BFS, >=5x ancestor
    sweeps).
    """
    from repro.core.ancestors import stages_of, updown_reachable_fraction
    from repro.core.rfc import radix_regular_rfc
    from repro.faults.removal import shuffled_links
    from repro.faults.updown_survival import order_threshold
    from repro.graphs.metrics import average_distance, diameter

    if quick:
        bfs_cfg = (8, 128, 3)       # radix, n1, levels
        sweep_cfg = (16, 512, 3)
    else:
        bfs_cfg = (16, 512, 3)
        sweep_cfg = (32, 2048, 3)

    sections: dict[str, dict] = {}

    # All-sources batched BFS: diameter + average distance over every
    # switch as a source, reference deque BFS vs packed-frontier BFS.
    topo = radix_regular_rfc(*bfs_cfg, rng=11)
    adjacency = topo.adjacency()
    times: dict[str, float] = {}
    values: dict[str, tuple] = {}
    for name, accel in (("reference", False), ("accel", True)):
        times[name], values[name] = _best_of(
            lambda accel=accel: (
                diameter(adjacency, accel=accel),
                average_distance(adjacency, accel=accel),
            ),
            repeats,
        )
    if values["reference"] != values["accel"]:
        raise AssertionError(
            "BFS engines drifted: "
            f"{values['reference']} != {values['accel']}"
        )
    d, avg = values["accel"]
    sections["bfs_all_sources"] = {
        "config": {
            "radix": bfs_cfg[0], "n1": bfs_cfg[1], "levels": bfs_cfg[2],
            "switches": len(adjacency),
        },
        "signature": {"diameter": d, "average_distance": round(avg, 12)},
        "reference_seconds": round(times["reference"], 4),
        "accel_seconds": round(times["accel"], 4),
        "speedup": round(times["reference"] / times["accel"], 2),
    }

    # Ancestor sweeps: the coverage fraction (one full sweep pair) and
    # the fault-threshold binary search (the repeated masked-sweep
    # workload the incremental prune path exists for).
    topo = radix_regular_rfc(*sweep_cfg, rng=11)
    stages = stages_of(topo)
    order = shuffled_links(topo, rng=7)
    times = {}
    values = {}
    for name, accel in (("reference", False), ("accel", True)):
        times[name], values[name] = _best_of(
            lambda accel=accel: (
                round(
                    updown_reachable_fraction(
                        topo.level_sizes, stages, accel=accel
                    ),
                    12,
                ),
                order_threshold(topo, order, accel=accel),
            ),
            repeats,
        )
    if values["reference"] != values["accel"]:
        raise AssertionError(
            "sweep engines drifted: "
            f"{values['reference']} != {values['accel']}"
        )
    fraction, threshold = values["accel"]
    sections["ancestor_sweeps"] = {
        "config": {
            "radix": sweep_cfg[0], "n1": sweep_cfg[1],
            "levels": sweep_cfg[2], "links": topo.num_links,
        },
        "signature": {
            "coverage_fraction": fraction,
            "fault_threshold": threshold,
        },
        "reference_seconds": round(times["reference"], 4),
        "accel_seconds": round(times["accel"], 4),
        "speedup": round(times["reference"] / times["accel"], 2),
    }

    sections["extreme_scale"] = _bench_extreme_scale(repeats, quick)

    return {
        "benchmark": "graphs",
        "quick": quick,
        "repeats": repeats,
        "sections": sections,
    }


def _bench_extreme_scale(repeats: int, quick: bool) -> dict:
    """Array-native RFC path at 10^5 (quick) / 10^6 (full) terminals.

    Three measurements:

    * **generation speedup** -- packed CSR generator vs the
      pure-Python Steger--Wormald reference, both building the
      CI-quick acceptance size (131072 terminals).  The engines sample
      the same pairing model but are not stream-compatible, so only
      structure is asserted here (distribution equivalence lives in
      ``tests/test_packed_topology.py``);
    * **scale run** -- packed generation plus the full strong-expansion
      analysis (ancestor sweep, coverage, up/down check) at the mode's
      target size, with the process peak RSS after the run;
    * **differential signatures** -- diameter, coverage fraction and
      fault threshold computed through the packed path must be
      bit-identical to the reference path on the same topology.
    """
    from repro.core.ancestors import (
        sweeper_of,
        updown_reachable_fraction_of,
    )
    from repro.core.rfc import radix_regular_rfc
    from repro.faults.removal import shuffled_links
    from repro.faults.updown_survival import order_threshold
    from repro.graphs.metrics import diameter
    from repro.topologies.packed import (
        PackedFoldedClos,
        packed_radix_regular_rfc,
    )

    speedup_cfg = (64, 4096, 3)     # 131072 terminals: acceptance size
    scale_cfg = speedup_cfg if quick else (64, 32768, 3)  # ~1.05M full
    diff_cfg = (16, 512, 3)         # both paths affordable -> compare

    # Generation speedup at the acceptance size.  Structural checks
    # (degrees, simplicity) run inside the builders; num_links is the
    # repeat-determinism signature.
    ref_seconds, _ = _best_of(
        lambda: radix_regular_rfc(*speedup_cfg, rng=11).num_links,
        min(repeats, 2),
    )
    packed_seconds, _ = _best_of(
        lambda: packed_radix_regular_rfc(*speedup_cfg, rng=11).num_links,
        repeats,
    )

    # Scale run: one timed pass (the full config runs minutes of
    # sweep; best-of-N would triple that for no signal).
    start = time.perf_counter()
    topo = packed_radix_regular_rfc(*scale_cfg, rng=11)
    generation_seconds = time.perf_counter() - start
    start = time.perf_counter()
    sweeper = sweeper_of(topo)
    fraction = round(sweeper.reachable_fraction(), 12)
    updown_ok = sweeper.has_updown()
    analysis_seconds = time.perf_counter() - start
    peak_rss_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024

    # Differential signatures: same topology through both paths.
    ref = radix_regular_rfc(*diff_cfg, rng=11)
    packed = PackedFoldedClos.from_folded(ref)
    order = shuffled_links(ref, rng=7)
    ref_sig = (
        diameter(ref.adjacency(), accel=False),
        round(updown_reachable_fraction_of(ref, accel=False), 12),
        order_threshold(ref, order, accel=False),
    )
    packed_sig = (
        diameter(packed.adjacency(), accel=True),
        round(updown_reachable_fraction_of(packed), 12),
        order_threshold(packed, order, accel=True),
    )
    if ref_sig != packed_sig:
        raise AssertionError(
            f"packed path drifted: {packed_sig} != {ref_sig}"
        )

    return {
        "config": {
            "radix": scale_cfg[0], "n1": scale_cfg[1],
            "levels": scale_cfg[2], "terminals": topo.num_terminals,
            "switches": topo.num_switches, "links": topo.num_links,
        },
        "generation_seconds": round(generation_seconds, 4),
        "analysis_seconds": round(analysis_seconds, 4),
        "peak_rss_mib": round(peak_rss_mib, 1),
        "signature": {
            "coverage_fraction": fraction,
            "updown_ok": updown_ok,
            "diff_diameter": ref_sig[0],
            "diff_coverage_fraction": ref_sig[1],
            "diff_fault_threshold": ref_sig[2],
        },
        "speedup_config": {
            "radix": speedup_cfg[0], "n1": speedup_cfg[1],
            "levels": speedup_cfg[2],
        },
        "reference_seconds": round(ref_seconds, 4),
        "accel_seconds": round(packed_seconds, 4),
        "speedup": round(ref_seconds / packed_seconds, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent
                             / "BENCH_engine.json"),
        help="output path (default: repo-root BENCH_engine.json)",
    )
    parser.add_argument(
        "--graphs-out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_graphs.json"),
        help="graphs-bench output path (default: repo-root "
             "BENCH_graphs.json)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs (CI smoke)")
    parser.add_argument(
        "--graphs-only", action="store_true",
        help="skip the engine benchmark; run only the graphs family "
             "(the scale-smoke CI job uses this)",
    )
    parser.add_argument(
        "--min-generation-speedup", type=float, default=0.0,
        help="fail unless the packed generator beats the pure-Python "
             "reference by at least this ratio (0 disables the gate)",
    )
    parser.add_argument(
        "--max-scale-rss-mib", type=float, default=0.0,
        help="fail if the extreme-scale run's peak RSS exceeds this "
             "many MiB (0 disables the gate)",
    )
    parser.add_argument(
        "--max-scale-seconds", type=float, default=0.0,
        help="fail if extreme-scale generation + analysis together "
             "exceed this many seconds (0 disables the gate)",
    )
    parser.add_argument(
        "--min-vectorized-speedup", type=float, default=0.0,
        help="fail unless the vectorized engine beats the reference "
             "by at least this ratio (0 disables the gate)",
    )
    parser.add_argument(
        "--min-relaxed-speedup", type=float, default=0.0,
        help="fail unless the relaxed (counter-RNG) engine beats the "
             "reference by at least this ratio (0 disables the gate)",
    )
    args = parser.parse_args(argv)

    if args.graphs_only:
        return _run_graphs(args)

    payload = bench(repeats=max(1, args.repeats), quick=args.quick)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    engines = payload["engines"]
    for engine in ("fast", "vectorized"):
        print(f"{engine}: {engines[engine]['cycles_per_sec']:,.0f} "
              f"cycles/sec vs reference "
              f"{engines['reference']['cycles_per_sec']:,.0f} "
              f"({engines[engine]['speedup_vs_reference']}x speedup, "
              f"identical signatures)")
    print(f"relaxed: {engines['relaxed']['cycles_per_sec']:,.0f} "
          f"cycles/sec vs reference "
          f"{engines['reference']['cycles_per_sec']:,.0f} "
          f"({engines['relaxed']['speedup_vs_reference']}x speedup, "
          f"statistically equivalent -- not bit-for-bit)")
    if args.min_vectorized_speedup > 0:
        measured = engines["vectorized"]["speedup_vs_reference"]
        if measured < args.min_vectorized_speedup:
            raise AssertionError(
                f"vectorized speedup {measured}x below the required "
                f"floor {args.min_vectorized_speedup}x"
            )
    if args.min_relaxed_speedup > 0:
        measured = engines["relaxed"]["speedup_vs_reference"]
        if measured < args.min_relaxed_speedup:
            raise AssertionError(
                f"relaxed speedup {measured}x below the required "
                f"floor {args.min_relaxed_speedup}x"
            )
    wl_engines = payload["workloads"]["engines"]
    print("workloads (incast): "
          + ", ".join(
              f"{name} {wl_engines[name]['flows_per_sec']:,.0f} flows/sec"
              for name in ("reference", "fast", "vectorized", "relaxed")
          ))
    bare = payload["modes"]["bare"]
    print(f"engine: {bare['cycles_per_sec']:,.0f} cycles/sec bare, "
          f"metrics overhead {payload['modes']['metrics']['overhead_pct']}%, "
          f"metrics+trace overhead "
          f"{payload['modes']['metrics+trace']['overhead_pct']}%, "
          f"peak RSS {payload['peak_rss_kb']:,} kB")
    print(f"wrote {out}")

    return _run_graphs(args)


def _run_graphs(args) -> int:
    graphs = bench_graphs(repeats=max(1, args.repeats), quick=args.quick)
    graphs_out = Path(args.graphs_out)
    graphs_out.write_text(
        json.dumps(graphs, indent=1, sort_keys=True) + "\n"
    )
    for name, section in graphs["sections"].items():
        print(f"{name}: accel {section['accel_seconds']}s vs reference "
              f"{section['reference_seconds']}s "
              f"({section['speedup']}x, identical signatures)")
    scale = graphs["sections"]["extreme_scale"]
    print(f"extreme_scale: {scale['config']['terminals']:,} terminals "
          f"generated in {scale['generation_seconds']}s, analyzed in "
          f"{scale['analysis_seconds']}s, peak RSS "
          f"{scale['peak_rss_mib']:,.0f} MiB")
    if args.min_generation_speedup > 0:
        if scale["speedup"] < args.min_generation_speedup:
            raise AssertionError(
                f"packed generation speedup {scale['speedup']}x below "
                f"the required floor {args.min_generation_speedup}x"
            )
    if args.max_scale_rss_mib > 0:
        if scale["peak_rss_mib"] > args.max_scale_rss_mib:
            raise AssertionError(
                f"extreme-scale peak RSS {scale['peak_rss_mib']} MiB "
                f"over the {args.max_scale_rss_mib} MiB ceiling"
            )
    if args.max_scale_seconds > 0:
        total = scale["generation_seconds"] + scale["analysis_seconds"]
        if total > args.max_scale_seconds:
            raise AssertionError(
                f"extreme-scale run took {total}s, over the "
                f"{args.max_scale_seconds}s ceiling"
            )
    print(f"wrote {graphs_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
