#!/usr/bin/env python3
"""Engine performance regression harness -> BENCH_engine.json.

Benchmarks the reference engine against the precomputed-route fast
path (``engines`` section, with the speedup ratio), then runs the fast
path three ways -- bare, metrics-instrumented, and metrics+trace --
recording simulated cycles per wall-second, delivered packets per
second, peak RSS and the observability overhead percentages.  Both
engines must produce identical result signatures; the script fails on
any drift.  The JSON output gives future PRs a perf trajectory: run
before and after an engine change and compare ``cycles_per_sec``.

    PYTHONPATH=src python scripts/bench_regression.py [--out PATH]
        [--repeats N] [--quick]

The workload numbers are deterministic (fixed seeds); the timings are
hardware-dependent, so compare ratios on one machine, not absolute
values across machines.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.rfc import rfc_with_updown  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsObserver,
    MultiObserver,
    TraceWriter,
    TracingObserver,
)
from repro.simulation.config import SimulationParams  # noqa: E402
from repro.simulation.engine import Simulator  # noqa: E402
from repro.simulation.traffic import make_traffic  # noqa: E402


def _run_once(topo, params, load: float, observer=None):
    traffic = make_traffic("uniform", topo.num_terminals, rng=params.seed + 7_919)
    sim = Simulator(topo, traffic, load, params, observer=observer)
    start = time.perf_counter()
    result = sim.run()
    return result, time.perf_counter() - start


def bench(repeats: int, quick: bool) -> dict:
    topo, _ = rfc_with_updown(8, 32, 3, rng=11)
    params = SimulationParams(
        measure_cycles=1_000 if quick else 4_000,
        warmup_cycles=250 if quick else 1_000,
        seed=5,
    )
    load = 0.7

    # Reference vs fast path, bare runs.  Identical signatures are a
    # hard requirement -- the fast path's contract is bit-for-bit.
    engines: dict[str, dict] = {}
    for engine in ("reference", "fast"):
        eng_params = params.scaled(fast_path=engine == "fast")
        elapsed = 0.0
        checksum = None
        for _ in range(repeats):
            result, wall = _run_once(topo, eng_params, load)
            elapsed += wall
            sig = (result.accepted_load, result.avg_latency,
                   result.delivered_packets)
            if checksum is None:
                checksum = sig
            elif checksum != sig:
                raise AssertionError(
                    f"non-deterministic repeat in {engine} engine"
                )
        cycles = params.horizon * repeats
        engines[engine] = {
            "signature": list(checksum),
            "wall_seconds": round(elapsed, 4),
            "cycles_per_sec": round(cycles / elapsed, 1),
        }
    if engines["reference"]["signature"] != engines["fast"]["signature"]:
        raise AssertionError(
            "fast path drifted from the reference engine: "
            f"{engines['reference']['signature']} != "
            f"{engines['fast']['signature']}"
        )
    engines["speedup"] = round(
        engines["fast"]["cycles_per_sec"]
        / engines["reference"]["cycles_per_sec"],
        2,
    )

    # Observability overhead, measured on the (default) fast path.
    modes: dict[str, dict] = {}

    for mode in ("bare", "metrics", "metrics+trace"):
        elapsed = 0.0
        delivered = 0
        checksum = None
        for rep in range(repeats):
            observer = None
            writer = None
            if mode == "metrics":
                observer = MetricsObserver()
            elif mode == "metrics+trace":
                tmp = tempfile.NamedTemporaryFile(
                    suffix=".jsonl", delete=False
                )
                tmp.close()
                writer = TraceWriter(tmp.name)
                observer = MultiObserver(
                    [MetricsObserver(), TracingObserver(writer)]
                )
            result, wall = _run_once(topo, params, load, observer)
            if writer is not None:
                writer.close()
                Path(writer.path).unlink(missing_ok=True)
            elapsed += wall
            delivered += result.delivered_packets
            # All modes must agree bit-for-bit; a mismatch means the
            # observer perturbed the engine.
            sig = (result.accepted_load, result.avg_latency,
                   result.delivered_packets)
            if checksum is None:
                checksum = sig
            elif checksum != sig:
                raise AssertionError(f"non-deterministic repeat in {mode}")
            modes.setdefault(mode, {})["signature"] = list(checksum)
        cycles = params.horizon * repeats
        modes[mode].update(
            {
                "wall_seconds": round(elapsed, 4),
                "cycles_per_sec": round(cycles / elapsed, 1),
                "delivered_packets_per_sec": round(delivered / elapsed, 1),
            }
        )

    bare = modes["bare"]["cycles_per_sec"]
    for mode in ("metrics", "metrics+trace"):
        modes[mode]["overhead_pct"] = round(
            100.0 * (bare - modes[mode]["cycles_per_sec"]) / bare, 2
        )

    signatures = {m: modes[m].pop("signature") for m in modes}
    if len({tuple(s) for s in signatures.values()}) != 1:
        raise AssertionError(
            f"observer modes disagree on results: {signatures}"
        )

    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "benchmark": "engine",
        "config": {
            "topology": topo.name,
            "terminals": topo.num_terminals,
            "load": load,
            "horizon": params.horizon,
            "repeats": repeats,
            "seed": params.seed,
        },
        "result_signature": signatures["bare"],
        "engines": engines,
        "modes": modes,
        "peak_rss_kb": peak_rss_kb,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent
                             / "BENCH_engine.json"),
        help="output path (default: repo-root BENCH_engine.json)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs (CI smoke)")
    args = parser.parse_args(argv)

    payload = bench(repeats=max(1, args.repeats), quick=args.quick)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    engines = payload["engines"]
    print(f"fast path: {engines['fast']['cycles_per_sec']:,.0f} cycles/sec "
          f"vs reference {engines['reference']['cycles_per_sec']:,.0f} "
          f"({engines['speedup']}x speedup, identical signatures)")
    bare = payload["modes"]["bare"]
    print(f"engine: {bare['cycles_per_sec']:,.0f} cycles/sec bare, "
          f"metrics overhead {payload['modes']['metrics']['overhead_pct']}%, "
          f"metrics+trace overhead "
          f"{payload['modes']['metrics+trace']['overhead_pct']}%, "
          f"peak RSS {payload['peak_rss_kb']:,} kB")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
