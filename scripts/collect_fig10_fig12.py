#!/usr/bin/env python3
"""Collect the remaining full-scale sims: fig10 and fig12 only."""

import importlib.util
import sys
from pathlib import Path

spec = importlib.util.spec_from_file_location(
    "collect_sims_minimal",
    Path(__file__).resolve().parent / "collect_sims_minimal.py",
)
module = importlib.util.module_from_spec(spec)
spec.loader.exec_module(module)

if __name__ == "__main__":
    module.saturation_table("fig10", "maximum-200k")
    module.fig12()
    print("fig10 + fig12 done", flush=True)
