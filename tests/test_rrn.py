"""Random regular network (Jellyfish baseline) tests."""

from repro.graphs.metrics import diameter
from repro.topologies.rrn import (
    random_regular_network,
    rrn_balanced_hosts,
    rrn_degree_for,
    rrn_switches_for_diameter,
    rrn_terminals,
)


class TestConstruction:
    def test_counts(self):
        net = random_regular_network(20, 5, 3, rng=1)
        assert net.num_switches == 20
        assert net.num_terminals == 60
        assert net.is_regular()
        assert net.radix == 8

    def test_deterministic(self):
        a = random_regular_network(16, 4, 2, rng=5)
        b = random_regular_network(16, 4, 2, rng=5)
        assert a.adjacency() == b.adjacency()

    def test_diameter_matches_rule_of_thumb(self):
        # delta^D ~ 2 N ln N: for N=16 switches of degree 4, D should
        # be around log_4(2*16*ln 16) ~ 3.2 -> diameter 3-4.
        net = random_regular_network(16, 4, 2, rng=3)
        assert 2 <= diameter(net.adjacency()) <= 4


class TestSizing:
    def test_switches_for_diameter_monotone_in_degree(self):
        previous = 0
        for degree in (4, 8, 16, 26):
            n = rrn_switches_for_diameter(degree, 4)
            assert n > previous
            previous = n

    def test_paper_example(self):
        # Section 4.2: degree 26, diameter 4 admits ~22,773 switches.
        n = rrn_switches_for_diameter(26, 4)
        assert 20_000 <= n <= 26_000

    def test_balanced_hosts(self):
        # Paper rule: delta / D hosts per switch.
        assert rrn_balanced_hosts(26, 4) in (6, 7)
        assert rrn_balanced_hosts(4, 4) == 1

    def test_degree_for_radix_split(self):
        degree, hosts = rrn_degree_for(36, 4)
        assert degree + hosts <= 36
        assert degree > hosts >= 1

    def test_terminals_positive(self):
        assert rrn_terminals(8, 4) > 0
