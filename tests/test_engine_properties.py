"""Hypothesis property tests on the simulation engine.

Small random configurations checked for the invariants that must hold
regardless of parameters: packet conservation, capacity bounds, and
routing legality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rfc import radix_regular_rfc
from repro.core.ancestors import has_updown_routing_of
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import make_traffic

engine_configs = st.fixed_dictionaries(
    {
        "radix": st.sampled_from([4, 6, 8]),
        "n1": st.sampled_from([8, 12, 16]),
        "load": st.floats(min_value=0.1, max_value=1.0),
        "vcs": st.integers(min_value=1, max_value=4),
        "buffers": st.integers(min_value=1, max_value=4),
        "phits": st.sampled_from([1, 4, 16]),
        "latency": st.integers(min_value=1, max_value=3),
        "traffic": st.sampled_from(
            ["uniform", "random-pairing", "fixed-random"]
        ),
        "seed": st.integers(min_value=0, max_value=1_000),
    }
)


def build(config):
    topo = radix_regular_rfc(
        config["radix"], config["n1"], 2, rng=config["seed"]
    )
    params = SimulationParams(
        measure_cycles=200,
        warmup_cycles=50,
        virtual_channels=config["vcs"],
        buffer_packets=config["buffers"],
        packet_phits=config["phits"],
        link_latency=config["latency"],
        seed=config["seed"],
    )
    traffic = make_traffic(
        config["traffic"], topo.num_terminals, rng=config["seed"] + 1
    )
    return topo, Simulator(topo, traffic, config["load"], params)


@settings(max_examples=25, deadline=None)
@given(config=engine_configs)
def test_packet_conservation(config):
    topo, sim = build(config)
    result = sim.run()
    assert result.delivered_packets + sim.unroutable_packets <= (
        result.generated_packets
    )
    assert result.measured_packets <= result.delivered_packets


@settings(max_examples=25, deadline=None)
@given(config=engine_configs)
def test_capacity_bounds(config):
    topo, sim = build(config)
    result = sim.run()
    assert 0.0 <= result.accepted_load <= 1.0 + 1e-9
    util = sim.link_utilization()
    assert util["max"] <= 1.0 + 1e-9


@settings(max_examples=15, deadline=None)
@given(config=engine_configs)
def test_no_unroutable_when_routable(config):
    topo, sim = build(config)
    if not has_updown_routing_of(topo):
        return
    sim.run()
    assert sim.unroutable_packets == 0


@settings(max_examples=10, deadline=None)
@given(config=engine_configs)
def test_latency_at_least_serialization(config):
    """No delivered packet can beat pure serialization latency."""
    topo, sim = build(config)
    result = sim.run()
    if result.measured_packets == 0:
        return
    min_latency = config["latency"] + config["phits"] - 1
    assert result.p50_latency >= min_latency
