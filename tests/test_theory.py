"""Theorem 4.2 / Section 4 closed-form tests."""

import math

import pytest

from repro.core.theory import (
    binom2,
    cft_diameter,
    expected_attempts,
    oft_diameter,
    rfc_diameter,
    rfc_max_leaves,
    rfc_max_terminals,
    rrn_diameter,
    rrn_max_terminals,
    scalability_point,
    threshold_radix,
    threshold_radix_simplified,
    updown_probability,
    x_for_radix,
)


class TestThreshold:
    def test_paper_radix36_sizes(self):
        """Section 4.2: R=36, D=4 -> N1 slightly above 11,254."""
        assert rfc_max_leaves(36, 3) == 11_254
        assert rfc_max_terminals(36, 3) == 202_572

    def test_probability_limits(self):
        assert updown_probability(0.0) == pytest.approx(1 / math.e)
        assert updown_probability(10.0) == pytest.approx(1.0, abs=1e-4)
        assert updown_probability(-10.0) == pytest.approx(0.0, abs=1e-4)

    def test_probability_monotone(self):
        xs = [-3, -1, 0, 1, 3]
        ps = [updown_probability(x) for x in xs]
        assert ps == sorted(ps)

    def test_x_inverts_threshold(self):
        for n1, levels in ((128, 2), (500, 3), (2_000, 3)):
            for x in (-1.0, 0.0, 2.0):
                radius = threshold_radix(n1, levels, x)
                assert x_for_radix(radius, n1, levels) == pytest.approx(x)

    def test_simplified_close_to_exact(self):
        # N_l ln C(N1,2) ~ N1 ln N1; the two thresholds should agree
        # within a few percent at scale.
        for n1 in (1_000, 10_000):
            exact = threshold_radix(n1, 3)
            simple = threshold_radix_simplified(n1, 3)
            assert abs(exact - simple) / exact < 0.05

    def test_threshold_decreases_with_levels(self):
        values = [threshold_radix(10_000, l) for l in (2, 3, 4)]
        assert values == sorted(values, reverse=True)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            threshold_radix(128, 1)
        with pytest.raises(ValueError):
            threshold_radix(1, 2)

    def test_expected_attempts_at_threshold(self):
        assert expected_attempts(0.0) == pytest.approx(math.e)

    def test_binom2(self):
        assert binom2(5) == 10
        assert binom2(2) == 1


class TestMaxSizes:
    def test_max_leaves_even(self):
        for radix in (8, 12, 36):
            for levels in (2, 3):
                assert rfc_max_leaves(radix, levels) % 2 == 0

    def test_max_terminals_grows_with_radix(self):
        values = [rfc_max_terminals(r, 3) for r in (8, 16, 24, 36)]
        assert values == sorted(values)

    def test_max_terminals_grows_with_levels(self):
        values = [rfc_max_terminals(16, l) for l in (2, 3, 4)]
        assert values == sorted(values)


class TestDiameters:
    def test_paper_figure5_ordering(self):
        """At radix 36 the ordering is OFT <= RFC ~ RRN <= CFT."""
        for terminals in (10_000, 100_000, 1_000_000):
            d_oft = oft_diameter(36, terminals)
            d_rfc = rfc_diameter(36, terminals)
            d_rrn = rrn_diameter(36, terminals)
            d_cft = cft_diameter(36, terminals)
            assert d_oft <= d_rfc <= d_cft
            assert abs(d_rfc - d_rrn) <= 2

    def test_rfc_diameters_even(self):
        for terminals in (100, 10_000, 1_000_000):
            assert rfc_diameter(36, terminals) % 2 == 0

    def test_rfc_capacity_roundtrip(self):
        cap3 = rfc_max_terminals(36, 3)
        assert rfc_diameter(36, cap3) == 4
        assert rfc_diameter(36, cap3 * (36 // 2) + 36) == 6

    def test_monotone_in_terminals(self):
        previous = 0
        for terminals in (100, 1_000, 10_000, 100_000, 1_000_000):
            d = rfc_diameter(36, terminals)
            assert d >= previous
            previous = d


class TestScalabilityPoints:
    def test_known_values(self):
        assert scalability_point("cft", 36, 3) == 11_664
        assert scalability_point("rfc", 36, 3) == 202_572
        # OFT at radix 36 -> order 17: T = 2*18*307^2.
        assert scalability_point("oft", 36, 3) == 2 * 18 * 307**2

    def test_oft_beats_next_level_cft(self):
        """Paper: the l-level OFT scales at least like the (l+1)-CFT."""
        for radix in (16, 24, 36):
            for levels in (2, 3):
                assert scalability_point("oft", radix, levels) >= (
                    scalability_point("cft", radix, levels + 1) * 0.85
                )

    def test_rfc_between_cft_and_oft(self):
        for radix in (16, 36):
            for levels in (2, 3):
                cft = scalability_point("cft", radix, levels)
                rfc = scalability_point("rfc", radix, levels)
                oft = scalability_point("oft", radix, levels)
                assert cft <= rfc <= oft or levels == 2

    def test_rrn_close_to_rfc(self):
        rfc = scalability_point("rfc", 36, 3)
        rrn = scalability_point("rrn", 36, 3)
        assert 0.5 < rrn / rfc < 2.5

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            scalability_point("torus", 36, 3)

    def test_rrn_max_terminals(self):
        assert rrn_max_terminals(36, 4) > rrn_max_terminals(36, 3)
