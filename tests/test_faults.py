"""Fault-injection machinery and resiliency metric tests."""

import random

import pytest

from repro.faults.disconnection import (
    disconnection_fraction,
    disconnection_trial,
)
from repro.faults.removal import UnionFind, failure_threshold, shuffled_links
from repro.faults.updown_survival import (
    pruned_stages,
    updown_fault_tolerance,
    updown_trial,
)
from repro.topologies.base import DirectNetwork, Link


class TestUnionFind:
    def test_components_count(self):
        uf = UnionFind(5)
        assert uf.components == 5
        assert uf.union(0, 1)
        assert uf.union(1, 2)
        assert not uf.union(0, 2)  # already joined
        assert uf.components == 3
        assert uf.same(0, 2)
        assert not uf.same(0, 3)

    def test_all_connected(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.all_connected([0, 1])
        assert not uf.all_connected([0, 2])
        assert uf.all_connected([])


class TestFailureThreshold:
    def test_finds_exact_break(self):
        # Property survives the first 6 removals, breaks at the 7th.
        assert failure_threshold(20, lambda k: k <= 6) == 7

    def test_immediately_broken(self):
        assert failure_threshold(10, lambda k: False) == 0

    def test_never_broken(self):
        assert failure_threshold(10, lambda k: True) == 11

    def test_binary_search_probes_monotone(self):
        calls = []

        def still_ok(k):
            calls.append(k)
            return k < 50

        assert failure_threshold(1000, still_ok) == 50
        assert len(calls) < 25  # logarithmic


class TestShuffledLinks:
    def test_permutation_of_links(self, cft_4_3):
        order = shuffled_links(cft_4_3, rng=1)
        assert sorted(order) == sorted(cft_4_3.links())

    def test_seeded(self, cft_4_3):
        assert shuffled_links(cft_4_3, rng=2) == shuffled_links(cft_4_3, rng=2)


def ring_network(n=8):
    adj = [[(i - 1) % n, (i + 1) % n] for i in range(n)]
    return DirectNetwork(adj, hosts_per_switch=1, name="ring")


class TestDisconnection:
    def test_ring_needs_two_failures(self):
        # A cycle stays connected after any single removal and breaks
        # at the second (unless adjacent pair... no: any 2 removals cut
        # a cycle into two arcs unless they are the same link).
        ring = ring_network()
        for seed in range(5):
            assert disconnection_trial(ring, rng=seed) == 2

    def test_fraction_aggregates(self):
        result = disconnection_fraction(ring_network(), trials=10, rng=1)
        assert result.mean_fraction == pytest.approx(2 / 8)
        assert result.stdev_fraction == 0.0
        assert result.trials == 10

    def test_leaves_scope_tolerates_stranded_roots(self, cft_4_3):
        rng = random.Random(3)
        switch_scope = disconnection_fraction(
            cft_4_3, trials=10, rng=rng, scope="switches"
        )
        rng = random.Random(3)
        leaf_scope = disconnection_fraction(
            cft_4_3, trials=10, rng=rng, scope="leaves"
        )
        assert leaf_scope.mean_fraction >= switch_scope.mean_fraction

    def test_rejects_unknown_scope(self, cft_4_3):
        with pytest.raises(ValueError):
            disconnection_trial(cft_4_3, rng=0, scope="pods")

    def test_paper_ordering_small_scale(self, cft_8_3, rfc_medium):
        """RFC (smaller effective redundancy per wire at equal radix
        and size here) still within sane band of the CFT."""
        cft = disconnection_fraction(cft_8_3, trials=8, rng=4)
        rfc = disconnection_fraction(rfc_medium, trials=8, rng=4)
        assert 0.1 < cft.mean_fraction < 0.8
        assert 0.1 < rfc.mean_fraction < 0.8


class TestUpdownSurvival:
    def test_oft2_zero_tolerance(self, oft_q2_l2):
        """Any single failure kills a unique-path pair (paper §7)."""
        for seed in range(4):
            assert updown_trial(oft_q2_l2, rng=seed) == 0

    def test_rfc_positive_tolerance(self, rfc_medium):
        result = updown_fault_tolerance(rfc_medium, trials=5, rng=2)
        assert result.mean_fraction > 0.0
        assert result.total_links == rfc_medium.num_links

    def test_pruned_stages_removes_both_views(self, rfc_small):
        link = rfc_small.links()[0]
        stages = pruned_stages(rfc_small, {link})
        level, index = rfc_small.switch_level(link.lo)
        _, upper = rfc_small.switch_level(link.hi)
        assert upper not in stages[level][index]

    def test_tolerance_decreases_near_capacity(self):
        """Radix slack buys fault tolerance (Figure 11's message)."""
        from repro.core.rfc import rfc_with_updown

        small, _ = rfc_with_updown(8, 16, 3, rng=1)   # far below cap 52
        large, _ = rfc_with_updown(8, 48, 3, rng=1)   # near cap
        tol_small = updown_fault_tolerance(small, trials=5, rng=3)
        tol_large = updown_fault_tolerance(large, trials=5, rng=3)
        assert tol_small.mean_fraction > tol_large.mean_fraction
