"""Traffic pattern tests."""

import random
from collections import Counter

import pytest

from repro.simulation.traffic import (
    FixedRandomTraffic,
    RandomPairingTraffic,
    TRAFFIC_NAMES,
    UniformTraffic,
    make_traffic,
)


class TestUniform:
    def test_never_self(self, rng):
        traffic = UniformTraffic(10)
        for src in range(10):
            for _ in range(50):
                assert traffic.destination(src, rng) != src

    def test_covers_all_destinations(self, rng):
        traffic = UniformTraffic(6)
        seen = {traffic.destination(0, rng) for _ in range(500)}
        assert seen == {1, 2, 3, 4, 5}

    def test_roughly_uniform(self, rng):
        traffic = UniformTraffic(5)
        counts = Counter(traffic.destination(2, rng) for _ in range(4000))
        for dest, count in counts.items():
            assert 800 < count < 1200


class TestRandomPairing:
    def test_is_involution(self):
        traffic = RandomPairingTraffic(16, rng=3)
        rng = random.Random(0)
        for src in range(16):
            partner = traffic.destination(src, rng)
            assert partner != src
            assert traffic.destination(partner, rng) == src

    def test_odd_count_leaves_one_silent(self):
        traffic = RandomPairingTraffic(7, rng=3)
        silent = [s for s in range(7) if traffic.is_silent(s)]
        assert len(silent) == 1
        with pytest.raises(LookupError):
            traffic.destination(silent[0], random.Random(0))

    def test_deterministic_by_seed(self):
        a = RandomPairingTraffic(20, rng=9)
        b = RandomPairingTraffic(20, rng=9)
        assert a.partner == b.partner

    def test_destination_is_fixed(self):
        traffic = RandomPairingTraffic(8, rng=1)
        rng = random.Random(5)
        dests = {traffic.destination(3, rng) for _ in range(20)}
        assert len(dests) == 1


class TestFixedRandom:
    def test_fixed_per_source(self):
        traffic = FixedRandomTraffic(12, rng=2)
        rng = random.Random(7)
        for src in range(12):
            dests = {traffic.destination(src, rng) for _ in range(10)}
            assert len(dests) == 1
            assert src not in dests

    def test_can_create_hotspots(self):
        # Unlike pairing, several sources may share a destination;
        # check it happens for some seed (birthday bound says almost
        # surely at n=30).
        traffic = FixedRandomTraffic(30, rng=4)
        counts = Counter(traffic.target)
        assert max(counts.values()) >= 2

    def test_deterministic(self):
        assert FixedRandomTraffic(10, rng=8).target == (
            FixedRandomTraffic(10, rng=8).target
        )


class TestFactory:
    def test_names(self):
        for name in TRAFFIC_NAMES:
            traffic = make_traffic(name, 8, rng=0)
            assert traffic.name == name

    def test_underscore_alias(self):
        assert make_traffic("random_pairing", 8, rng=0).name == "random-pairing"

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_traffic("tornado", 8)

    def test_rejects_single_terminal(self):
        with pytest.raises(ValueError):
            UniformTraffic(1)
