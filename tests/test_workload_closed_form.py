"""Closed-form FCT fixtures: zero-tolerance pins on tiny topologies.

On a dumbbell (two leaves, one spine) every route is forced, so flow
completion times follow from the switch model alone -- ``P`` phits of
serialization per packet, ``L`` cycles per link hop:

* **cross-leaf** ``n``-packet flow: injection grants packet ``k`` at
  cycle ``kP`` (the NIC serializes); the grant chain adds one link
  latency at the spine and one at the far leaf, and the tail phit of
  the last packet lands ``P - 1`` cycles after its eject grant at
  ``(n-1)P + 2L``, so ``FCT = nP + 3L - 1``;
* **same-leaf** ``n``-packet flow: one eject hop instead of three
  stages, ``FCT = nP + L - 1``;
* **same-leaf K-way incast** of 1-packet flows released together: the
  aggregator's single ejection port serializes the responses, granting
  one every ``P`` cycles -- the *sorted* FCT multiset is exactly
  ``{kP + L + P - 1 : k = 0..K-1}`` (which flow lands k-th is
  arbitration RNG, the multiset is not), i.e. the k-th flow queues for
  exactly ``kP`` cycles.

These are exact integers: every assertion is ``==``, on all four
engines (the relaxed engine's RNG freedom only permutes *which* flow
takes each slot, never the slot times).
"""

import pytest

from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.topologies.base import FoldedClos
from repro.workloads import (
    Flow,
    FlowSchedule,
    FlowTraffic,
    FlowTracker,
    run_workload,
)

P = 16  # packet_phits (SimulationParams default)
L = 1   # link_latency (SimulationParams default)

ENGINES = ("reference", "fast", "vectorized", "relaxed")


def dumbbell(hosts_per_leaf):
    """Two leaves, one spine: leaf0=0, leaf1=1, spine=2; terminals
    0..H-1 on leaf0, H..2H-1 on leaf1."""
    return FoldedClos(
        level_sizes=[2, 1],
        up_adjacency=[[[0], [0]]],
        hosts_per_leaf=hosts_per_leaf,
        radix=2 + hosts_per_leaf,
        name="dumbbell",
    )


def params_for(engine):
    if engine == "relaxed":
        return SimulationParams(
            measure_cycles=3_000, warmup_cycles=0, rng_mode="relaxed", seed=1
        )
    return SimulationParams(
        measure_cycles=3_000, warmup_cycles=0, engine=engine, seed=1
    )


def run_flows(topo, flows, engine):
    """Run a hand-built schedule; returns (SimResult, sorted FCTs)."""
    schedule = FlowSchedule(flows, topo.num_terminals)
    tracker = FlowTracker(schedule)
    sim = Simulator(
        topo, FlowTraffic(schedule), 0.5, params_for(engine),
        observer=tracker,
    )
    result = sim.run()
    return result, sorted(fct for fct, _ in tracker.fct_records())


class TestCrossLeafFlow:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_fct_is_nP_plus_3L_minus_1(self, engine, n):
        topo = dumbbell(2)
        _, fcts = run_flows(topo, [Flow(0, 0, 2, n, 0)], engine)
        assert fcts == [n * P + 3 * L - 1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_delayed_start_shifts_not_stretches(self, engine):
        topo = dumbbell(2)
        _, fcts = run_flows(topo, [Flow(0, 0, 2, 2, 37)], engine)
        assert fcts == [2 * P + 3 * L - 1]


class TestSameLeafFlow:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("n", [1, 4])
    def test_fct_is_nP_plus_L_minus_1(self, engine, n):
        topo = dumbbell(2)
        _, fcts = run_flows(topo, [Flow(0, 0, 1, n, 0)], engine)
        assert fcts == [n * P + L - 1]


class TestLeafIncast:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("fanin", [2, 4, 7])
    def test_sorted_fct_multiset_exact(self, engine, fanin):
        topo = dumbbell(8)
        flows = [
            Flow(i, worker, 0, 1, 0)
            for i, worker in enumerate(range(1, fanin + 1))
        ]
        _, fcts = run_flows(topo, flows, engine)
        assert fcts == [k * P + L + P - 1 for k in range(fanin)]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_queueing_delay_is_kP(self, engine):
        """FCT minus the contention-free FCT is exactly k packets of
        head-of-line serialization at the shared ejection port."""
        fanin = 5
        topo = dumbbell(8)
        flows = [
            Flow(i, worker, 0, 1, 0)
            for i, worker in enumerate(range(1, fanin + 1))
        ]
        _, fcts = run_flows(topo, flows, engine)
        ideal = P + L - 1
        assert [fct - ideal for fct in fcts] == [
            k * P for k in range(fanin)
        ]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_spaced_events_do_not_interact(self, engine):
        """A second cast released after the first drains sees the same
        multiset -- interval math in the generators is honest."""
        fanin, gap = 3, 200
        topo = dumbbell(8)
        flows = [
            Flow(i, worker, 0, 1, 0)
            for i, worker in enumerate(range(1, fanin + 1))
        ] + [
            Flow(fanin + i, worker, 0, 1, gap)
            for i, worker in enumerate(range(1, fanin + 1))
        ]
        _, fcts = run_flows(topo, flows, engine)
        one_event = [k * P + L + P - 1 for k in range(fanin)]
        assert fcts == sorted(one_event * 2)


class TestSummarySurface:
    def test_flow_stats_round_numbers(self):
        """run_workload surfaces the same exact numbers through
        SimResult.flow_stats."""
        topo = dumbbell(2)
        schedule = FlowSchedule([Flow(0, 0, 2, 3, 0)], topo.num_terminals)
        result = run_workload(
            topo, FlowTraffic(schedule), params_for("fast")
        )
        fs = result.flow_stats
        expected = 3 * P + 3 * L - 1
        assert fs["flows_completed"] == 1
        assert fs["fct_mean"] == expected
        assert fs["fct_p50"] == expected
        assert fs["fct_max"] == expected
        assert fs["slowdown_mean"] == expected / (3 * P)
