"""Topology serialization tests."""

import json

import pytest

from repro.topologies.base import NetworkError
from repro.topologies.io import (
    from_json,
    load,
    save,
    to_dot,
    to_edge_list,
    to_json,
)


class TestJsonRoundTrip:
    def test_folded_clos(self, rfc_medium):
        clone = from_json(to_json(rfc_medium))
        assert clone.level_sizes == rfc_medium.level_sizes
        assert clone.radix == rfc_medium.radix
        assert clone.hosts_per_leaf == rfc_medium.hosts_per_leaf
        assert clone.links() == rfc_medium.links()
        assert clone.name == rfc_medium.name

    def test_direct(self, rrn_16):
        clone = from_json(to_json(rrn_16))
        assert clone.adjacency() == rrn_16.adjacency()
        assert clone.hosts_per_switch == rrn_16.hosts_per_switch

    def test_cft_structurally_identical(self, cft_4_3):
        clone = from_json(to_json(cft_4_3))
        assert clone.is_radix_regular()
        assert clone.num_terminals == cft_4_3.num_terminals

    def test_rejects_wrong_version(self):
        payload = json.dumps({"format": 99, "kind": "direct"})
        with pytest.raises(NetworkError):
            from_json(payload)

    def test_rejects_unknown_kind(self):
        payload = json.dumps({"format": 1, "kind": "torus"})
        with pytest.raises(NetworkError):
            from_json(payload)

    def test_file_round_trip(self, tmp_path, rfc_small):
        path = tmp_path / "topo.json"
        save(rfc_small, path)
        clone = load(path)
        assert clone.links() == rfc_small.links()

    def test_routing_survives_round_trip(self, rfc_small):
        """A persisted RFC must route identically after reload."""
        from repro.routing.updown import UpDownRouter

        original = UpDownRouter.for_topology(rfc_small)
        clone = UpDownRouter.for_topology(from_json(to_json(rfc_small)))
        n1 = rfc_small.num_leaves
        for a in range(0, n1, 3):
            for b in range(0, n1, 5):
                assert original.path_length(a, b) == clone.path_length(a, b)


class TestRoundTripProperty:
    def test_random_rfcs_round_trip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.rfc import radix_regular_rfc
        from repro.topologies.io import from_json, to_json

        @settings(max_examples=15, deadline=None)
        @given(
            radix=st.sampled_from([4, 6, 8]),
            n1=st.sampled_from([8, 12, 16]),
            levels=st.sampled_from([2, 3]),
            seed=st.integers(0, 5_000),
        )
        def check(radix, n1, levels, seed):
            topo = radix_regular_rfc(radix, n1, levels, rng=seed)
            clone = from_json(to_json(topo))
            assert clone.links() == topo.links()
            assert clone.level_sizes == topo.level_sizes
            assert clone.is_radix_regular()

        check()


class TestTextFormats:
    def test_edge_list(self, cft_4_3):
        lines = to_edge_list(cft_4_3).splitlines()
        assert len(lines) == cft_4_3.num_links
        a, b = map(int, lines[0].split())
        assert a < b

    def test_dot_contains_ranks_and_edges(self, cft_4_3):
        dot = to_dot(cft_4_3)
        assert dot.count("rank=same") == cft_4_3.num_levels
        assert dot.count(" -- ") == cft_4_3.num_links
        assert dot.startswith("graph")

    def test_dot_direct_no_ranks(self, rrn_16):
        dot = to_dot(rrn_16)
        assert "rank=same" not in dot
        assert dot.count(" -- ") == rrn_16.num_links
