"""Flow-level max-min fairness model tests."""

import pytest

from repro.simulation.flowlevel import (
    flow_level_throughput,
    flow_routes,
    max_min_rates,
)


class TestMaxMinRates:
    def test_single_bottleneck_shared(self):
        rates = max_min_rates([["L"], ["L"]])
        assert rates == [0.5, 0.5]

    def test_classic_three_flow(self):
        # Flows: A on link1, B on link1+link2, C on link2.
        rates = max_min_rates([["l1"], ["l1", "l2"], ["l2"]])
        assert rates == pytest.approx([0.5, 0.5, 0.5])

    def test_unequal_bottlenecks(self):
        # f0 alone on fat path; f1 and f2 share one link.
        rates = max_min_rates([["a"], ["b"], ["b"]])
        assert rates == pytest.approx([1.0, 0.5, 0.5])

    def test_max_min_property(self):
        # The bottlenecked flow gets its fair share, the free flow the
        # leftovers: f0 uses l1 only, f1 uses l1 and l2, f2 uses l2
        # twice as heavy: verify monotone water filling.
        flows = [["l1"], ["l1", "l2"], ["l2"], ["l2"]]
        rates = max_min_rates(flows)
        assert rates[1] == pytest.approx(1 / 3)
        assert rates[2] == pytest.approx(1 / 3)
        assert rates[3] == pytest.approx(1 / 3)
        assert rates[0] == pytest.approx(2 / 3)

    def test_empty_route_gets_capacity(self):
        assert max_min_rates([[]]) == [1.0]

    def test_custom_capacity(self):
        rates = max_min_rates([["x"], ["x"]], capacity=4.0)
        assert rates == [2.0, 2.0]

    def test_no_flow(self):
        assert max_min_rates([]) == []

    def test_total_per_link_never_exceeds_capacity(self, rng):
        # Random flows over a small link universe.
        links = [f"l{i}" for i in range(6)]
        flows = [
            [links[rng.randrange(6)] for _ in range(rng.randint(1, 3))]
            for _ in range(40)
        ]
        rates = max_min_rates(flows)
        usage: dict[str, float] = {}
        for route, rate in zip(flows, rates):
            for link in set(route):
                # A flow visiting a link twice still consumes once per
                # traversal; use full multiplicity.
                pass
            for link in route:
                usage[link] = usage.get(link, 0.0) + rate
        assert all(u <= 1.0 + 1e-9 for u in usage.values())


class TestFlowRoutes:
    def test_route_structure(self, rfc_medium):
        [route] = flow_routes(rfc_medium, [(0, 100)], rng=1)
        assert route[0] == ("inj", 0)
        assert route[-1] == ("ej", 100)
        # Interior entries are directed switch links.
        for link in route[1:-1]:
            a, b = link
            assert isinstance(a, int) and isinstance(b, int)

    def test_same_leaf_route_minimal(self, rfc_medium):
        hosts = rfc_medium.hosts_per_leaf
        [route] = flow_routes(rfc_medium, [(0, hosts - 1)], rng=1)
        assert route == [("inj", 0), ("ej", hosts - 1)]


class TestThroughput:
    def test_in_unit_interval(self, cft_8_3):
        for name in ("uniform", "random-pairing", "fixed-random"):
            value = flow_level_throughput(cft_8_3, name, rng=2)
            assert 0.0 < value <= 1.0

    def test_cft_pairing_beats_rfc(self, cft_8_3, rfc_medium):
        """Paper Figure 8: the rearrangeably non-blocking CFT wins
        random-pairing against the equal-resource RFC."""
        cft = flow_level_throughput(
            cft_8_3, "random-pairing", paths_per_flow=6, rng=3
        )
        rfc = flow_level_throughput(
            rfc_medium, "random-pairing", paths_per_flow=6, rng=3
        )
        assert cft > rfc

    def test_uniform_near_parity(self, cft_8_3, rfc_medium):
        cft = flow_level_throughput(
            cft_8_3, "uniform", flows_per_terminal=4, rng=4
        )
        rfc = flow_level_throughput(
            rfc_medium, "uniform", flows_per_terminal=4, rng=4
        )
        assert abs(cft - rfc) < 0.15

    def test_fixed_random_capped_by_hotspots(self, cft_8_3):
        hot = flow_level_throughput(cft_8_3, "fixed-random", rng=5)
        uni = flow_level_throughput(
            cft_8_3, "uniform", flows_per_terminal=4, rng=5
        )
        assert hot < uni


class TestClosedFormFixtures:
    """Hand-computable 2-3 switch fixtures: all routes are forced, so
    the max-min allocation is known in closed form."""

    @staticmethod
    def _dumbbell(hosts_per_leaf):
        """Two leaves, one spine (3 switches): every cross-leaf route
        is forced through the single spine."""
        from repro.topologies.base import FoldedClos

        return FoldedClos(
            level_sizes=[2, 1],
            up_adjacency=[[[0], [0]]],
            hosts_per_leaf=hosts_per_leaf,
            radix=2 + hosts_per_leaf,
            name="dumbbell",
        )

    def test_forced_route_shape(self):
        topo = self._dumbbell(2)
        # Switch flat ids: leaf0=0, leaf1=1, spine=2.
        [route] = flow_routes(topo, [(0, 2)], rng=0)
        assert route == [("inj", 0), (0, 2), (2, 1), ("ej", 2)]

    def test_two_cross_flows_halve(self):
        """Both leaf-0 hosts send cross: they share the single up-link
        (0 -> spine), so max-min gives each exactly 1/2."""
        topo = self._dumbbell(2)
        routes = flow_routes(topo, [(0, 2), (1, 3)], rng=0)
        rates = max_min_rates(routes)
        assert rates == pytest.approx([0.5, 0.5])

    def test_symmetric_cross_traffic_halves_everywhere(self):
        """Adding the reverse flows uses the opposite directed links,
        so all four rates stay exactly 1/2."""
        topo = self._dumbbell(2)
        pairs = [(0, 2), (1, 3), (2, 0), (3, 1)]
        rates = max_min_rates(flow_routes(topo, pairs, rng=0))
        assert rates == pytest.approx([0.5, 0.5, 0.5, 0.5])

    def test_intra_leaf_flow_rides_free(self):
        """An intra-leaf flow only touches its private inj/ej links and
        gets full rate while the cross flows split the shared
        (leaf1 -> spine) link and terminal-0 ejection link fairly."""
        topo = self._dumbbell(2)
        pairs = [(0, 1), (2, 0), (3, 0)]
        rates = max_min_rates(flow_routes(topo, pairs, rng=0))
        assert rates == pytest.approx([1.0, 0.5, 0.5])

    def test_ejection_link_is_a_bottleneck(self):
        """Two cross flows converging on one terminal share its
        ejection link even though the spine links could carry more --
        the hot-spot effect of the paper's fixed-random traffic."""
        topo = self._dumbbell(2)
        pairs = [(0, 2), (1, 3), (2, 1), (3, 1)]
        rates = max_min_rates(flow_routes(topo, pairs, rng=0))
        # Forward flows split (leaf0 -> spine); reverse flows split
        # both (leaf1 -> spine) and ejection link of terminal 1.
        assert rates == pytest.approx([0.5, 0.5, 0.5, 0.5])

    def test_asymmetric_mix_waterfills(self):
        """Three cross flows from leaf 0 against one from leaf 1: the
        shared (leaf0 -> spine) link splits three ways."""
        topo = self._dumbbell(4)
        pairs = [(0, 4), (1, 5), (2, 6), (4, 0)]
        rates = max_min_rates(flow_routes(topo, pairs, rng=0))
        assert rates == pytest.approx([1 / 3, 1 / 3, 1 / 3, 1.0])

    def test_throughput_two_terminal_forced(self):
        """With one host per leaf every named traffic is the forced
        0 <-> 1 exchange; both directions have private links, so the
        max-min throughput is exactly 1.0."""
        topo = self._dumbbell(1)
        for name in ("uniform", "random-pairing", "fixed-random"):
            for seed in (0, 1, 7):
                value = flow_level_throughput(topo, name, rng=seed)
                assert value == pytest.approx(1.0), (name, seed)

    def test_throughput_subflows_share_injection(self):
        """uniform with flows_per_terminal > 1 on the forced network:
        subflows split the injection link but the per-source sum is
        still capped at exactly 1.0."""
        topo = self._dumbbell(1)
        value = flow_level_throughput(
            topo, "uniform", flows_per_terminal=3, paths_per_flow=2, rng=9
        )
        assert value == pytest.approx(1.0)
