"""Engine + observer integration: hooks fire at the right places, the
exported metrics reconcile with the SimResult, and instrumentation is
invisible to the simulation itself (bit-for-bit determinism)."""

import pytest

from repro.obs import (
    MetricsObserver,
    MultiObserver,
    SimObserver,
    TraceWriter,
    TracingObserver,
)
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator, simulate
from repro.simulation.traffic import make_traffic

FAST = SimulationParams(measure_cycles=400, warmup_cycles=100, seed=3)


def run_instrumented(topo, observer, load=0.5, seed=1):
    traffic = make_traffic("uniform", topo.num_terminals, rng=seed)
    return simulate(topo, traffic, load, FAST, observer=observer)


class TestDeterminism:
    def test_instrumented_equals_bare(self, rfc_small):
        bare = run_instrumented(rfc_small, None)
        inst = run_instrumented(rfc_small, MetricsObserver())
        assert bare == inst
        assert bare.core_dict() == inst.core_dict()

    def test_tracing_does_not_perturb(self, rfc_small):
        bare = run_instrumented(rfc_small, None)
        with TraceWriter(None) as writer:
            traced = run_instrumented(rfc_small, TracingObserver(writer))
        assert bare == traced


class TestMetricsReconcile:
    @pytest.fixture(scope="class")
    def run(self, rfc_small):
        observer = MetricsObserver()
        result = run_instrumented(rfc_small, observer)
        return result, observer.export()

    def test_eject_count_is_delivered(self, run):
        result, export = run
        assert export["counters"]["eject.packets"] == result.delivered_packets

    def test_inject_plus_drops_is_generated(self, run):
        result, export = run
        injected = export["counters"]["inject.packets"]
        dropped = export["counters"].get("drop.unroutable", 0)
        assert injected + dropped == result.generated_packets

    def test_latency_histogram_counts_deliveries(self, run):
        result, export = run
        hist = export["histograms"]["latency.packet"]
        assert hist["count"] == result.delivered_packets

    def test_delivered_phits_timeseries_total(self, run):
        result, export = run
        series = export["timeseries"]["ts.delivered_phits"]
        total = sum(series["buckets"].values())
        assert total == result.delivered_packets * FAST.packet_phits

    def test_link_counters_account_every_hop(self, run):
        _, export = run
        hops = export["counters"]["hop.count"]
        link_phits = sum(
            value
            for name, value in export["counters"].items()
            if name.startswith("link.")
        )
        assert link_phits == hops * FAST.packet_phits

    def test_arbitration_grants_bounded_by_requests(self, run):
        _, export = run
        counters = export["counters"]
        assert 0 < counters["arb.grants"] <= counters["arb.requests"]
        assert counters["arb.passes"] > 0

    def test_stage_timeseries_only_adjacent_levels(self, run):
        _, export = run
        stages = [
            name
            for name in export["timeseries"]
            if name.startswith("ts.stage.")
        ]
        assert stages
        for name in stages:
            lo, hi = name.removeprefix("ts.stage.").split("->")
            assert abs(int(lo) - int(hi)) == 1


class TestTracing:
    def test_trace_reconciles_with_result(self, rfc_small):
        with TraceWriter(None) as writer:
            result = run_instrumented(rfc_small, TracingObserver(writer))
        records = writer.records()
        kinds = [r["ev"] for r in records]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("eject") == result.delivered_packets
        assert (
            kinds.count("inject")
            == result.generated_packets - result.unroutable_packets
        )
        end = records[-1]
        assert end["generated"] == result.generated_packets
        assert end["delivered"] == result.delivered_packets
        assert end["accepted_load"] == result.accepted_load

    def test_arb_records_opt_in(self, rfc_small):
        with TraceWriter(None) as quiet, TraceWriter(None) as chatty:
            run_instrumented(rfc_small, TracingObserver(quiet))
            run_instrumented(
                rfc_small, TracingObserver(chatty, include_arb=True)
            )
        assert not any(r["ev"] == "arb" for r in quiet.records())
        assert any(r["ev"] == "arb" for r in chatty.records())

    def test_trace_file_round_trips(self, rfc_small, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            result = run_instrumented(rfc_small, TracingObserver(writer))
        import json

        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(records) == writer.written
        assert records[-1]["delivered"] == result.delivered_packets


class TestMultiObserver:
    def test_fans_out_to_all(self, rfc_small):
        metrics = MetricsObserver()
        with TraceWriter(None) as writer:
            combined = MultiObserver([metrics, TracingObserver(writer)])
            result = run_instrumented(rfc_small, combined)
        export = metrics.export()
        assert export["counters"]["eject.packets"] == result.delivered_packets
        assert any(r["ev"] == "eject" for r in writer.records())

    def test_noop_base_observer_is_harmless(self, rfc_small):
        bare = run_instrumented(rfc_small, None)
        noop = run_instrumented(rfc_small, SimObserver())
        assert bare == noop


class TestSortedInspectionKeys:
    """Regression: post-run inspection dicts iterate in sorted order,
    never in channel-construction order (repro.lint RPR003)."""

    @pytest.fixture(scope="class")
    def sim(self, rfc_small):
        traffic = make_traffic("uniform", rfc_small.num_terminals, rng=1)
        sim = Simulator(rfc_small, traffic, 0.5, FAST)
        sim.run()
        return sim

    def test_stage_utilization_keys_sorted(self, sim):
        keys = list(sim.stage_utilization())
        assert keys == sorted(keys)
        assert keys  # non-degenerate

    def test_link_loads_keys_sorted(self, sim):
        loads = sim.link_loads()
        keys = list(loads)
        assert keys == sorted(keys)
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in loads.values())

    def test_link_loads_mean_matches_summary(self, sim):
        loads = sim.link_loads()
        summary = sim.link_utilization()
        mean = sum(loads.values()) / len(loads)
        assert mean == pytest.approx(summary["mean"])
