"""Tests for the matched-size network builders used by Table 3."""

import pytest

from repro.core.theory import rfc_max_leaves
from repro.experiments.table3_disconnect import (
    cft_for_terminals,
    oft_for_terminals,
    rfc_for_terminals,
    rrn_for_terminals,
)


class TestCftBuilder:
    def test_paper_sizings(self):
        # Paper: T~1024 -> R=16 CFT (2*8^3=1024); T~2048 -> R=20.
        assert cft_for_terminals(1024).radix == 16
        assert cft_for_terminals(2048).radix == 20

    def test_capacity_near_target(self):
        for target in (512, 1024, 4096):
            topo = cft_for_terminals(target)
            assert 0.5 * target <= topo.num_terminals <= 2 * target


class TestRfcBuilder:
    def test_paper_sizing_2048(self):
        # Paper: T~2048 with R=14 for the RFC.
        topo = rfc_for_terminals(2048, rng=1)
        assert topo.radix == 14

    def test_smaller_radix_than_cft(self):
        for target in (1024, 4096):
            rfc = rfc_for_terminals(target, rng=2)
            cft = cft_for_terminals(target)
            assert rfc.radix < cft.radix

    def test_respects_threshold(self):
        topo = rfc_for_terminals(1024, rng=3)
        assert topo.num_leaves <= rfc_max_leaves(topo.radix, 3)


class TestRrnBuilder:
    def test_diameter_feasible(self):
        import math

        net = rrn_for_terminals(1024, rng=4)
        n = net.num_switches
        degree = net.degree(0)
        assert 2 * n * math.log(n) <= float(degree) ** 4

    def test_terminals_close(self):
        net = rrn_for_terminals(2048, rng=5)
        assert 0.8 * 2048 <= net.num_terminals <= 1.3 * 2048


class TestOftBuilder:
    def test_nearest_prime_power(self):
        # T~1024 at 3 levels -> q=3 (T=1352), the paper's R=8 point.
        topo = oft_for_terminals(1024)
        assert topo.radix == 8
        assert topo.num_terminals == 1352

    def test_8192_prefers_q5(self):
        topo = oft_for_terminals(8192)
        assert topo.radix == 12  # q = 5


class TestWeakExpandTwoLevels:
    def test_two_level_rfc_gains_level(self):
        from repro.core.expansion import weak_expand_rfc
        from repro.core.rfc import rfc_with_updown

        topo, _ = rfc_with_updown(8, 16, 2, rng=6)
        taller, report = weak_expand_rfc(topo, rng=7)
        assert taller.num_levels == 3
        assert taller.is_radix_regular()
        assert report.switches_added == topo.num_leaves
