"""Differential proof that every engine equals the reference engine.

The simulator ships three cycle engines -- ``reference`` (the oracle),
``fast`` (:func:`repro.simulation.fastpath.run_fast`) and
``vectorized`` (:func:`repro.accel.sim.run_vectorized`).  Every test
here runs the same (topology, traffic, load, params) point through all
of them -- the vectorized engine twice, once per execution regime
(incremental-masks-only and forced batched gathering, by pinning
``repro.accel.sim._BATCH_MIN_UNITS`` to 0) -- and demands
**bit-for-bit** agreement:

* :class:`SimResult` dataclass equality (accepted load, latency
  moments, percentiles, packet counters),
* per-channel busy-cycle arrays (the utilization side channel),
* packet traces, peak injection queue depth, unroutable drop counts,
* and, when instrumented, the full :class:`MetricsObserver` export.

Because all engines share one ``random.Random`` stream, any divergence
in RNG call *order* -- not just in results -- shows up as a mismatch,
which is what makes this a proof of equivalence rather than a
statistical comparison.  The quick matrix runs everywhere; the
exhaustive topology x traffic x load x seed sweep carries the ``slow``
marker and runs in the CI bench job.
"""

import json

import pytest

import repro.accel.sim as accel_sim
from repro.core.rfc import radix_regular_rfc, rfc_with_updown
from repro.faults.switches import links_of_switches
from repro.obs import MetricsObserver
from repro.simulation.config import SimulationParams
from repro.simulation.engine import Simulator
from repro.simulation.traffic import TrafficPattern, make_traffic
from repro.topologies.rrn import random_regular_network

BASE = SimulationParams(measure_cycles=300, warmup_cycles=100, seed=5)

#: (engine, forced _BATCH_MIN_UNITS or None) -- the full engine matrix.
ENGINE_RUNS = (
    ("reference", None),
    ("fast", None),
    ("vectorized", None),  # incremental masks, no numpy phase
    ("vectorized", 0),  # batched viability phase forced on
)


def run_engines(
    topo,
    traffic_name,
    load,
    params,
    removed_links=None,
    with_observer=False,
    trace_limit=0,
):
    """Run one point on every engine/regime; returns the sims,
    reference first."""
    sims = []
    for engine, batch_min in ENGINE_RUNS:
        saved = accel_sim._BATCH_MIN_UNITS
        if batch_min is not None:
            accel_sim._BATCH_MIN_UNITS = batch_min
        try:
            traffic = make_traffic(
                traffic_name, topo.num_terminals, rng=params.seed + 1
            )
            sim = Simulator(
                topo,
                traffic,
                load,
                params.scaled(engine=engine),
                removed_links,
                trace_limit=trace_limit,
                observer=MetricsObserver() if with_observer else None,
            )
            sim.result = sim.run()
        finally:
            accel_sim._BATCH_MIN_UNITS = saved
        sims.append(sim)
    return sims


def assert_identical(ref, *others):
    """The full bit-for-bit contract between the engines."""
    ref_export = (
        json.dumps(ref.observer.export(), sort_keys=True)
        if ref.observer is not None
        else None
    )
    for other in others:
        assert ref.result == other.result
        assert ref.ch_busy_cycles == other.ch_busy_cycles
        assert ref.traces == other.traces
        assert ref.max_inject_queue == other.max_inject_queue
        assert ref.unroutable_packets == other.unroutable_packets
        # Shared post-run inspection must agree too (same channel
        # state).
        assert ref.link_utilization() == other.link_utilization()
        assert ref.batch_accepted_loads() == other.batch_accepted_loads()
        if ref_export is not None:
            other_export = json.dumps(
                other.observer.export(), sort_keys=True
            )
            assert ref_export == other_export


@pytest.fixture(scope="module")
def topologies(cft_4_3, oft_q2_l2, rrn_16):
    rfc, _ = rfc_with_updown(8, 16, 3, rng=7)
    return {"rfc": rfc, "cft": cft_4_3, "oft": oft_q2_l2, "rrn": rrn_16}


class TestQuickMatrix:
    """Fast subset of the matrix -- runs in every dev invocation."""

    @pytest.mark.parametrize("name", ["rfc", "cft", "oft", "rrn"])
    def test_uniform_mid_load(self, topologies, name):
        assert_identical(*run_engines(topologies[name], "uniform", 0.5, BASE))

    @pytest.mark.parametrize(
        "traffic", ["random-pairing", "fixed-random", "shuffle"]
    )
    def test_traffic_patterns(self, topologies, traffic):
        assert_identical(*run_engines(topologies["rfc"], traffic, 0.6, BASE))

    @pytest.mark.parametrize("load", [0.1, 0.9])
    def test_load_extremes(self, topologies, load):
        assert_identical(*run_engines(topologies["rfc"], "uniform", load, BASE))


class TestConfigVariants:
    """Engine knobs that exercise distinct non-reference branches."""

    def test_valiant(self, topologies):
        params = BASE.scaled(valiant=True)
        assert_identical(*run_engines(topologies["rfc"], "uniform", 0.5, params))

    def test_valiant_two_vcs(self, topologies):
        params = BASE.scaled(valiant=True, virtual_channels=2)
        assert_identical(*run_engines(topologies["rfc"], "uniform", 0.6, params))

    def test_adaptive_up_selection(self, topologies):
        params = BASE.scaled(up_selection="adaptive")
        assert_identical(*run_engines(topologies["rfc"], "uniform", 0.7, params))

    def test_rotating_arbiter(self, topologies):
        params = BASE.scaled(arbiter="rotating")
        assert_identical(*run_engines(topologies["rfc"], "uniform", 0.7, params))

    def test_multi_iteration_arbitration(self, topologies):
        params = BASE.scaled(arbitration_iterations=3)
        assert_identical(*run_engines(topologies["rfc"], "uniform", 0.8, params))

    def test_nonminimal_routing(self, topologies):
        params = BASE.scaled(minimal_routing=False)
        assert_identical(
            *run_engines(topologies["rfc"], "random-pairing", 0.6, params)
        )

    def test_direct_adaptive_multi_iteration(self, topologies):
        params = BASE.scaled(
            up_selection="adaptive", arbitration_iterations=2
        )
        assert_identical(*run_engines(topologies["rrn"], "uniform", 0.5, params))

    def test_single_phit_saturating(self, topologies):
        params = BASE.scaled(packet_phits=1)
        assert_identical(*run_engines(topologies["rfc"], "uniform", 1.0, params))

    def test_longer_links(self, topologies):
        params = BASE.scaled(link_latency=3)
        assert_identical(*run_engines(topologies["rfc"], "uniform", 0.6, params))

    def test_single_vc(self, topologies):
        params = BASE.scaled(virtual_channels=1)
        assert_identical(*run_engines(topologies["rrn"], "uniform", 0.3, params))


class TestFaults:
    """Pruned networks: CSR tables must mirror the pruned routers."""

    def test_removed_links_rfc(self, topologies):
        links = list(topologies["rfc"].links())
        removed = [links[3], links[17], links[40]]
        assert_identical(
            *run_engines(
                topologies["rfc"], "uniform", 0.6, BASE, removed_links=removed
            )
        )

    def test_removed_links_rrn(self, topologies):
        links = list(topologies["rrn"].links())
        removed = [links[1], links[9]]
        assert_identical(
            *run_engines(
                topologies["rrn"], "uniform", 0.4, BASE, removed_links=removed
            )
        )

    def test_switch_fault_rfc(self, topologies):
        """Whole-switch loss (all incident links removed) -- packets to
        unreachable leaves are dropped identically by every engine."""
        topo = topologies["rfc"]
        dead = {topo.switch_id(1, 0), topo.switch_id(2, 1)}
        removed = links_of_switches(topo, dead)
        assert_identical(
            *run_engines(topo, "uniform", 0.5, BASE, removed_links=removed)
        )

    def test_switch_fault_with_unroutable_pairs(self, topologies):
        """Killing every fabric switch over a leaf forces unroutable
        drops; the drop accounting must match."""
        topo = topologies["oft"]
        dead = {topo.switch_id(1, 0)}
        removed = links_of_switches(topo, dead)
        sims = run_engines(topo, "uniform", 0.4, BASE, removed_links=removed)
        assert_identical(*sims)
        assert sims[0].unroutable_packets == sims[1].unroutable_packets


class TestInstrumented:
    """Observer hooks must fire with identical payloads."""

    def test_metrics_observer_rfc(self, topologies):
        assert_identical(
            *run_engines(
                topologies["rfc"], "uniform", 0.6, BASE, with_observer=True
            )
        )

    def test_metrics_observer_direct(self, topologies):
        assert_identical(
            *run_engines(
                topologies["rrn"], "uniform", 0.5, BASE, with_observer=True
            )
        )

    def test_metrics_observer_valiant_with_traces(self, topologies):
        params = BASE.scaled(valiant=True)
        assert_identical(
            *run_engines(
                topologies["rfc"],
                "locality",
                0.5,
                params,
                with_observer=True,
                trace_limit=40,
            )
        )

    def test_traces_and_faults_together(self, topologies):
        links = list(topologies["rfc"].links())
        assert_identical(
            *run_engines(
                topologies["rfc"],
                "uniform",
                0.6,
                BASE,
                removed_links=[links[5]],
                with_observer=True,
                trace_limit=60,
            )
        )


class TestHorizonSweep:
    """Short horizons hit the warmup/measure boundary cases."""

    @pytest.mark.parametrize("measure,warmup", [(1, 0), (5, 0), (40, 40)])
    def test_short_horizons(self, topologies, measure, warmup):
        params = BASE.scaled(measure_cycles=measure, warmup_cycles=warmup)
        assert_identical(*run_engines(topologies["rfc"], "uniform", 0.7, params))


class _AllSilentTraffic(TrafficPattern):
    """No terminal ever injects -- the zero-load degenerate case."""

    name = "all-silent"

    def destination(self, source, rng):  # pragma: no cover - never called
        raise LookupError("silent")

    def is_silent(self, source):
        return True


class TestEdgeCases:
    """Degenerate configurations every engine must agree on."""

    def test_zero_injections(self, topologies):
        """A run with no traffic at all: zero packets, NaN latency
        moments, and still bit-for-bit agreement (including the NaN
        fields, which compare equal by SimResult's contract)."""
        topo = topologies["rfc"]
        sims = []
        for engine in ("reference", "fast", "vectorized"):
            traffic = _AllSilentTraffic(topo.num_terminals)
            sim = Simulator(topo, traffic, 0.5, BASE.scaled(engine=engine))
            sim.result = sim.run()
            sims.append(sim)
        assert_identical(*sims)
        assert sims[0].result.generated_packets == 0
        assert sims[0].result.delivered_packets == 0

    def test_minimal_folded_topology(self):
        """The smallest constructible RFC (8 terminals)."""
        topo = radix_regular_rfc(4, 4, 2, rng=3)
        assert_identical(*run_engines(topo, "uniform", 0.6, BASE))

    def test_two_terminal_direct_network(self):
        """Two switches, one terminal each -- the minimal network that
        can carry traffic at all."""
        topo = random_regular_network(2, 1, 1, rng=3)
        assert_identical(*run_engines(topo, "uniform", 0.8, BASE))

    def test_single_terminal_traffic_rejected(self):
        """One terminal cannot form a traffic pattern; the rejection
        happens before any engine is selected and is identical."""
        with pytest.raises(ValueError) as exc_info:
            make_traffic("uniform", 1, rng=0)
        assert "two terminals" in str(exc_info.value)

    def test_saturated_injection_queues(self, topologies):
        """Hot-spot overload: injection queues back up and the peak
        depth (a pure side-channel) must match across engines."""
        params = BASE.scaled(buffer_packets=1)
        sims = run_engines(topologies["rfc"], "fixed-random", 1.0, params)
        assert_identical(*sims)
        assert sims[0].max_inject_queue >= 3


@pytest.mark.slow
class TestFullMatrix:
    """The exhaustive sweep (CI bench job): topology x traffic x load
    x seed, plus faulted and instrumented axes."""

    @pytest.mark.parametrize("name", ["rfc", "cft", "oft", "rrn"])
    @pytest.mark.parametrize(
        "traffic", ["uniform", "random-pairing", "fixed-random"]
    )
    @pytest.mark.parametrize("load", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("seed", [0, 11])
    def test_matrix_point(self, topologies, name, traffic, load, seed):
        params = BASE.scaled(seed=seed)
        assert_identical(*run_engines(topologies[name], traffic, load, params))

    @pytest.mark.parametrize("name", ["rfc", "rrn"])
    @pytest.mark.parametrize("seed", [2, 7])
    def test_matrix_faulted_instrumented(self, topologies, name, seed):
        topo = topologies[name]
        links = list(topo.links())
        removed = [links[seed], links[seed + 4]]
        params = BASE.scaled(seed=seed)
        assert_identical(
            *run_engines(
                topo,
                "uniform",
                0.6,
                params,
                removed_links=removed,
                with_observer=True,
                trace_limit=30,
            )
        )
